"""Deterministic fault injection for subsystem access (chaos harness).

The resilience layer (:mod:`repro.middleware.resilience`) claims that
retries, circuit breakers, and NRA degradation keep top-k queries
correct when subsystems misbehave.  :class:`FaultInjectingSource` is the
instrument that makes the claim testable: it wraps any
:class:`~repro.core.sources.GradedSource` and injects, from a *seeded*
schedule, the four failure shapes a remote repository exhibits:

* **transient errors** — an access raises
  :class:`~repro.errors.TransientAccessError` and would succeed if
  retried (failure streaks are capped by ``max_consecutive``, so a
  retry policy with more attempts than the cap always gets through);
* **latency spikes** — an access stalls the injected clock before
  answering, exercising deadline budgets;
* **permanent random-access death** — after ``break_random_after``
  served probes, every random access fails forever while the sorted
  stream keeps working (the regime NRA was invented for);
* **total source death** — after ``kill_after`` served accesses, every
  access fails forever.

Faults hit only *charged* accesses (sorted deliveries and random
probes).  Peeks pass through untouched: they are the algorithms' free
lookahead, and a repository that has not been asked to ship anything
has nothing to fail.  A faulted access charges nothing — the subsystem
never answered — so a retried-to-success run's uniform cost equals the
fault-free cost.
"""

from __future__ import annotations

import random
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.graded import GradedItem, ObjectId
from repro.core.sources import GradedSource
from repro.errors import AccessError, TransientAccessError
from repro.middleware.resilience import VirtualClock

#: Named CLI shorthands for ``FaultProfile.parse``.
PRESETS: Dict[str, Dict[str, object]] = {
    "none": {},
    "flaky": {"transient_rate": 0.3},
    "slow": {"latency_rate": 0.2, "latency": 0.5},
    "no-random": {"transient_rate": 0.1, "break_random_after": 0},
    "dying": {"transient_rate": 0.1, "kill_after": 500},
}


@dataclass(frozen=True)
class FaultProfile:
    """Seeded description of how a subsystem misbehaves.

    ``transient_rate`` is the per-access probability of a retryable
    failure; ``max_consecutive`` caps how many times in a row the
    injector may fail, which is what makes "retries enabled implies the
    fault-free answer" a theorem rather than a likelihood.  The
    permanent modes count *served* accesses, so ``break_random_after=0``
    means random access never worked at all.
    """

    transient_rate: float = 0.0
    max_consecutive: int = 2
    latency_rate: float = 0.0
    latency: float = 0.0
    break_random_after: Optional[int] = None
    kill_after: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("transient_rate", "latency_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise AccessError(f"{name} must lie in [0, 1], got {rate}")
        if self.max_consecutive < 0:
            raise AccessError(
                f"max_consecutive must be >= 0, got {self.max_consecutive}"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultProfile":
        """Build from a CLI spec: a preset name, ``key=value`` pairs, or
        a preset refined by pairs (``flaky,seed=3``)."""
        aliases = {
            "transient": "transient_rate",
            "transient-rate": "transient_rate",
            "max-consecutive": "max_consecutive",
            "latency-rate": "latency_rate",
            "latency": "latency",
            "break-random-after": "break_random_after",
            "kill-after": "kill_after",
            "seed": "seed",
        }
        kwargs: Dict[str, object] = {}
        pairs: List[str] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                if part.lower() not in PRESETS:
                    raise AccessError(
                        f"unknown fault preset {part!r} "
                        f"(known: {sorted(PRESETS)})"
                    )
                kwargs.update(PRESETS[part.lower()])
            else:
                pairs.append(part)
        for part in pairs:
            key, _, value = part.partition("=")
            key = key.strip().lower().replace("_", "-")
            if key not in aliases:
                raise AccessError(
                    f"unknown fault option {key!r} (known: {sorted(aliases)})"
                )
            name = aliases[key]
            if name in ("max_consecutive", "break_random_after", "kill_after", "seed"):
                kwargs[name] = int(value)
            else:
                kwargs[name] = float(value)
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass
class FaultStats:
    """Tallies of what a :class:`FaultInjectingSource` actually injected."""

    transients: int = 0
    latency_spikes: int = 0
    random_refusals: int = 0
    dead_refusals: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "transients": self.transients,
            "latency_spikes": self.latency_spikes,
            "random_refusals": self.random_refusals,
            "dead_refusals": self.dead_refusals,
        }


class FaultInjectingSource(GradedSource):
    """A graded source that misbehaves on a deterministic schedule.

    The schedule is a function of ``(profile.seed, inner.name)`` (via a
    CRC, not Python's salted ``hash``), so two runs over the same data
    see the same faults — across processes, which is what lets the E20
    benchmark and the property tests reproduce failures exactly.

    Each injector holds a per-source lock across every charged access
    (dice roll, inner call, and served tallies together), so the fault
    schedule consumes its RNG stream in access order even when a
    parallel fan-out issues accesses to *different* sources from
    different threads — per-source determinism is what the stress suite
    relies on.
    """

    def __init__(
        self,
        inner: GradedSource,
        profile: FaultProfile,
        *,
        clock=None,
    ) -> None:
        super().__init__(f"faulty({inner.name})")
        self._inner = inner
        self.counter = inner.counter
        self.supports_random_access = inner.supports_random_access
        self.is_boolean = inner.is_boolean
        self.profile = profile
        self.clock = clock if clock is not None else VirtualClock()
        self._rng = random.Random(
            profile.seed ^ zlib.crc32(inner.name.encode("utf-8"))
        )
        #: held across each charged access: schedule + tallies together
        self._lock = threading.Lock()
        self.injected = FaultStats()
        #: charged accesses served so far (sorted deliveries + probes)
        self.served = 0
        #: random probes served so far
        self.random_served = 0
        self._consecutive = 0

    # -- the schedule ----------------------------------------------------------
    def _maybe_fail(self, kind: str, count: int = 1) -> None:
        """Roll the dice for one access serving ``count`` objects.

        The permanent limits are prospective: a bulk request that would
        cross ``kill_after``/``break_random_after`` fails whole (batches
        are atomic — a repository that dies mid-response delivers
        nothing usable), so deaths quantize to batch boundaries and a
        subsystem never over-serves its budget through bulk access.
        """
        profile = self.profile
        if (
            profile.kill_after is not None
            and self.served + count > profile.kill_after
        ):
            self.injected.dead_refusals += 1
            raise TransientAccessError(
                f"subsystem {self._inner.name!r} is dead "
                f"(served {self.served} accesses)"
            )
        if (
            kind == "random"
            and profile.break_random_after is not None
            and self.random_served + count > profile.break_random_after
        ):
            self.injected.random_refusals += 1
            raise TransientAccessError(
                f"random access on {self._inner.name!r} is permanently down "
                f"(served {self.random_served} probes)"
            )
        if profile.latency_rate and self._rng.random() < profile.latency_rate:
            self.injected.latency_spikes += 1
            self.clock.sleep(profile.latency)
        if (
            profile.transient_rate
            and self._consecutive < profile.max_consecutive
            and self._rng.random() < profile.transient_rate
        ):
            self._consecutive += 1
            self.injected.transients += 1
            raise TransientAccessError(
                f"transient failure on {self._inner.name!r} ({kind} access)"
            )
        self._consecutive = 0

    # -- charged access hooks --------------------------------------------------
    # Each holds the per-source lock for the whole access — a subsystem
    # serves one request at a time, and the seeded schedule stays in
    # access order under concurrent fan-outs from other sources.
    def _item_at(self, index: int) -> Optional[GradedItem]:
        with self._lock:
            self._maybe_fail("sorted")
            item = self._inner._item_at(index)
            if item is not None:
                self.served += 1
            return item

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        with self._lock:
            # Probe the true batch size (short at the end of the list) so a
            # final short batch is not refused for items it would not ship.
            prospective = len(self._inner._peek_range(start, count))
            self._maybe_fail("sorted", max(prospective, 1))
            items = self._inner._items_range(start, count)
            self.served += len(items)
            return items

    def _grade_of(self, object_id: ObjectId) -> float:
        with self._lock:
            self._maybe_fail("random")
            grade = self._inner._grade_of(object_id)
            self.served += 1
            self.random_served += 1
            return grade

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        with self._lock:
            self._maybe_fail("random", max(len(list(object_ids)), 1))
            grades = self._inner._grades_of_many(object_ids)
            self.served += len(grades)
            self.random_served += len(grades)
            return grades

    # -- fault-free paths ------------------------------------------------------
    def _peek_at(self, index: int) -> Optional[GradedItem]:
        return self._inner._peek_at(index)

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        return self._inner._peek_range(start, count)

    def __len__(self) -> int:
        return len(self._inner)
