"""Complex objects with shared sub-objects (section 4.2).

"Assume that the system contains information about Advertisements, which
are complex objects with AdPhotos among their sub-objects.  Assume that
we are interested in Advertisements with an AdPhoto that is red. ...  we
need to be able to obtain object id's for Advertisements from the object
id's of their AdPhotos. ...  this is complicated by the fact that
different multimedia objects can share the same component objects."

:class:`Containment` records the parent/child relation (many-to-many, so
shared sub-objects are first-class).  :class:`PromotedSource` lifts a
ranked list over *children* (AdPhotos ranked by redness) to a ranked
list over *parents* (Advertisements), under the natural existential
semantics: a parent's grade is the maximum grade of its children.

The promotion preserves the access model: because children stream in
nonincreasing grade order, the first child of a parent to appear carries
the parent's grade, so parents are discovered already sorted; random
access on a parent probes each of its children.  Every underlying child
access is charged to this source's counter.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.graded import GradedItem, ObjectId
from repro.core.sources import GradedSource
from repro.errors import IdMappingError


class Containment:
    """A many-to-many parent/child relation between object ids."""

    def __init__(self, parent_to_children: Mapping[ObjectId, Iterable[ObjectId]]) -> None:
        self._children: Dict[ObjectId, Tuple[ObjectId, ...]] = {}
        self._parents: Dict[ObjectId, List[ObjectId]] = {}
        for parent, children in parent_to_children.items():
            kids = tuple(children)
            if not kids:
                raise IdMappingError(
                    f"parent {parent!r} has no children; a complex object "
                    "needs at least one sub-object to be graded through"
                )
            self._children[parent] = kids
            for child in kids:
                self._parents.setdefault(child, []).append(parent)

    def children_of(self, parent: ObjectId) -> Tuple[ObjectId, ...]:
        try:
            return self._children[parent]
        except KeyError:
            raise IdMappingError(f"unknown parent object {parent!r}") from None

    def parents_of(self, child: ObjectId) -> Tuple[ObjectId, ...]:
        return tuple(self._parents.get(child, ()))

    def parents(self) -> FrozenSet[ObjectId]:
        return frozenset(self._children)

    def shared_children(self) -> FrozenSet[ObjectId]:
        """Children belonging to more than one parent."""
        return frozenset(
            child for child, parents in self._parents.items() if len(parents) > 1
        )

    def __len__(self) -> int:
        return len(self._children)


class PromotedSource(GradedSource):
    """A child-level ranked list promoted to its parents (max semantics).

    Sorted access: pull children in grade order from the underlying
    source; each time a child reveals a parent not yet emitted, that
    parent is emitted with the child's grade (its maximum, because the
    stream is nonincreasing).  Random access: probe every child of the
    parent and take the max.
    """

    def __init__(
        self,
        child_source: GradedSource,
        containment: Containment,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"promoted({child_source.name})")
        self._child_source = child_source
        self._containment = containment
        self._child_cursor = child_source.cursor()
        self._discovered: List[GradedItem] = []
        self._emitted: Set[ObjectId] = set()
        # Two accounting levels: this source's own counter tallies
        # parent-level accesses (what the algorithm asked for), while the
        # child source's counter keeps the subsystem-level tally (what
        # the repository actually delivered).  Cost reports should meter
        # the child source to see the real repository load.
        self.supports_random_access = child_source.supports_random_access

    def _item_at(self, index: int) -> Optional[GradedItem]:
        while len(self._discovered) <= index:
            child_item = self._child_cursor.next()
            if child_item is None:
                return None
            for parent in self._containment.parents_of(child_item.object_id):
                if parent not in self._emitted:
                    self._emitted.add(parent)
                    self._discovered.append(
                        GradedItem(parent, child_item.grade)
                    )
        return self._discovered[index]

    def _grade_of(self, parent: ObjectId) -> float:
        children = self._containment.children_of(parent)
        return max(
            self._child_source._grade_of(child) for child in children
        )

    def random_access(self, object_id: ObjectId) -> float:
        """Grade of a parent: max over its children, one probe per child.

        Overridden to charge one child-level random access *per child
        probed* (the honest repository cost of asking about each
        component) plus the one parent-level access on this source.
        """
        children = self._containment.children_of(object_id)
        best = 0.0
        for child in children:
            best = max(best, self._child_source.random_access(child))
        self.counter.record_random()
        return best

    def __len__(self) -> int:
        return len(self._containment)
