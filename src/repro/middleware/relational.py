"""A traditional relational subsystem with Boolean grades (sections 3–4).

"For traditional database queries, such as Artist='Beatles', the grade
for each object is either 0 or 1."  :class:`RelationalSubsystem` holds
rows and answers atomic equality queries with crisp graded sets, exposing
them through the same sorted/random access interface as every other
subsystem — under sorted access the grade-1 objects stream first, which
is what lets the Boolean-conjunct-first strategy read off the satisfying
set S cheaply.

The bound sources advertise ``is_boolean`` and a ``positive_count`` so
the planner can reason about selectivity (the paper's "reasonable
assumption that there are not many objects that satisfy the first
conjunct").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping

from repro.core.graded import GradedSet, ObjectId
from repro.core.query import Atomic
from repro.core.sources import GradedSource, ListSource
from repro.middleware.interface import Subsystem


class BooleanSource(ListSource):
    """A ranked list whose grades are all 0 or 1."""

    is_boolean = True

    def __init__(self, grades: Mapping[ObjectId, float], name: str) -> None:
        super().__init__(grades, name=name)
        self.positive_count = sum(1 for g in self._grades.values() if g == 1.0)


class RelationalSubsystem(Subsystem):
    """An in-memory relation: object id -> column -> value.

    Atomic queries are equality predicates on a column; the grade is 1
    when the row's value equals the target and 0 otherwise.
    """

    def __init__(self, name: str, rows: Mapping[ObjectId, Mapping[str, object]]) -> None:
        super().__init__(name)
        self._rows: Dict[ObjectId, Dict[str, object]] = {
            obj: dict(columns) for obj, columns in rows.items()
        }
        self._columns: FrozenSet[str] = frozenset(
            column for row in self._rows.values() for column in row
        )

    def attributes(self) -> FrozenSet[str]:
        return self._columns

    def _bind(self, atom: Atomic) -> GradedSource:
        grades = GradedSet(
            {
                obj: 1.0 if row.get(atom.attribute) == atom.target else 0.0
                for obj, row in self._rows.items()
            }
        )
        return BooleanSource(grades.as_dict(), name=f"{self.name}:{atom}")

    def select(self, attribute: str, target: object) -> frozenset:
        """The crisp satisfying set (a traditional query's answer)."""
        return frozenset(
            obj
            for obj, row in self._rows.items()
            if row.get(attribute) == target
        )

    def row(self, object_id: ObjectId) -> Dict[str, object]:
        """A copy of one row (raises KeyError for unknown objects)."""
        return dict(self._rows[object_id])

    def __len__(self) -> int:
        return len(self._rows)
