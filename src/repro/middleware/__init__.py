"""Garlic-style middleware: subsystems, ID mapping, complex objects,
the monotonicity guard, the integration engine, the resilience layer
(fault injection, retry/backoff, circuit breakers), and the cost-aware
optimizer (paper section 4)."""

from repro.middleware.caching import CachedSource
from repro.middleware.complex_objects import Containment, PromotedSource
from repro.middleware.engine import MiddlewareEngine, QueryHandle
from repro.middleware.faults import FaultInjectingSource, FaultProfile, FaultStats
from repro.middleware.idmap import IdMapping, MappedSource
from repro.middleware.interface import Subsystem
from repro.middleware.list_subsystem import GraderSubsystem, ListSubsystem
from repro.middleware.monotonicity import ensure_monotone
from repro.middleware.resilience import (
    CircuitBreaker,
    MonotonicClock,
    ResiliencePolicy,
    ResilienceStats,
    ResilientSource,
    RetryPolicy,
    VirtualClock,
    resilience_report,
)
from repro.middleware.optimizer import (
    ChargedPlan,
    compare_under_models,
    plan_with_charges,
)
from repro.middleware.relational import BooleanSource, RelationalSubsystem
from repro.middleware.statistics import (
    GradeHistogram,
    collect_statistics,
    suggest_filter_threshold,
)

__all__ = [
    "Subsystem",
    "ListSubsystem",
    "GraderSubsystem",
    "RelationalSubsystem",
    "BooleanSource",
    "IdMapping",
    "MappedSource",
    "Containment",
    "PromotedSource",
    "CachedSource",
    "ensure_monotone",
    "MiddlewareEngine",
    "QueryHandle",
    "FaultInjectingSource",
    "FaultProfile",
    "FaultStats",
    "ResilientSource",
    "ResiliencePolicy",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilienceStats",
    "VirtualClock",
    "MonotonicClock",
    "resilience_report",
    "GradeHistogram",
    "collect_statistics",
    "suggest_filter_threshold",
    "ChargedPlan",
    "plan_with_charges",
    "compare_under_models",
]
