"""Cost-model-aware strategy choice (section 4.2's last issue).

"In order to use an optimizer, we need to understand the cost of
applying various operators over various data in various repositories."

The core planner estimates *access counts*; this module adds per-source
**charges**: a :class:`~repro.core.cost.CostModel` per repository, so a
subsystem whose sorted access re-runs an expensive image matcher can be
charged more per sorted access than an in-memory list.  The paper also
remarks that its uniform cost measure "is somewhat controversial" but
that the results are "fairly robust with respect to a choice of cost
measure"; :func:`compare_under_models` is the ablation harness that
re-scores an actual run's access counts under several models (used by
the E1/E12 ablations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.core.cost import UNIFORM, CostModel, CostReport
from repro.core.planner import Plan, Strategy, plan_top_k
from repro.core.sources import GradedSource, check_same_objects
from repro.scoring.base import as_scoring_function


@dataclass(frozen=True)
class ChargedPlan:
    """A plan annotated with its model-weighted cost estimate."""

    plan: Plan
    charged_cost: float
    model_names: Mapping[str, str]


def _model_for(source: GradedSource, models: Mapping[str, CostModel]) -> CostModel:
    return models.get(source.name, UNIFORM)


def _estimate_counts(plan: Plan, n: int, m: int) -> Dict[str, float]:
    """Rough (sorted, random) access-count estimates per strategy.

    These mirror the formulas in :func:`repro.core.planner.plan_top_k`,
    split by access kind so per-kind charges can weight them.
    """
    k = plan.k
    if plan.strategy is Strategy.NAIVE:
        return {"sorted": float(m * n), "random": 0.0}
    if plan.strategy is Strategy.DISJUNCTION:
        return {"sorted": float(m * k), "random": 0.0}
    if plan.strategy is Strategy.BOOLEAN_FIRST:
        # estimated_cost was |S| * m + 1: one sorted pass over S plus
        # (m - 1) random probes per member of S.
        selected = max(0.0, (plan.estimated_cost - 1) / m)
        return {"sorted": selected + 1, "random": selected * (m - 1)}
    sorted_cost = m * n ** ((m - 1) / m) * k ** (1 / m) if m > 1 else float(k)
    if plan.strategy is Strategy.NRA:
        return {"sorted": 2.0 * sorted_cost, "random": 0.0}
    # A0 / TA: one random probe per (object seen, missing list).
    return {"sorted": sorted_cost, "random": sorted_cost * (m - 1) / m}


def plan_with_charges(
    sources: Sequence[GradedSource],
    scoring,
    k: int,
    models: Mapping[str, CostModel],
) -> ChargedPlan:
    """Pick the strategy minimizing the *charged* cost estimate.

    ``models`` maps source names to their cost models; unnamed sources
    are charged uniformly.  The average charge across sources weights
    the per-kind count estimates (a finer split would need per-source
    count estimates, which the paper's uniform analysis does not give).
    """
    rule = as_scoring_function(scoring)
    n = check_same_objects(sources)
    m = len(sources)
    per_source_models = [_model_for(s, models) for s in sources]
    avg_sorted = sum(mod.sorted_charge for mod in per_source_models) / m
    avg_random = sum(mod.random_charge for mod in per_source_models) / m

    best: Optional[ChargedPlan] = None
    for strategy in Strategy:
        try:
            plan = plan_top_k(sources, rule, k, prefer=strategy)
        except Exception:
            continue
        counts = _estimate_counts(plan, n, m)
        charged = counts["sorted"] * avg_sorted + counts["random"] * avg_random
        candidate = ChargedPlan(
            plan,
            charged,
            {s.name: _model_for(s, models).name for s in sources},
        )
        if best is None or charged < best.charged_cost:
            best = candidate
    assert best is not None  # NAIVE always plans
    return best


def compare_under_models(
    report: CostReport, models: Sequence[CostModel]
) -> Dict[str, float]:
    """Re-score one run's actual access counts under several cost models.

    This is the robustness ablation: if the *ranking* of algorithms is
    stable across models, the paper's uniform-measure conclusions carry
    over to skewed measures.
    """
    return {model.name: report.cost(model) for model in models}
