"""The monotonicity guard for user-defined scoring functions (section 4.2).

The Garlic implementers faced a choice: "(1) provide a fixed set of
legal (i.e., monotone) scoring functions ... or (2) allow the user to
use an arbitrary, user-defined scoring function.  To give the system and
the user maximum flexibility, they chose the second option.  This makes
it necessary for the system to somehow guarantee monotonicity."

This module is that guarantee, as far as a black-box rule permits:

* trusted rules (catalog members with ``is_monotone = True`` that are
  not user wrappers) pass immediately;
* user-supplied callables are certified by randomized dominated-pair
  testing; a found counterexample raises
  :class:`~repro.errors.MonotonicityError` carrying the witness, so the
  user sees exactly which grade vectors their rule ranks inconsistently.

Randomized certification cannot *prove* monotonicity, but a violating
rule would make Fagin's algorithm silently wrong; failing loudly on any
discovered witness is the practical contract Garlic chose.
"""

from __future__ import annotations

from repro.errors import MonotonicityError
from repro.scoring.base import FunctionScoring, ScoringFunction, as_scoring_function
from repro.scoring.properties import certify_monotone


def ensure_monotone(
    rule,
    arity: int,
    *,
    trials: int = 2000,
    seed: int = 1998,
) -> ScoringFunction:
    """Return ``rule`` as a scoring function, certified monotone.

    Raises :class:`MonotonicityError` when the rule declares itself
    non-monotone, or when randomized testing finds a dominated pair the
    rule ranks the wrong way.
    """
    scoring = as_scoring_function(rule)
    if not scoring.is_monotone:
        raise MonotonicityError(
            f"scoring function {scoring.name!r} declares itself non-monotone"
        )
    if isinstance(scoring, FunctionScoring):
        report = certify_monotone(scoring, arity, trials=trials, seed=seed)
        if not report:
            raise MonotonicityError(
                f"user scoring function {scoring.name!r} failed the "
                f"monotonicity guard: {report.detail}"
            )
    return scoring
