"""The Garlic-style middleware engine (section 4).

:class:`MiddlewareEngine` is the integration point the paper describes:
"a single Garlic query can access data in a number of different
subsystems", and "Garlic has to piece together information from both
subsystems in order to answer the query."

The engine:

1. holds registered :class:`~repro.middleware.interface.Subsystem`
   instances, each optionally behind an
   :class:`~repro.middleware.idmap.IdMapping` (section 4.2's object-ID
   correspondence problem);
2. binds each atomic query of a query AST to the (unique) subsystem that
   supports it, yielding one ranked list per atom;
3. compiles the Boolean structure into a single m-ary scoring function
   (:func:`repro.core.evaluation.compile_query`), passing user-defined
   rules through the monotonicity guard;
4. delegates strategy choice to the planner (the Boolean-conjunct-first
   rule, the m*k disjunction algorithm, A0/TA/NRA) and executes.

The engine answers *ranked* queries ("give me the top 10"), returning a
:class:`~repro.core.result.TopKResult`; :meth:`MiddlewareEngine.open_query`
returns a resumable handle for fetching the next batch — the "continue
where we left off" feature of algorithm A0.

**Resilience.**  Real subsystems fail, so the engine can wrap every
binding in the resilience stack: a
:class:`~repro.middleware.faults.FaultInjectingSource` (for chaos
testing, when a fault profile is configured) innermost, the ID mapping
in the middle, and a
:class:`~repro.middleware.resilience.ResilientSource` (retry with
backoff, deadline budgets, circuit breakers) outermost — outermost so
the planner's ``random_access_available`` probe sees breaker state and
plans around a known-bad subsystem up front.  Wrapped bindings are
cached per atom, so breaker state persists across queries the way a
long-lived connection pool's health does; :meth:`MiddlewareEngine.invalidate`
is the reset.  When anything was injected or retried, the query result
carries a per-source report in ``result.extras["resilience"]``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple, Union

from repro.core.evaluation import compile_query
from repro.core.fagin import FaginAlgorithm
from repro.core.planner import Strategy, execute, plan_top_k
from repro.core.query import Atomic, Query, Scored
from repro.core.result import TopKResult
from repro.core.sources import GradedSource
from repro.errors import PlanError
from repro.middleware.faults import FaultInjectingSource, FaultProfile
from repro.middleware.idmap import IdMapping, MappedSource
from repro.middleware.interface import Subsystem
from repro.middleware.monotonicity import ensure_monotone
from repro.middleware.resilience import (
    ResiliencePolicy,
    ResilientSource,
    VirtualClock,
    guard_deadline,
    resilience_report,
)
from repro.parallel import ParallelAccessExecutor
from repro.scoring.base import FunctionScoring
from repro.scoring.zadeh import ZADEH, FuzzySemantics

#: Either one setting for every subsystem, or a per-subsystem-name map
#: (the key ``"*"`` supplies the default for unlisted subsystems).
PerSubsystem = Union[None, ResiliencePolicy, Dict[str, ResiliencePolicy]]
PerSubsystemFaults = Union[None, FaultProfile, Dict[str, FaultProfile]]


def _emit_shard_breakdown(sources, tracer) -> None:
    """Emit one ``shard_breakdown`` trace event per sharded binding.

    Only sources whose wrapper chain bottoms out in a composite backend
    (duck-typed by ``shard_stats``) emit anything, so traces of
    non-sharded runs — including every golden trace — are unchanged.
    The per-shard tallies are the attributed counters, which are
    deterministic across kernels and worker counts.
    """
    from repro.core.sources import iter_wrapper_chain

    for source in sources:
        for node in iter_wrapper_chain(source):
            stats = getattr(node, "shard_stats", None)
            if stats is not None:
                tracer.event(
                    "shard_breakdown", source=source.name, shards=stats()
                )
                break


def _emit_index_breakdown(sources, tracer) -> None:
    """Emit index-work trace events for index-backed bindings.

    Only sources exposing the duck-typed ``index_stats`` hook (the
    :class:`~repro.index.source.KnnSource` adapter, anywhere in the
    wrapper chain) emit anything, so traces of non-index runs —
    including every golden trace — are unchanged.  Each hit emits one
    ``index_breakdown`` event plus ``index.node_accesses`` /
    ``index.distance_evals`` samples; the counters are read through the
    stats lock, so concurrent probes never yield a torn pair.
    """
    from repro.core.sources import iter_wrapper_chain

    for source in sources:
        for node in iter_wrapper_chain(source):
            stats = getattr(node, "index_stats", None)
            if stats is not None:
                info = stats()
                tracer.event("index_breakdown", source=source.name, **info)
                tracer.sample(
                    "index.node_accesses", float(info["node_accesses"])
                )
                tracer.sample(
                    "index.distance_evals", float(info["distance_evals"])
                )
                break


def _for_subsystem(setting, name: str):
    """Resolve a global-or-per-subsystem setting for one subsystem."""
    if setting is None or not isinstance(setting, dict):
        return setting
    return setting.get(name, setting.get("*"))


class MiddlewareEngine:
    """Integrates subsystems and evaluates fuzzy queries over them."""

    def __init__(
        self,
        semantics: FuzzySemantics = ZADEH,
        *,
        resilience: PerSubsystem = None,
        fault_profile: PerSubsystemFaults = None,
        clock=None,
    ) -> None:
        self.semantics = semantics
        self._subsystems: List[Subsystem] = []
        self._mappings: Dict[str, IdMapping] = {}
        self._resilience: PerSubsystem = resilience
        self._fault_profile: PerSubsystemFaults = fault_profile
        self._clock = clock if clock is not None else VirtualClock()
        #: per-atom cache of fully wrapped bindings (fault injector,
        #: mapping, resilience), so breaker/fault state persists across
        #: queries on the same atom.  Guarded by ``_bind_lock`` so
        #: concurrent queries binding the same atom share one wrapper
        #: stack (one breaker, one fault schedule) instead of racing to
        #: build duplicates.
        self._wrapped: Dict[Atomic, GradedSource] = {}
        self._bind_lock = threading.Lock()
        #: session-level QueryTracer set by configure_observability; when
        #: None (the default) nothing observability-related runs.
        self._tracer = None
        #: session-level ParallelAccessExecutor set by
        #: configure_parallelism; None means the classic serial path.
        self._executor: Optional[ParallelAccessExecutor] = None
        #: session-level kernel choice set by configure_kernel; None
        #: defers to the process-wide default in :mod:`repro.kernels`.
        self._kernel: Optional[str] = None
        #: session-level θ-approximation knob set by
        #: configure_approximation; 1.0 (the default) runs exact.
        self._theta: float = 1.0
        #: session-level semantic result cache set by configure_cache;
        #: None (the default) keeps every query cold.
        self._cache = None
        #: session-level storage relocation set by configure_storage;
        #: backend None with shards 1 keeps subsystems' native sources.
        self._storage_backend: Optional[str] = None
        self._storage_shards: int = 1
        self._storage_directory: Optional[str] = None
        self._storage_tmp = None
        self._storage_seq = 0

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def configure_observability(self, tracer=None, *, metrics=None):
        """Install (or clear) a session-level query tracer.

        ``tracer`` is a
        :class:`~repro.observability.tracer.QueryTracer`; passing only
        ``metrics`` (a
        :class:`~repro.observability.metrics.MetricsRegistry`) builds a
        tracer around it.  Every subsequent :meth:`top_k` runs under the
        tracer — a ``query`` span wrapping plan choice and execution,
        resilience observers attached to every wrapped binding — until
        this is called again with no arguments.  Returns the installed
        tracer (or None when cleared).
        """
        if tracer is None and metrics is not None:
            from repro.observability.tracer import QueryTracer

            tracer = QueryTracer(metrics=metrics)
        self._tracer = tracer
        return tracer

    @property
    def tracer(self):
        """The session-level tracer, or None when observability is off."""
        return self._tracer

    # ------------------------------------------------------------------
    # Parallelism
    # ------------------------------------------------------------------
    def configure_parallelism(
        self, max_workers: Optional[int] = None
    ) -> Optional[ParallelAccessExecutor]:
        """Install (or clear) the session-level access executor.

        ``max_workers > 1`` makes every subsequent query fan its rounds'
        independent subsystem accesses across that many threads (answers,
        costs, and traces stay byte-identical to serial — see
        :mod:`repro.parallel`).  ``max_workers=1`` installs the explicit
        serial executor; ``None`` (or no argument) clears parallelism and
        releases the worker threads.  Returns the installed executor.
        """
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if max_workers is not None:
            self._executor = ParallelAccessExecutor(max_workers)
        return self._executor

    @property
    def executor(self) -> Optional[ParallelAccessExecutor]:
        """The session-level access executor, or None for serial."""
        return self._executor

    # ------------------------------------------------------------------
    # Kernel selection
    # ------------------------------------------------------------------
    def configure_kernel(self, kernel: Optional[str] = "auto") -> Optional[str]:
        """Install the session-level scoring kernel.

        ``"auto"`` (the default) picks the vectorized numpy kernel per
        query whenever it is provably byte-identical to the scalar path;
        ``"vector"`` forces it (requires numpy); ``"scalar"`` forces the
        classic per-object loops; ``None`` clears the session setting so
        queries fall back to the process-wide default
        (:func:`repro.kernels.configure_kernel`).  Returns the installed
        name.  See :mod:`repro.kernels` for the selection rules and the
        determinism contract.
        """
        if kernel is not None:
            from repro.kernels import _validate_name

            _validate_name(kernel)
        self._kernel = kernel
        return kernel

    @property
    def kernel(self) -> Optional[str]:
        """The session-level kernel name, or None for the global default."""
        return self._kernel

    # ------------------------------------------------------------------
    # Approximation
    # ------------------------------------------------------------------
    def configure_approximation(self, theta: float = 1.0) -> float:
        """Install the session-level θ-approximation knob.

        ``theta >= 1.0`` is the Fagin–Lotem–Naor approximation factor:
        TA and NRA stop as soon as every reported grade is provably
        within a factor θ of anything excluded, and attach an
        :class:`~repro.core.result.ApproximationCertificate` with the
        achieved ratio (see :mod:`repro.core.threshold`).  ``1.0`` (the
        default) restores exact answers — decision-for-decision
        identical to an engine that never heard of θ.  Per-query
        ``top_k(theta=...)`` overrides this session setting.  Returns
        the installed value.
        """
        if theta < 1.0:
            raise ValueError(f"theta must be >= 1.0, got {theta}")
        self._theta = float(theta)
        return self._theta

    @property
    def theta(self) -> float:
        """The session-level θ-approximation factor (1.0 = exact)."""
        return self._theta

    # ------------------------------------------------------------------
    # Result caching
    # ------------------------------------------------------------------
    def configure_cache(self, enabled: bool = True, *, max_entries: int = 256, cache=None):
        """Install (or clear) the session-level semantic result cache.

        With a cache installed, every :meth:`top_k` first probes for a
        reusable certified answer — an exact hit, a prefix of a deeper
        cached run, or (for NRA plans) a warm-start continuation — and
        records clean exact-grade results for future reuse; see
        :mod:`repro.cache` for the tier and invalidation contracts.
        ``cache`` accepts a pre-built :class:`~repro.cache.QueryCache`
        (e.g. shared across engines) — positionally or by keyword;
        ``enabled=False`` clears it.  Returns the installed cache (or
        None when cleared).
        """
        from repro.cache import QueryCache

        if cache is None and isinstance(enabled, QueryCache):
            # configure_cache(QueryCache(...)) — an empty cache has
            # len() 0 and would otherwise read as enabled=False.
            enabled, cache = True, enabled
        if cache is not None:
            self._cache = cache
        elif enabled:
            self._cache = QueryCache(max_entries=max_entries)
        else:
            self._cache = None
        return self._cache

    @property
    def cache(self):
        """The session-level result cache, or None when caching is off."""
        return self._cache

    def _resolve_cache(self, cache):
        """Resolve one query's cache override: False bypasses, None uses
        the session cache, and an explicit QueryCache wins outright."""
        if cache is None or cache is True:
            return self._cache
        if cache is False:
            return None
        return cache

    @property
    def clock(self):
        """The engine clock (resilience, faults, deadline guards)."""
        return self._clock

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every resource the engine session holds.

        Shuts down the configured
        :class:`~repro.parallel.ParallelAccessExecutor` (worker
        threads), closes storage handles on relocated bindings (memmap
        columns, shard handles — anything in a wrapper chain exposing
        ``close()``), drops the wrapped-binding cache, and removes the
        engine-owned temporary storage directory.  Idempotent; the
        engine remains usable afterwards (the next query rebuilds its
        bindings), but callers should treat a closed engine as done.
        ``with MiddlewareEngine(...) as engine:`` calls this on exit,
        and the CLI calls it on teardown.
        """
        from repro.core.sources import iter_wrapper_chain

        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._cache is not None:
            self._cache.clear()
        with self._bind_lock:
            wrapped = list(self._wrapped.values())
            self._wrapped.clear()
        for source in wrapped:
            for node in iter_wrapper_chain(source):
                closer = getattr(node, "close", None)
                if callable(closer):
                    closer()
        if self._storage_tmp is not None:
            self._storage_tmp.cleanup()
            self._storage_tmp = None

    def __enter__(self) -> "MiddlewareEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _executor_for(self, max_workers: Optional[int], executor=None):
        """Resolve one query's executor: explicit, per-query, or session.

        Returns ``(executor, transient)``; a transient executor was built
        for this query alone and must be shut down when the query ends.
        An explicitly passed ``executor`` (e.g. the query service's
        fair-share view over a shared pool) is never shut down here.
        """
        if executor is not None:
            return executor, False
        if max_workers is None:
            return self._executor, False
        return ParallelAccessExecutor(max_workers), True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def configure_storage(
        self,
        backend: Optional[str] = None,
        *,
        shards: int = 1,
        directory: Optional[str] = None,
    ) -> None:
        """Relocate every binding onto a physical storage backend.

        ``backend`` is one of :data:`~repro.core.sources.BACKEND_CHOICES`
        (``array``/``list``/``memmap``); ``shards > 1`` hash-partitions
        each binding into that many shards of the chosen backend behind
        a :class:`~repro.storage.sharded.ShardedSource`.  The CLI's
        ``--backend``/``--shards`` flags land here.  Relocation happens
        at bind time: the subsystem's native source is materialized once
        (accounting-free) into the chosen backend, preserving its name
        and protocol flags, so answers, costs, and traces are
        byte-identical — only the physical layer changes.  ``directory``
        roots on-disk backends; a memmap relocation without one uses a
        temporary directory owned by the engine.

        Calling with no arguments clears the relocation.  The wrapped-
        binding cache is cleared either way, so the next bind of each
        atom rebuilds; breaker and fault state is discarded
        (:meth:`configure_resilience` semantics).
        """
        from repro.core.sources import BACKEND_CHOICES

        if backend is not None and backend not in BACKEND_CHOICES:
            raise PlanError(
                f"unknown storage backend {backend!r}; use "
                + ", ".join(BACKEND_CHOICES)
            )
        if shards < 1:
            raise PlanError(f"shards must be >= 1, got {shards}")
        self._storage_backend = backend
        self._storage_shards = shards
        self._storage_directory = directory
        with self._bind_lock:
            self._wrapped.clear()
        # Rebinding changes every fingerprint anchor, so cached results
        # would all read as stale anyway — drop them eagerly.
        if self._cache is not None:
            self._cache.clear()

    def _relocate_storage(self, source: GradedSource) -> GradedSource:
        """Rebuild one native binding on the configured backend."""
        backend = self._storage_backend
        shards = self._storage_shards
        if backend is None and shards <= 1:
            return source
        import os

        from repro.core.sources import ArraySource, ListSource
        from repro.storage import ShardedSource, build_from_items

        effective = backend if backend is not None else "array"
        mapping = source.as_graded_set()
        directory = self._storage_directory
        if effective == "memmap":
            if directory is None:
                if self._storage_tmp is None:
                    import tempfile

                    self._storage_tmp = tempfile.TemporaryDirectory(
                        prefix="repro-engine-storage-"
                    )
                directory = self._storage_tmp.name
            self._storage_seq += 1
            cleaned = "".join(
                ch if ch.isalnum() or ch in "._-" else "_"
                for ch in source.name
            )
            directory = os.path.join(
                directory, f"{self._storage_seq:03d}-{cleaned or 'atom'}"
            )
        if shards > 1:
            relocated: GradedSource = ShardedSource.partition(
                mapping,
                shards,
                name=source.name,
                backend=effective,
                directory=directory,
            )
        elif effective == "list":
            relocated = ListSource(mapping, name=source.name)
        elif effective == "memmap":
            relocated = build_from_items(directory, mapping, name=source.name)
        else:
            relocated = ArraySource(mapping, name=source.name)
        # The physical move must not change the protocol surface the
        # planner and algorithms read off the binding.
        relocated.is_boolean = source.is_boolean
        relocated.supports_random_access = source.supports_random_access
        positive = getattr(source, "positive_count", None)
        if positive is not None:
            relocated.positive_count = positive
        return relocated

    def register(
        self, subsystem: Subsystem, id_mapping: Optional[IdMapping] = None
    ) -> None:
        """Add a subsystem, optionally with its global<->local ID mapping."""
        if any(existing.name == subsystem.name for existing in self._subsystems):
            raise PlanError(f"a subsystem named {subsystem.name!r} is already registered")
        self._subsystems.append(subsystem)
        if id_mapping is not None:
            self._mappings[subsystem.name] = id_mapping

    @property
    def subsystems(self) -> Tuple[Subsystem, ...]:
        return tuple(self._subsystems)

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def subsystem_for(self, atom: Atomic) -> Subsystem:
        """The unique subsystem supporting an atomic query."""
        supporting = [s for s in self._subsystems if s.supports(atom)]
        if not supporting:
            raise PlanError(f"no registered subsystem supports {atom}")
        if len(supporting) > 1:
            names = [s.name for s in supporting]
            raise PlanError(
                f"ambiguous atomic query {atom}: supported by {names}; "
                "register disjoint attribute sets or query a specific subsystem"
            )
        return supporting[0]

    def bind(self, atom: Atomic) -> GradedSource:
        """The fully wrapped ranked list for one atom (cached per atom).

        Wrapping order is fault injector (innermost, it stands in for
        the unreliable repository itself), then the global-ID mapping,
        then the resilience wrapper (outermost, so retries cover the
        whole chain and the planner sees live breaker state).

        Thread-safe: concurrent queries binding the same atom are
        serialized by the bind lock, so they always share one wrapper
        stack (and therefore one circuit breaker and one fault
        schedule).
        """
        cached = self._wrapped.get(atom)
        if cached is not None:
            return cached
        with self._bind_lock:
            cached = self._wrapped.get(atom)
            if cached is not None:
                return cached
            subsystem = self.subsystem_for(atom)
            source = self._relocate_storage(subsystem.bind(atom))
            profile = _for_subsystem(self._fault_profile, subsystem.name)
            if profile is not None:
                source = FaultInjectingSource(source, profile, clock=self._clock)
            mapping = self._mappings.get(subsystem.name)
            if mapping is not None:
                source = MappedSource(source, mapping)
            policy = _for_subsystem(self._resilience, subsystem.name)
            if policy is not None:
                source = ResilientSource(source, policy, clock=self._clock)
            self._wrapped[atom] = source
            return source

    def configure_resilience(
        self,
        resilience: PerSubsystem = None,
        *,
        fault_profile: PerSubsystemFaults = None,
        clock=None,
    ) -> None:
        """Replace the resilience/fault configuration.

        Both settings are replaced wholesale (pass the previous value to
        keep it), and the wrapped-binding cache is cleared so the next
        bind of each atom rebuilds its wrapper stack — existing breaker
        and fault state is discarded.
        """
        self._resilience = resilience
        self._fault_profile = fault_profile
        if clock is not None:
            self._clock = clock
        with self._bind_lock:
            self._wrapped.clear()
        if self._cache is not None:
            self._cache.clear()

    def invalidate(self, atom: Optional[Atomic] = None) -> None:
        """Drop cached bindings (one atom, or everything).

        Clears the engine's wrapper cache and the owning subsystems'
        binding caches, so the next use rebuilds from the repository —
        the reset after underlying data changed or a subsystem recovered
        from the failures that tripped its breakers.
        """
        # Subsystem caches are cleared under the bind lock too: a binder
        # holding the lock may be inside ``subsystem.bind`` right now,
        # and yanking its cache entry mid-build would hand it a KeyError.
        if atom is not None:
            with self._bind_lock:
                self._wrapped.pop(atom, None)
                for subsystem in self._subsystems:
                    if subsystem.supports(atom):
                        subsystem.unbind(atom)
            if self._cache is not None:
                self._cache.invalidate(atom)
            return
        with self._bind_lock:
            self._wrapped.clear()
            for subsystem in self._subsystems:
                subsystem.invalidate()
        if self._cache is not None:
            self._cache.invalidate()

    def bind_all(self, query: Query) -> List[GradedSource]:
        """Ranked lists for each distinct atom of a query, in atom order."""
        atoms = query.atoms()
        if len(set(atoms)) != len(atoms):
            raise PlanError(
                "queries must not repeat an atomic subquery: "
                f"{[str(a) for a in atoms]}"
            )
        return [self.bind(atom) for atom in atoms]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _compile(self, query: Query):
        compiled = compile_query(query, self.semantics)
        self._guard_user_rules(query)
        return compiled

    def _guard_user_rules(self, query: Query) -> None:
        """Run the monotonicity guard over user-defined Scored rules."""
        if isinstance(query, Scored) and isinstance(query.scoring, FunctionScoring):
            ensure_monotone(query.scoring, len(query.children))
        for child in getattr(query, "children", ()):
            self._guard_user_rules(child)
        child = getattr(query, "child", None)
        if child is not None:
            self._guard_user_rules(child)

    def top_k(
        self,
        query: Query,
        k: int,
        *,
        prefer: Optional[Strategy] = None,
        tracer=None,
        max_workers: Optional[int] = None,
        kernel: Optional[str] = None,
        executor=None,
        deadline: Optional[float] = None,
        cache=None,
        theta: Optional[float] = None,
    ) -> TopKResult:
        """The top k answers to a query, with their grades and cost.

        ``tracer`` overrides the session tracer installed by
        :meth:`configure_observability` for this one query; with neither,
        the query runs with zero instrumentation overhead.
        ``max_workers`` likewise overrides the session parallelism
        (:meth:`configure_parallelism`) for this one query, and
        ``kernel`` the session kernel (:meth:`configure_kernel`).
        ``executor`` passes an explicit
        :class:`~repro.parallel.ParallelAccessExecutor` (or fair-share
        view) to run under — the query service's shared-pool hook; it is
        not shut down by the engine.

        ``deadline`` is an end-to-end budget in seconds, measured on the
        engine clock from this call's start: every binding is wrapped in
        a per-query :class:`~repro.middleware.resilience.DeadlineGuard`,
        so once the budget is spent the next charged access degrades the
        run into a partial-bound
        :class:`~repro.core.result.DegradedResult` (never more than one
        access round past the deadline) instead of hanging.  With
        ``deadline=None`` (the default) nothing is wrapped and the path
        is byte-identical to before.

        ``cache`` overrides the session cache
        (:meth:`configure_cache`) for this one query: ``False`` bypasses
        it, an explicit :class:`~repro.cache.QueryCache` substitutes it,
        and ``None`` (the default) uses the session setting.  A
        cache-served result carries ``result.extras["cache"]`` naming
        the reuse tier; a cache-enabled *miss* runs — and traces —
        exactly like a cold query, then records its result.

        ``theta`` overrides the session θ-approximation knob
        (:meth:`configure_approximation`) for this one query; ``None``
        (the default) uses the session setting.  θ > 1 runs may stop
        early and carry an
        :class:`~repro.core.result.ApproximationCertificate`; a cache
        probe under θ > 1 may also be served by a θ-certified entry
        whose recorded achieved ratio qualifies.
        """
        tracer = tracer if tracer is not None else self._tracer
        kernel = kernel if kernel is not None else self._kernel
        theta = float(theta) if theta is not None else self._theta
        if theta < 1.0:
            raise ValueError(f"theta must be >= 1.0, got {theta}")
        cache = self._resolve_cache(cache)
        sources = self.bind_all(query)
        compiled = self._compile(query)
        cache_ctx = None
        if cache is not None:
            from repro.cache import plan_key

            atoms = query.atoms()
            key = plan_key(query, self.semantics, prefer)
            served, _status = cache.probe(
                key, k, atoms, sources, tracer=tracer, theta=theta
            )
            if served is not None:
                return served
            cache_ctx = (cache, key, atoms)
        executor, transient = self._executor_for(max_workers, executor)
        if deadline is not None:
            sources = guard_deadline(
                sources, self._clock.now() + deadline, clock=self._clock
            )
        try:
            if tracer is None:
                plan = plan_top_k(sources, compiled, k, prefer=prefer, theta=theta)
                result = self._execute_guarded(
                    plan,
                    sources,
                    deadline,
                    executor=executor,
                    kernel=kernel,
                    cache_ctx=cache_ctx,
                )
            else:
                from repro.observability.tracer import attach_resilience_observers

                attach_resilience_observers(sources, tracer)
                with tracer.phase("query", query=str(query), k=k):
                    plan = plan_top_k(
                        sources, compiled, k, prefer=prefer, theta=theta
                    )
                    # θ is traced only when it can change the execution,
                    # keeping θ = 1.0 traces byte-identical to goldens.
                    extra = {"theta": theta} if theta > 1.0 else {}
                    tracer.event(
                        "plan",
                        strategy=plan.strategy.value,
                        reason=plan.reason,
                        estimated_cost=plan.estimated_cost,
                        k=plan.k,
                        **extra,
                    )
                    result = self._execute_guarded(
                        plan,
                        sources,
                        deadline,
                        tracer=tracer,
                        executor=executor,
                        kernel=kernel,
                        cache_ctx=cache_ctx,
                    )
                    _emit_shard_breakdown(sources, tracer)
                    _emit_index_breakdown(sources, tracer)
        finally:
            if transient and executor is not None:
                executor.shutdown()
        report = resilience_report(sources)
        if report:
            result.extras["resilience"] = report
        return result

    def cache_probe(
        self, query: Query, k: int, *, prefer=None, tracer=None, theta=None
    ) -> Tuple[Optional[TopKResult], str]:
        """Probe the result cache without executing anything.

        Returns ``(result, status)`` — a tier-1/2 (exact/prefix) served
        result with its status, or ``(None, status)`` for
        ``"miss"``/``"stale"``/``"off"``.  The query service calls this
        at admission so hits skip the queue entirely; warm-start
        (tier 3) still requires a real execution slot and is left to
        :meth:`top_k`.  ``theta`` mirrors :meth:`top_k`'s knob: a θ > 1
        probe may also be served by a qualifying θ-certified entry.
        """
        cache = self._cache
        if cache is None:
            return None, "off"
        from repro.cache import plan_key

        theta = float(theta) if theta is not None else self._theta
        sources = self.bind_all(query)
        return cache.probe(
            plan_key(query, self.semantics, prefer),
            k,
            query.atoms(),
            sources,
            tracer=tracer if tracer is not None else self._tracer,
            theta=theta,
        )

    def _execute_guarded(
        self,
        plan,
        sources,
        deadline,
        *,
        tracer=None,
        executor=None,
        kernel=None,
        cache_ctx=None,
    ) -> TopKResult:
        """Execute a plan, with caching and deadline degradation.

        ``cache_ctx`` (``(cache, key, atoms)``, set only on a cache
        miss) routes the run through the result cache: an NRA plan
        first tries a warm-start continuation from a shallower cached
        fill, and every clean exact-grade result is recorded — with its
        resumable snapshot when the plan was NRA — for future reuse.
        The fill path adds no trace events and changes no accesses, so
        a cache-enabled miss stays byte-identical to a cold run.
        """
        if cache_ctx is not None:
            cache, key, atoms = cache_ctx
            snapshot = None
            if plan.strategy is Strategy.NRA:
                entry = cache.warm_entry(key, plan.k, atoms, sources)
                if entry is not None:
                    return self._resume_cached(
                        cache,
                        key,
                        atoms,
                        entry,
                        plan,
                        sources,
                        tracer=tracer,
                        executor=executor,
                        kernel=kernel,
                    )
                snapshot = {}
            result = self._run_plan(
                plan,
                sources,
                deadline,
                tracer=tracer,
                executor=executor,
                kernel=kernel,
                nra_snapshot=snapshot,
            )
            cache.store(key, atoms, sources, result, snapshot=snapshot)
            return result
        return self._run_plan(
            plan, sources, deadline, tracer=tracer, executor=executor, kernel=kernel
        )

    def _resume_cached(
        self,
        cache,
        key,
        atoms,
        entry,
        plan,
        sources,
        *,
        tracer=None,
        executor=None,
        kernel=None,
    ) -> TopKResult:
        """Warm-start a deeper-k NRA run from a cached fill (tier 3).

        The continuation pays only the marginal accesses past the fill's
        depth; the returned cost report merges the fill's tallies back
        in, so it equals — byte for byte — what a cold run at this k
        would have reported, while ``extras["cache"]`` records what was
        actually charged now.

        Snapshots are θ-agnostic resumable state: the continuation runs
        under the *new* request's θ (``plan.theta``), re-evaluating the
        stop test — and computing any certificate — from the live
        bounds, so a θ > 1 resume can never inherit a stale certificate
        from the (always exact) fill run.
        """
        from repro.cache import resume_from_snapshot

        if tracer is not None:
            tracer.event(
                "cache",
                tier="warm",
                key=entry.digest,
                k=plan.k,
                k_cached=entry.k,
                tau=entry.tau,
            )
        snapshot_out: dict = {}
        result = resume_from_snapshot(
            sources,
            plan.scoring,
            plan.k,
            entry.snapshot,
            theta=plan.theta,
            tracer=tracer,
            executor=executor,
            kernel=kernel,
            snapshot_out=snapshot_out,
        )
        marginal = result.cost
        result.cost = entry.cost_report().merged(marginal)
        result.extras["cache"] = {
            "tier": "warm",
            "key": entry.digest,
            "k_cached": entry.k,
            "marginal_sorted": marginal.sorted_access_cost,
            "marginal_random": marginal.random_access_cost,
        }
        cache.store(key, atoms, sources, result, snapshot=snapshot_out)
        return result

    def _run_plan(
        self,
        plan,
        sources,
        deadline,
        *,
        tracer=None,
        executor=None,
        kernel=None,
        nra_snapshot=None,
    ) -> TopKResult:
        """Execute a plan; under a deadline, degrade instead of raising.

        TA/NRA/A0 already turn ``DEGRADABLE_ACCESS_ERRORS`` into
        partial-bound results mid-run; the strategies without their own
        degradation path (naive, disjunction, Boolean-first) would let a
        blown deadline escape as an exception.  Under a deadline this
        wrapper catches those and synthesizes an empty partial-bounds
        :class:`~repro.core.result.DegradedResult`, so *every* strategy
        honors the "late queries degrade, never hang or crash" contract.
        Without a deadline the behaviour is exactly as before.
        """
        if deadline is None:
            return execute(
                plan,
                sources,
                tracer=tracer,
                executor=executor,
                kernel=kernel,
                nra_snapshot=nra_snapshot,
            )
        from repro.core.cost import CostMeter
        from repro.core.graded import GradedSet
        from repro.core.result import DegradedResult
        from repro.core.threshold import DEGRADABLE_ACCESS_ERRORS

        meter = CostMeter(sources)
        try:
            return execute(
                plan,
                sources,
                tracer=tracer,
                executor=executor,
                kernel=kernel,
                nra_snapshot=nra_snapshot,
            )
        except DEGRADABLE_ACCESS_ERRORS as error:
            degraded = DegradedResult(
                failed_sources={
                    source.name: str(error) for source in sources
                },
                fallback="partial-bounds",
                complete=False,
                bounds={},
            )
            if tracer is not None:
                tracer.event(
                    "degraded", fallback=degraded.fallback, reason=str(error)
                )
            return TopKResult(
                answers=GradedSet({}),
                cost=meter.report(),
                algorithm=plan.strategy.value,
                grades_exact=False,
                degraded=degraded,
            )

    def explain(self, query: Query, k: int):
        """The plan the engine would execute, without running it."""
        sources = self.bind_all(query)
        compiled = self._compile(query)
        return plan_top_k(sources, compiled, k, theta=self._theta)

    def explain_report(self, query: Query, k: int, *, run: bool = False):
        """The full EXPLAIN view of a query: plan, atoms, optionally actuals.

        With ``run=False`` (the default) nothing is executed — the report
        covers the chosen plan and per-atom statistics.  With ``run=True``
        the query executes under a throwaway tracer and the report also
        carries the actual cost, the actual/estimated ratio, and the
        per-phase access breakdown.
        """
        from repro.observability.explain import explain_report
        from repro.observability.tracer import QueryTracer

        sources = self.bind_all(query)
        compiled = self._compile(query)
        plan = plan_top_k(sources, compiled, k, theta=self._theta)
        if not run:
            return explain_report(str(query), plan, sources)
        tracer = QueryTracer()
        result = execute(plan, sources, tracer=tracer, kernel=self._kernel)
        return explain_report(
            str(query), plan, sources, result=result, tracer=tracer
        )

    def open_query(
        self, query: Query, *, tracer=None, kernel: Optional[str] = None
    ) -> "QueryHandle":
        """A resumable handle: fetch the top k, then the next k, etc."""
        tracer = tracer if tracer is not None else self._tracer
        kernel = kernel if kernel is not None else self._kernel
        sources = self.bind_all(query)
        compiled = self._compile(query)
        return QueryHandle(
            FaginAlgorithm(
                sources,
                compiled,
                tracer=tracer,
                executor=self._executor,
                kernel=kernel,
            ),
            sources,
        )

    def lookup_row(self, object_id) -> Dict[str, object]:
        """Merge the relational attributes known for one object.

        Every registered subsystem exposing rows (the relational ones)
        contributes its columns; subsystems that do not know the object
        are skipped.  Used by the SQL front end to hydrate projections.
        """
        merged: Dict[str, object] = {}
        for subsystem in self._subsystems:
            row_getter = getattr(subsystem, "row", None)
            if row_getter is None:
                continue
            try:
                merged.update(row_getter(object_id))
            except KeyError:
                continue
        return merged


class QueryHandle:
    """Incremental consumption of one ranked query ("get the next 10").

    Wraps a resumable :class:`~repro.core.fagin.FaginAlgorithm`; each
    :meth:`fetch` continues where the previous one left off, as
    section 4.1 promises.
    """

    def __init__(
        self,
        algorithm: FaginAlgorithm,
        sources: Optional[List[GradedSource]] = None,
    ) -> None:
        self._algorithm = algorithm
        self._sources = sources if sources is not None else list(algorithm.sources)
        self.fetched = 0

    def fetch(self, k: int = 10) -> TopKResult:
        result = self._algorithm.next_k(k)
        self.fetched += len(result.answers)
        report = resilience_report(self._sources)
        if report:
            result.extras["resilience"] = report
        return result
