"""Subsystems backed by precomputed or computed graded lists.

:class:`ListSubsystem` is the simplest repository shape: for each
(attribute, target) pair it already holds the full graded set — the
situation of section 2.1's precomputation strategy ("precompute the
distance between each pair of objects and store the answers"), and also
how the synthetic workloads feed the middleware in tests and benchmarks.

:class:`GraderSubsystem` is the computed variant: it holds per-object
feature data and one grading function per attribute, evaluating grades
on demand.  The QBIC-style subsystem in :mod:`repro.multimedia.qbic`
builds on it.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Mapping, Tuple

from repro.core.graded import GradedSet, ObjectId, validate_grade
from repro.core.query import Atomic
from repro.core.sources import GradedSource, ListSource
from repro.errors import PlanError
from repro.middleware.interface import Subsystem


class ListSubsystem(Subsystem):
    """A subsystem whose answers are stored, fully graded lists.

    Populate with :meth:`add_list`; each (attribute, target) pair maps to
    one graded set over the subsystem's objects.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._lists: Dict[Tuple[str, object], GradedSet] = {}
        self._attributes: set = set()

    def add_list(
        self, attribute: str, target: object, grades: Mapping[ObjectId, float]
    ) -> None:
        """Store the graded answer list for the atomic query
        ``attribute = target``."""
        self._lists[(attribute, target)] = GradedSet(grades)
        self._attributes.add(attribute)

    def attributes(self) -> FrozenSet[str]:
        return frozenset(self._attributes)

    def supports(self, atom: Atomic) -> bool:
        return (atom.attribute, atom.target) in self._lists

    def _bind(self, atom: Atomic) -> GradedSource:
        try:
            graded = self._lists[(atom.attribute, atom.target)]
        except KeyError:
            raise PlanError(
                f"subsystem {self.name!r} has no stored list for {atom}"
            ) from None
        return ListSource(graded, name=f"{self.name}:{atom}")


class GraderSubsystem(Subsystem):
    """A subsystem that grades objects on demand with attribute graders.

    ``objects`` maps each object id to its feature payload (a histogram,
    a shape, a row — anything the graders understand).  Each grader is a
    function ``(target, features) -> grade`` registered per attribute.
    Binding an atomic query grades every object once and materializes the
    ranked list; the per-atom binding cache in :class:`Subsystem` makes
    this a one-time cost per distinct query, which is exactly the
    precomputation trade-off section 2.1 describes.
    """

    def __init__(
        self,
        name: str,
        objects: Mapping[ObjectId, object],
        graders: Mapping[str, Callable[[object, object], float]],
    ) -> None:
        super().__init__(name)
        self._objects = dict(objects)
        self._graders = dict(graders)

    def attributes(self) -> FrozenSet[str]:
        return frozenset(self._graders)

    def _bind(self, atom: Atomic) -> GradedSource:
        grader = self._graders[atom.attribute]
        graded = GradedSet(
            {
                object_id: validate_grade(grader(atom.target, features))
                for object_id, features in self._objects.items()
            }
        )
        return ListSource(graded, name=f"{self.name}:{atom}")

    def object_count(self) -> int:
        return len(self._objects)
