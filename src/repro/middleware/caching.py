"""Middleware-side prefix caching of ranked lists (section 4).

"Then Garlic could later tell the subsystem to resume outputting the
graded set where it left off."  A middleware that already received a
list's top-d items need not pay for them again when a later query (or a
later batch of the same query) re-reads the prefix: it replays its own
cache and resumes the subsystem's stream only past position d.

:class:`CachedSource` implements exactly that.  Its own counter tallies
*logical* accesses (what the algorithms asked for); the wrapped source's
counter keeps the *repository* tally, which only grows the first time a
position is read.  ``hits``/``misses`` expose the cache's effectiveness.

Random accesses are also memoized: the paper's model says nothing about
a repository forgetting a grade it already reported, and real
middlewares keep such lookups in the query cache.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.graded import GradedItem, ObjectId
from repro.core.sources import GradedSource


class CachedSource(GradedSource):
    """A ranked list with a middleware-side prefix + probe cache.

    Bulk access composes with the cache: ``_items_range`` serves the
    cached prefix and extends it with one bulk request to the repository
    (same hit/miss tallies and repository charges as item-at-a-time
    reads), and peeks never extend the cache — looking ahead must not
    make the repository ship anything.
    """

    def __init__(self, inner: GradedSource) -> None:
        super().__init__(f"cached({inner.name})")
        self._inner = inner
        self._inner_cursor = inner.cursor()
        self._prefix: List[GradedItem] = []
        self._probes: Dict[ObjectId, float] = {}
        self.supports_random_access = inner.supports_random_access
        self.is_boolean = inner.is_boolean
        #: reads served from the cache (no repository charge)
        self.hits = 0
        #: reads that had to extend the repository stream / probe it
        self.misses = 0

    def _item_at(self, index: int) -> Optional[GradedItem]:
        if index < len(self._prefix):
            self.hits += 1
            return self._prefix[index]
        while index >= len(self._prefix):
            item = self._inner_cursor.next()  # charges the inner counter
            if item is None:
                return None
            self._prefix.append(item)
            self._probes.setdefault(item.object_id, item.grade)
            self.misses += 1
        return self._prefix[index]

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        end = start + count
        cached = len(self._prefix)
        if end > cached:
            fetched = self._inner_cursor.next_batch(end - cached)
            for item in fetched:
                self._prefix.append(item)
                self._probes.setdefault(item.object_id, item.grade)
            self.misses += len(fetched)
        # Positions already cached before this read count as hits, the
        # newly fetched ones as misses — the same tallies an
        # item-at-a-time read of the range would have produced.
        self.hits += max(0, min(cached, end) - min(start, cached))
        return self._prefix[start:end]

    def _peek_at(self, index: int) -> Optional[GradedItem]:
        # Peeks never extend (or charge) the repository stream, and they
        # do not touch the hit/miss statistics: only consuming reads do.
        if index < len(self._prefix):
            return self._prefix[index]
        return self._inner._peek_at(index)

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        end = start + count
        window = self._prefix[start:end]
        missing = end - (start + len(window))
        if missing > 0:
            window = window + self._inner._peek_range(start + len(window), missing)
        return window

    def random_access(self, object_id: ObjectId) -> float:
        """Memoized probe: repeated lookups charge the repository once.

        The logical access still lands on this source's counter, so
        algorithm costs stay comparable; only the repository-side
        charge (the inner counter) is saved.
        """
        if object_id in self._probes:
            self.hits += 1
            grade = self._probes[object_id]
        else:
            self.misses += 1
            grade = self._inner.random_access(object_id)
            self._probes[object_id] = grade
        self.counter.record_random()
        return grade

    def random_access_many(
        self, object_ids: Iterable[ObjectId]
    ) -> Dict[ObjectId, float]:
        """Bulk memoized probes: one repository request for the misses.

        Charges, hits, and misses match what the same ids probed one at
        a time would produce — including repeated ids within one call,
        which hit the cache the repeated times just as repeated
        :meth:`random_access` calls would.
        """
        ids = list(object_ids)
        result: Dict[ObjectId, float] = {}
        missing: List[ObjectId] = []
        missing_set = set()
        for object_id in ids:
            if object_id in self._probes:
                self.hits += 1
                result[object_id] = self._probes[object_id]
            elif object_id in missing_set:
                self.hits += 1  # fetched below; a repeat would have hit
            else:
                self.misses += 1
                missing.append(object_id)
                missing_set.add(object_id)
        if missing:
            fetched = self._inner.random_access_many(missing)
            self._probes.update(fetched)
            result.update(fetched)
        if ids:
            self.counter.record_random(len(ids))
        return result

    def _grade_of(self, object_id: ObjectId) -> float:  # pragma: no cover
        # random_access is fully overridden; this hook is unreachable,
        # but keep it correct for direct calls.
        return self._inner._grade_of(object_id)

    def repository_cost(self) -> int:
        """What the repository actually served (the inner counter)."""
        return self._inner.counter.database_access_cost

    def __len__(self) -> int:
        return len(self._inner)
