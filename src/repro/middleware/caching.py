"""Middleware-side prefix caching of ranked lists (section 4).

"Then Garlic could later tell the subsystem to resume outputting the
graded set where it left off."  A middleware that already received a
list's top-d items need not pay for them again when a later query (or a
later batch of the same query) re-reads the prefix: it replays its own
cache and resumes the subsystem's stream only past position d.

:class:`CachedSource` implements exactly that.  Its own counter tallies
*logical* accesses (what the algorithms asked for); the wrapped source's
counter keeps the *repository* tally, which only grows the first time a
position is read.  ``hits``/``misses`` expose the cache's effectiveness.

Random accesses are also memoized: the paper's model says nothing about
a repository forgetting a grade it already reported, and real
middlewares keep such lookups in the query cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.graded import GradedItem, ObjectId
from repro.core.sources import GradedSource


class CachedSource(GradedSource):
    """A ranked list with a middleware-side prefix + probe cache."""

    def __init__(self, inner: GradedSource) -> None:
        super().__init__(f"cached({inner.name})")
        self._inner = inner
        self._inner_cursor = inner.cursor()
        self._prefix: List[GradedItem] = []
        self._probes: Dict[ObjectId, float] = {}
        self.supports_random_access = inner.supports_random_access
        self.is_boolean = inner.is_boolean
        #: reads served from the cache (no repository charge)
        self.hits = 0
        #: reads that had to extend the repository stream / probe it
        self.misses = 0

    def _item_at(self, index: int) -> Optional[GradedItem]:
        if index < len(self._prefix):
            self.hits += 1
            return self._prefix[index]
        while index >= len(self._prefix):
            item = self._inner_cursor.next()  # charges the inner counter
            if item is None:
                return None
            self._prefix.append(item)
            self._probes.setdefault(item.object_id, item.grade)
            self.misses += 1
        return self._prefix[index]

    def random_access(self, object_id: ObjectId) -> float:
        """Memoized probe: repeated lookups charge the repository once.

        The logical access still lands on this source's counter, so
        algorithm costs stay comparable; only the repository-side
        charge (the inner counter) is saved.
        """
        if object_id in self._probes:
            self.hits += 1
            grade = self._probes[object_id]
        else:
            self.misses += 1
            grade = self._inner.random_access(object_id)
            self._probes[object_id] = grade
        self.counter.record_random()
        return grade

    def _grade_of(self, object_id: ObjectId) -> float:  # pragma: no cover
        # random_access is fully overridden; this hook is unreachable,
        # but keep it correct for direct calls.
        return self._inner._grade_of(object_id)

    def repository_cost(self) -> int:
        """What the repository actually served (the inner counter)."""
        return self._inner.counter.database_access_cost

    def __len__(self) -> int:
        return len(self._inner)
