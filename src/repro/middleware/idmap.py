"""Object-ID mapping across subsystems (section 4.2).

"Since we are dealing with multiple subsystems, the 'same' object might
have different identities in different subsystems.  Even if there is
some correspondence between object id's in different subsystems, Garlic
has to be sure that the mapping is one-to-one."

:class:`IdMapping` is a verified bijection between the middleware's
global object ids and one subsystem's local ids.  :class:`MappedSource`
wraps a subsystem's ranked list (which speaks local ids) so algorithms
see global ids throughout; random accesses translate global -> local on
the way in.  Construction fails loudly on any non-bijective
correspondence — the exact failure mode the Garlic implementers had to
guard against.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.graded import GradedItem, ObjectId
from repro.core.sources import GradedSource
from repro.errors import IdMappingError


class IdMapping:
    """A bijection global id <-> subsystem-local id.

    ``pairs`` maps global ids to local ids; both directions are indexed.
    Raises :class:`IdMappingError` if two globals share a local id (or
    vice versa — impossible given dict keys, so only the value side needs
    the check).
    """

    def __init__(self, pairs: Mapping[ObjectId, ObjectId]) -> None:
        self._to_local: Dict[ObjectId, ObjectId] = dict(pairs)
        self._to_global: Dict[ObjectId, ObjectId] = {}
        for global_id, local_id in self._to_local.items():
            if local_id in self._to_global:
                other = self._to_global[local_id]
                raise IdMappingError(
                    f"mapping is not one-to-one: global ids {other!r} and "
                    f"{global_id!r} both map to local id {local_id!r}"
                )
            self._to_global[local_id] = global_id

    @classmethod
    def identity(cls, object_ids) -> "IdMapping":
        """The trivial mapping for subsystems that share global ids."""
        return cls({obj: obj for obj in object_ids})

    def to_local(self, global_id: ObjectId) -> ObjectId:
        try:
            return self._to_local[global_id]
        except KeyError:
            raise IdMappingError(
                f"no local id known for global object {global_id!r}"
            ) from None

    def to_global(self, local_id: ObjectId) -> ObjectId:
        try:
            return self._to_global[local_id]
        except KeyError:
            raise IdMappingError(
                f"no global id known for local object {local_id!r}"
            ) from None

    def covers(self, object_ids) -> bool:
        """True if every given global id has a local counterpart."""
        return all(obj in self._to_local for obj in object_ids)

    def __len__(self) -> int:
        return len(self._to_local)


class MappedSource(GradedSource):
    """A subsystem's ranked list re-keyed to global object ids.

    Sorted access translates local -> global on each delivered item;
    random access translates global -> local before probing.  The access
    counter is shared with the wrapped source, so costs accrue in one
    place no matter which view an algorithm uses.
    """

    def __init__(self, inner: GradedSource, mapping: IdMapping) -> None:
        super().__init__(inner.name)
        self._inner = inner
        self._mapping = mapping
        self.counter = inner.counter
        self.supports_random_access = inner.supports_random_access
        self.is_boolean = inner.is_boolean
        positive = getattr(inner, "positive_count", None)
        if positive is not None:
            self.positive_count = positive

    def _item_at(self, index: int) -> Optional[GradedItem]:
        item = self._inner._item_at(index)
        if item is None:
            return None
        return GradedItem(self._mapping.to_global(item.object_id), item.grade)

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        to_global = self._mapping.to_global
        return [
            GradedItem(to_global(item.object_id), item.grade)
            for item in self._inner._items_range(start, count)
        ]

    def _peek_at(self, index: int) -> Optional[GradedItem]:
        item = self._inner._peek_at(index)
        if item is None:
            return None
        return GradedItem(self._mapping.to_global(item.object_id), item.grade)

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        to_global = self._mapping.to_global
        return [
            GradedItem(to_global(item.object_id), item.grade)
            for item in self._inner._peek_range(start, count)
        ]

    def _grade_of(self, object_id: ObjectId) -> float:
        return self._inner._grade_of(self._mapping.to_local(object_id))

    def _grades_of_many(self, object_ids) -> Dict[ObjectId, float]:
        to_local = self._mapping.to_local
        local_ids = [to_local(object_id) for object_id in object_ids]
        local_grades = self._inner._grades_of_many(local_ids)
        return {
            global_id: local_grades[local_id]
            for global_id, local_id in zip(object_ids, local_ids)
        }

    def _attribute_random(self, object_ids) -> None:
        # Storage attribution must see the ids the physical layer owns:
        # a sharded source under this wrapper routes by *local* id, so
        # translate before forwarding down the chain.  (Sorted
        # attribution is positional and needs no translation.)
        to_local = self._mapping.to_local
        self._inner._attribute_random(
            [to_local(object_id) for object_id in object_ids]
        )

    def __len__(self) -> int:
        return len(self._inner)
