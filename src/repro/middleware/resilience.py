"""Fault tolerance for subsystem access: retries, breakers, deadlines.

The middleware of section 4 integrates *autonomous* subsystems — remote,
independently administered, independently failing.  The paper's access
model (sorted and random access) says nothing about what happens when an
access fails; a production middleware must decide.  This module supplies
the standard answers:

* :class:`RetryPolicy` — exponential backoff with jitter and an optional
  per-operation deadline budget;
* :class:`CircuitBreaker` — after repeated failures, stop contacting the
  subsystem and fail fast (:class:`~repro.errors.CircuitOpenError`)
  until a recovery window elapses, then probe again (half-open);
* :class:`ResilientSource` — a :class:`~repro.core.sources.GradedSource`
  wrapper applying both, with *separate* circuits for sorted and random
  access: the follow-up NRA work (Fagin–Lotem–Naor) exists precisely
  because random access can be unavailable while sorted access works,
  and the degradation machinery in :mod:`repro.core.threshold` exploits
  exactly that asymmetry.

Only :class:`~repro.errors.TransientAccessError` is retried.  Protocol
errors (:class:`~repro.errors.UnknownObjectError`,
:class:`~repro.errors.UnsupportedAccessError`) pass through untouched —
retrying a wrong question does not make it right.

* :class:`DeadlineGuard` — a per-query wrapper enforcing an *absolute*
  end-to-end deadline over a shared binding: once the clock passes it,
  every further charged access raises
  :class:`~repro.errors.DeadlineExceededError`, which the algorithms'
  degradation machinery turns into a partial-bound
  :class:`~repro.core.result.DegradedResult` instead of a hang.  The
  query service propagates request deadlines through this wrapper.

Time is injectable: every component takes a ``clock`` with ``now()`` and
``sleep(seconds)``.  The default :class:`VirtualClock` advances virtually
(no real sleeping), which keeps deterministic tests and benchmarks fast;
pass :class:`MonotonicClock` to wait in real time against live
subsystems.

Deadline arithmetic in this module is **never** wall-clock: real time
always means ``time.monotonic()`` (via :class:`MonotonicClock`), so an
NTP step or daylight-saving jump can neither spuriously expire a budget
nor extend one indefinitely.  ``time.time()`` must not appear here —
a regression test pins that invariant.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.graded import GradedItem, ObjectId
from repro.core.sources import GradedSource, iter_wrapper_chain
from repro.errors import (
    AccessError,
    CircuitOpenError,
    DeadlineExceededError,
    TransientAccessError,
)


class VirtualClock:
    """A clock whose sleeps advance virtual time instantly.

    Deterministic and fast: backoff schedules, deadlines, and breaker
    recovery windows all behave exactly as in real time, without the
    wall-clock wait.  The default clock throughout the resilience layer.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            with self._lock:
                self._now += seconds


class MonotonicClock:
    """Real time: ``time.monotonic`` and ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


def _parse_spec(text: str, aliases: Dict[str, str], what: str) -> Dict[str, str]:
    """Parse ``key=value,key=value`` option strings for the CLI."""
    options: Dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise AccessError(
                f"bad {what} option {part!r}: expected key=value "
                f"(known keys: {sorted(aliases)})"
            )
        key, _, value = part.partition("=")
        key = key.strip().lower().replace("_", "-")
        if key not in aliases:
            raise AccessError(
                f"unknown {what} option {key!r} (known: {sorted(aliases)})"
            )
        options[aliases[key]] = value.strip()
    return options


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter, capped, under a deadline budget.

    Attempt ``i`` (0-based) that fails transiently sleeps
    ``min(base_delay * multiplier**i, max_delay)`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1 + jitter]`` — the
    standard "equal jitter" defence against retry synchronization across
    clients.  ``deadline`` bounds one logical operation *including* its
    retries and backoff sleeps; when the clock passes it, the operation
    raises :class:`~repro.errors.DeadlineExceededError`.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise AccessError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise AccessError(f"jitter must lie in [0, 1], got {self.jitter}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retrying after the ``attempt``-th failure (0-based)."""
        delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    @classmethod
    def parse(cls, text: str) -> "RetryPolicy":
        """Build from a CLI spec like ``attempts=6,base=0.01,deadline=2``."""
        aliases = {
            "attempts": "max_attempts",
            "max-attempts": "max_attempts",
            "base": "base_delay",
            "base-delay": "base_delay",
            "multiplier": "multiplier",
            "max-delay": "max_delay",
            "jitter": "jitter",
            "deadline": "deadline",
            "seed": "seed",
        }
        options = _parse_spec(text, aliases, "retry policy")
        kwargs: Dict[str, object] = {}
        for name, value in options.items():
            if name in ("max_attempts", "seed"):
                kwargs[name] = int(value)
            else:
                kwargs[name] = float(value)
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Per-subsystem policy: how to retry and when to trip the breaker."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    failure_threshold: int = 5
    recovery_time: float = 30.0

    @classmethod
    def parse(cls, text: str) -> "ResiliencePolicy":
        """Build from a CLI spec; retry keys plus ``threshold``/``recovery``."""
        aliases = {"threshold": "failure_threshold", "recovery": "recovery_time"}
        own: Dict[str, str] = {}
        retry_parts: List[str] = []
        for part in text.split(","):
            key = part.partition("=")[0].strip().lower().replace("_", "-")
            if key in aliases:
                own.update(_parse_spec(part, aliases, "resilience policy"))
            elif part.strip():
                retry_parts.append(part)
        return cls(
            retry=RetryPolicy.parse(",".join(retry_parts)),
            failure_threshold=int(own.get("failure_threshold", 5)),
            recovery_time=float(own.get("recovery_time", 30.0)),
        )


class CircuitBreaker:
    """Classic three-state breaker: closed, open, half-open.

    ``failure_threshold`` consecutive failures trip the circuit; while
    open, :meth:`allow` is False (callers should raise
    :class:`~repro.errors.CircuitOpenError` without touching the
    subsystem).  Once ``recovery_time`` has elapsed the breaker is
    half-open: one trial call is allowed, and its outcome either closes
    the circuit or re-opens it for another recovery window.

    State transitions are serialized by an internal lock, so concurrent
    failure reports from a parallel fan-out never lose a count or
    double-trip the breaker.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        clock=None,
    ) -> None:
        if failure_threshold < 1:
            raise AccessError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.clock = clock if clock is not None else VirtualClock()
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        #: lifetime count of trips to the open state (observability)
        self.opens = 0

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self.clock.now() - self._opened_at >= self.recovery_time:
            return self.HALF_OPEN
        return self.OPEN

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def allow(self) -> bool:
        """Whether a call may proceed (half-open admits the trial call)."""
        return self.state != self.OPEN

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None

    def record_failure(self) -> bool:
        """Record one failure; True when this report tripped the breaker."""
        with self._lock:
            if self._opened_at is not None:
                # The half-open trial failed: re-open for a fresh window.
                self._opened_at = self.clock.now()
                self.opens += 1
                return True
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._opened_at = self.clock.now()
                self.opens += 1
                return True
            return False

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.state} failures={self._failures}>"


@dataclass
class ResilienceStats:
    """Observable tallies of one :class:`ResilientSource`'s behaviour."""

    failures: int = 0
    retries: int = 0
    exhausted: int = 0
    rejections: int = 0
    deadline_exceeded: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "failures": self.failures,
            "retries": self.retries,
            "exhausted": self.exhausted,
            "rejections": self.rejections,
            "deadline_exceeded": self.deadline_exceeded,
        }


class ResilientSource(GradedSource):
    """Retry + circuit-breaking wrapper over one subsystem's ranked list.

    Every charged access (sorted deliveries and random probes) runs
    through :meth:`_call`: transient failures are retried under the
    policy's backoff until they succeed, the attempts run out, or the
    access kind's circuit breaker opens.  Sorted and random access have
    *independent* breakers, so a repository whose random probes died
    keeps serving its sorted stream — the planner and the running
    algorithms then degrade to NRA-style sorted-only processing.

    Accounting is untouched: the wrapped source's counter is shared, and
    a failed attempt charges nothing (the subsystem never answered), so
    a retried-then-successful run costs exactly what a fault-free run
    costs under the paper's uniform measure.

    Peeks bypass the machinery entirely — they are the algorithms' free,
    side-effect-free planning reads, and must stay free of breaker state.

    The wrapper is thread-safe: stats tallies and backoff jitter draws
    hold a per-source lock, and the breakers serialize their own state,
    so concurrent accesses from a parallel fan-out never lose a count.
    """

    def __init__(
        self,
        inner: GradedSource,
        policy: Optional[ResiliencePolicy] = None,
        *,
        clock=None,
    ) -> None:
        super().__init__(f"resilient({inner.name})")
        self._inner = inner
        self.counter = inner.counter
        self.supports_random_access = inner.supports_random_access
        self.is_boolean = inner.is_boolean
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.clock = clock if clock is not None else VirtualClock()
        self._rng = random.Random(self.policy.retry.seed)
        #: serializes stats tallies and jitter draws across worker threads
        self._lock = threading.RLock()
        self.sorted_breaker = CircuitBreaker(
            self.policy.failure_threshold, self.policy.recovery_time, self.clock
        )
        self.random_breaker = CircuitBreaker(
            self.policy.failure_threshold, self.policy.recovery_time, self.clock
        )
        self.stats = ResilienceStats()
        #: optional ``observe(kind, detail)`` callback, notified with the
        #: same kind strings as the :class:`ResilienceStats` field names
        #: ("failures", "retries", "exhausted", "rejections",
        #: "deadline_exceeded") plus "circuit_open" when a breaker trips.
        #: The observability layer attaches one per resilient node; when
        #: None (the default) nothing extra runs on the access path.
        self.observer: Optional[Callable[[str, str], None]] = None

    def _notify(self, kind: str, detail: str) -> None:
        if self.observer is not None:
            self.observer(kind, detail)

    def _record_failure(self, breaker: CircuitBreaker, describe: str) -> None:
        """Record a failure, announcing a breaker that newly tripped."""
        if breaker.record_failure():
            self._notify("circuit_open", describe)

    def _tally(self, kind: str, describe: str) -> None:
        """Bump one stats field under the lock and notify the observer."""
        with self._lock:
            setattr(self.stats, kind, getattr(self.stats, kind) + 1)
        self._notify(kind, describe)

    # -- retry core ------------------------------------------------------------
    def _call(self, breaker: CircuitBreaker, operation: Callable, describe: str):
        retry = self.policy.retry
        started = self.clock.now()
        attempt = 0
        while True:
            if not breaker.allow():
                self._tally("rejections", describe)
                raise CircuitOpenError(
                    f"circuit open for {describe} on {self._inner.name!r} "
                    f"(recovers after {self.policy.recovery_time:g}s)"
                )
            if (
                retry.deadline is not None
                and self.clock.now() - started > retry.deadline
            ):
                self._tally("deadline_exceeded", describe)
                self._record_failure(breaker, describe)
                raise DeadlineExceededError(
                    f"{describe} on {self._inner.name!r} exceeded its "
                    f"{retry.deadline:g}s deadline budget"
                )
            try:
                result = operation()
            except TransientAccessError:
                self._record_failure(breaker, describe)
                self._tally("failures", describe)
                attempt += 1
                if attempt >= retry.max_attempts:
                    self._tally("exhausted", describe)
                    raise
                self._tally("retries", describe)
                with self._lock:
                    delay = retry.backoff(attempt - 1, self._rng)
                self.clock.sleep(delay)
            else:
                breaker.record_success()
                return result

    def random_access_available(self) -> bool:
        """Whether random probes are currently worth attempting."""
        return self.supports_random_access and self.random_breaker.allow()

    # -- access hooks ----------------------------------------------------------
    def _item_at(self, index: int) -> Optional[GradedItem]:
        return self._call(
            self.sorted_breaker,
            lambda: self._inner._item_at(index),
            "sorted access",
        )

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        return self._call(
            self.sorted_breaker,
            lambda: self._inner._items_range(start, count),
            "sorted access",
        )

    def _peek_at(self, index: int) -> Optional[GradedItem]:
        return self._inner._peek_at(index)

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        return self._inner._peek_range(start, count)

    def _grade_of(self, object_id: ObjectId) -> float:
        return self._call(
            self.random_breaker,
            lambda: self._inner._grade_of(object_id),
            "random access",
        )

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        return self._call(
            self.random_breaker,
            lambda: self._inner._grades_of_many(object_ids),
            "random access",
        )

    def __len__(self) -> int:
        return len(self._inner)


class DeadlineGuard(GradedSource):
    """Per-query end-to-end deadline enforcement over one binding.

    Wraps a (possibly shared, cached) source for the duration of a
    single query: every *charged* access first checks the query's
    absolute deadline against the injected clock and raises
    :class:`~repro.errors.DeadlineExceededError` once it has passed.
    The error is one of the algorithms' ``DEGRADABLE_ACCESS_ERRORS``,
    so an in-flight TA/NRA/A0 run freezes the late stream's bounds and
    returns a partial-bound
    :class:`~repro.core.result.DegradedResult` instead of hanging —
    and because the check sits *before* the access, an admitted query
    can overshoot its deadline by at most one access round (one bulk
    batch), never unboundedly.

    Peeks stay free and unguarded (they are the planner's and the
    algorithms' side-effect-free lookahead), the wrapped source's
    counter and name are shared so accounting, planning, and resilience
    reports are unchanged, and the guard holds **no** state of its own
    beyond the deadline — it is cheap to build per query and safe to
    discard, while breaker/fault state lives in the shared inner chain.
    """

    def __init__(
        self, inner: GradedSource, deadline_at: float, *, clock=None
    ) -> None:
        super().__init__(inner.name)
        self._inner = inner
        self.counter = inner.counter
        self.supports_random_access = inner.supports_random_access
        self.is_boolean = inner.is_boolean
        positive = getattr(inner, "positive_count", None)
        if positive is not None:
            self.positive_count = positive
        self.deadline_at = float(deadline_at)
        self.clock = clock if clock is not None else MonotonicClock()

    def expired(self) -> bool:
        """Whether the query deadline has already passed."""
        return self.clock.now() >= self.deadline_at

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.deadline_at - self.clock.now()

    def _check(self, describe: str) -> None:
        if self.expired():
            raise DeadlineExceededError(
                f"{describe} on {self._inner.name!r} refused: query "
                f"deadline passed {-self.remaining():.3f}s ago"
            )

    def random_access_available(self) -> bool:
        return self._inner.random_access_available()

    # -- charged access hooks (guarded) ---------------------------------------
    def _item_at(self, index: int) -> Optional[GradedItem]:
        self._check("sorted access")
        return self._inner._item_at(index)

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        self._check("sorted access")
        return self._inner._items_range(start, count)

    def _grade_of(self, object_id: ObjectId) -> float:
        self._check("random access")
        return self._inner._grade_of(object_id)

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        self._check("random access")
        return self._inner._grades_of_many(object_ids)

    # -- free paths (unguarded) -----------------------------------------------
    def _peek_at(self, index: int) -> Optional[GradedItem]:
        return self._inner._peek_at(index)

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        return self._inner._peek_range(start, count)

    def __len__(self) -> int:
        return len(self._inner)


def guard_deadline(
    sources: Sequence[GradedSource], deadline_at: Optional[float], *, clock=None
) -> List[GradedSource]:
    """Wrap every source in a :class:`DeadlineGuard` sharing one deadline.

    ``deadline_at=None`` returns the sources untouched — the zero-cost
    no-deadline path.
    """
    if deadline_at is None:
        return list(sources)
    return [
        DeadlineGuard(source, deadline_at, clock=clock) for source in sources
    ]


def resilience_report(sources: Iterable[GradedSource]) -> Dict[str, Dict[str, object]]:
    """Per-source resilience observability, walking wrapper chains.

    For every source whose chain contains a :class:`ResilientSource`
    (retry/breaker tallies, circuit states) or a fault injector (its
    ``injected`` tallies, duck-typed so this module never imports the
    test-side :mod:`repro.middleware.faults`), one entry keyed by the
    outermost source name.  Sources with nothing to report are omitted,
    so a fault-free run carries no extra baggage.
    """
    report: Dict[str, Dict[str, object]] = {}
    for source in sources:
        entry: Dict[str, object] = {}
        for node in iter_wrapper_chain(source):
            if isinstance(node, ResilientSource):
                entry.update(node.stats.as_dict())
                entry["sorted_circuit"] = node.sorted_breaker.state
                entry["random_circuit"] = node.random_breaker.state
                entry["circuit_opens"] = (
                    node.sorted_breaker.opens + node.random_breaker.opens
                )
            injected = getattr(node, "injected", None)
            if injected is not None and hasattr(injected, "as_dict"):
                entry["injected"] = injected.as_dict()
        if entry:
            report[source.name] = entry
    return report
