"""Subsystem protocol for the Garlic-style middleware (section 4).

A multimedia database system "may often really be middleware ... on top
of various subsystems", each reachable only through the two access modes
of section 4 (sorted and random access).  A :class:`Subsystem` owns some
set of attributes and, for any atomic query ``X = t`` over one of them,
can *bind* the query to a :class:`~repro.core.sources.GradedSource` — the
ranked list the top-k algorithms consume.

Bindings are cached per atomic query so that repeated use of the same
atom accumulates accesses on one counter, mirroring a long-lived
connection to the underlying repository.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet

from repro.core.query import Atomic
from repro.core.sources import GradedSource
from repro.errors import PlanError


class Subsystem(ABC):
    """One underlying repository the middleware integrates.

    Subclasses implement :meth:`attributes` and :meth:`_bind`; the public
    :meth:`bind` adds support checking and caching.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._bindings: Dict[Atomic, GradedSource] = {}

    @abstractmethod
    def attributes(self) -> FrozenSet[str]:
        """The attribute names this subsystem can grade."""

    def supports(self, atom: Atomic) -> bool:
        """Whether this subsystem can evaluate the atomic query."""
        return atom.attribute in self.attributes()

    @abstractmethod
    def _bind(self, atom: Atomic) -> GradedSource:
        """Create the ranked list for a supported atomic query."""

    def bind(self, atom: Atomic) -> GradedSource:
        """The ranked list for ``atom`` (cached per distinct atom)."""
        if not self.supports(atom):
            raise PlanError(
                f"subsystem {self.name!r} does not handle attribute "
                f"{atom.attribute!r} (it handles {sorted(self.attributes())})"
            )
        if atom not in self._bindings:
            self._bindings[atom] = self._bind(atom)
        return self._bindings[atom]

    def unbind(self, atom: Atomic) -> bool:
        """Drop the cached binding for one atom, if any.

        The next :meth:`bind` for the atom rebuilds the ranked list from
        the repository — the escape hatch when underlying data changed
        or a wrapped binding accumulated unwanted state (e.g. a tripped
        circuit breaker after the subsystem recovered).  Returns whether
        a binding was actually dropped.
        """
        return self._bindings.pop(atom, None) is not None

    def invalidate(self) -> int:
        """Drop every cached binding; returns how many were dropped."""
        count = len(self._bindings)
        self._bindings.clear()
        return count

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} attrs={sorted(self.attributes())}>"
