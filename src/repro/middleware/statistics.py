"""Catalog statistics for the optimizer (section 4.2's last issue).

"In order to use an optimizer, we need to understand the cost of
applying various operators over various data in various repositories."

A :class:`GradeHistogram` summarizes one ranked list's grade
distribution — the kind of statistic a middleware catalog collects
offline, next to relation cardinalities.  Its headline application here
is threshold suggestion for the filter-condition strategy (E14): given
the per-list survival functions and independence, the smallest tau with

    N * prod_i survival_i(tau)  >=  safety * k

is expected to yield enough candidates in one shot, avoiding both the
restart (tau too optimistic) and the over-retrieval (tau too
pessimistic) failure modes the paper's discussion implies.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.sources import GradedSource
from repro.errors import PlanError


class GradeHistogram:
    """Equi-width histogram of one list's grades over [0, 1]."""

    def __init__(self, counts: Sequence[int]) -> None:
        counts_arr = np.asarray(counts, dtype=float)
        if counts_arr.ndim != 1 or len(counts_arr) < 1:
            raise PlanError("histogram needs a 1-D, nonempty count vector")
        if counts_arr.sum() <= 0:
            raise PlanError("histogram must describe at least one object")
        self.counts = counts_arr
        self.total = float(counts_arr.sum())
        self.bins = len(counts_arr)

    @classmethod
    def from_source(cls, source: GradedSource, bins: int = 20) -> "GradeHistogram":
        """Build offline from a source's full graded set.

        Uses the accounting-free materialization: statistics collection
        is a catalog-maintenance activity, not query-time access (the
        same assumption any optimizer statistics make).
        """
        grades = [item.grade for item in source.as_graded_set()]
        if not grades:
            raise PlanError(f"source {source.name!r} is empty")
        counts, _ = np.histogram(grades, bins=bins, range=(0.0, 1.0))
        return cls(counts)

    def survival(self, tau: float) -> float:
        """Estimated fraction of objects with grade >= tau.

        Within the bin containing tau the mass is interpolated linearly
        (the usual equi-width-histogram assumption).
        """
        if tau <= 0.0:
            return 1.0
        if tau >= 1.0:
            # grade exactly 1.0 lands in the last bin; we conservatively
            # report that whole bin as potentially >= 1.
            return float(self.counts[-1] / self.total) if tau == 1.0 else 0.0
        position = tau * self.bins
        index = min(int(position), self.bins - 1)
        fraction_into_bin = position - index
        above = self.counts[index + 1 :].sum()
        within = self.counts[index] * (1.0 - fraction_into_bin)
        return float((above + within) / self.total)

    def quantile(self, q: float) -> float:
        """Smallest tau whose survival is <= q (an upper quantile)."""
        if not 0.0 <= q <= 1.0:
            raise PlanError(f"quantile must lie in [0, 1], got {q}")
        lo, hi = 0.0, 1.0
        for _ in range(40):
            mid = (lo + hi) / 2.0
            if self.survival(mid) > q:
                lo = mid
            else:
                hi = mid
        return hi

    def __repr__(self) -> str:
        return f"<GradeHistogram bins={self.bins} n={int(self.total)}>"


def suggest_filter_threshold(
    histograms: Sequence[GradeHistogram],
    k: int,
    n: int,
    *,
    safety: float = 2.0,
) -> float:
    """Threshold tau for the filter-condition strategy (min rule).

    Assuming independent lists, an object survives every per-list filter
    with probability ``prod_i survival_i(tau)``; the suggestion is the
    largest tau whose expected candidate count still clears
    ``safety * k``.  ``safety`` > 1 buys restart insurance at the price
    of slight over-retrieval.
    """
    if k <= 0:
        raise PlanError(f"k must be positive, got {k}")
    if n <= 0:
        raise PlanError(f"n must be positive, got {n}")
    if safety < 1.0:
        raise PlanError(f"safety must be >= 1, got {safety}")
    if not histograms:
        raise PlanError("at least one histogram is required")
    target = min(1.0, (safety * k) / n)

    def expected_fraction(tau: float) -> float:
        product = 1.0
        for histogram in histograms:
            product *= histogram.survival(tau)
        return product

    lo, hi = 0.0, 1.0
    for _ in range(40):
        mid = (lo + hi) / 2.0
        if expected_fraction(mid) >= target:
            lo = mid
        else:
            hi = mid
    return lo


def collect_statistics(
    sources: Sequence[GradedSource], bins: int = 20
) -> List[GradeHistogram]:
    """Catalog statistics for a set of sources."""
    return [GradeHistogram.from_source(source, bins) for source in sources]
