"""Grade validation — a dependency-free leaf module.

Grades are real numbers in the closed interval [0, 1] (paper section 3).
Both the core data structures and the scoring functions validate grades,
so the validator lives here, below both packages in the import graph.
"""

from __future__ import annotations

import math

from repro.errors import GradeError

#: Tolerance used when comparing grades for equality.
GRADE_TOLERANCE = 1e-12


def validate_grade(grade: float) -> float:
    """Return ``grade`` as a float, raising :class:`GradeError` if it is
    not a finite number in the closed interval [0, 1]."""
    try:
        value = float(grade)
    except (TypeError, ValueError) as exc:
        raise GradeError(f"grade must be a real number, got {grade!r}") from exc
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise GradeError(f"grade must lie in [0, 1], got {value!r}")
    return value
