"""Ordered weighted averaging (OWA) operators and their Fagin–Wimmers tie.

An OWA operator (Yager) applies a weight vector to the *sorted* argument
tuple: ``OWA_w(x) = sum_j w_j * x_(j)`` where ``x_(1) >= ... >= x_(m)``.
The family spans min (w = e_m), max (w = e_1), and the arithmetic mean
(uniform w) — the same spectrum the paper's scoring-function discussion
covers.

The connection to section 5: the Fagin–Wimmers weighted version of the
*arithmetic mean* under ordered weighting Theta is itself an OWA
operator over the weight-ordered arguments, with OWA weights

    w_j = sum_{i >= j} (theta_i - theta_{i+1}) * i / i
        = c_j / j summed appropriately,

concretely: ``w_j = sum_{i=j..m} coefficient_i / i`` where
``coefficient_i = i * (theta_i - theta_{i+1})`` are the formula's convex
coefficients.  :func:`fagin_wimmers_owa_weights` computes the vector and
the test suite verifies the identity numerically — a nontrivial
consistency check between section 5 and the classical fuzzy-aggregation
literature.

Every OWA operator with nonnegative weights summing to 1 is monotone;
it is strict iff the last weight (applied to the minimum) is positive.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import WeightingError
from repro.scoring.base import ScoringFunction, _np
from repro.scoring.weighted import validate_weighting


class OwaScoring(ScoringFunction):
    """OWA operator: weights applied to the descending-sorted grades."""

    is_symmetric = True

    def __init__(self, weights: Sequence[float]) -> None:
        self.weights: Tuple[float, ...] = validate_weighting(weights)
        self.is_monotone = True
        # Strict iff the minimum's weight is positive: otherwise a 0 in
        # the smallest slot can hide while the value reaches 1.
        self.is_strict = self.weights[-1] > 0
        pretty = ", ".join(f"{w:.3g}" for w in self.weights)
        self.name = f"owa({pretty})"

    def _combine(self, grades: tuple) -> float:
        if len(grades) != len(self.weights):
            raise WeightingError(
                f"{self.name}: expected {len(self.weights)} grades, "
                f"got {len(grades)}"
            )
        ordered = sorted(grades, reverse=True)
        total = sum(w * g for w, g in zip(self.weights, ordered))
        # A convex combination of [0, 1] grades is bounded in [0, 1];
        # normalized weights can still sum to 1 + ulp, so clamp the
        # float-epsilon overshoot.
        return min(1.0, max(0.0, total))

    _batch_exact = True

    def _combine_matrix(self, matrix):
        if matrix.shape[1] != len(self.weights):
            raise WeightingError(
                f"{self.name}: expected {len(self.weights)} grades, "
                f"got {matrix.shape[1]}"
            )
        ordered = _np.sort(matrix, axis=1)[:, ::-1]
        total = self.weights[0] * ordered[:, 0]
        for column in range(1, matrix.shape[1]):
            total += self.weights[column] * ordered[:, column]
        # Same float-epsilon clamp as the scalar path (weights may sum
        # to 1 + ulp after normalization).
        return _np.clip(total, 0.0, 1.0)


def owa_min(m: int) -> OwaScoring:
    """The OWA vector realizing min over m arguments."""
    return OwaScoring(tuple(0.0 for _ in range(m - 1)) + (1.0,))


def owa_max(m: int) -> OwaScoring:
    """The OWA vector realizing max over m arguments."""
    return OwaScoring((1.0,) + tuple(0.0 for _ in range(m - 1)))


def owa_mean(m: int) -> OwaScoring:
    """The OWA vector realizing the arithmetic mean."""
    return OwaScoring(tuple(1.0 / m for _ in range(m)))


def fagin_wimmers_owa_weights(theta: Sequence[float]) -> Tuple[float, ...]:
    """OWA weights equal to the weighted arithmetic mean of section 5.

    For an ordered weighting ``theta_1 >= ... >= theta_m``, the
    Fagin–Wimmers weighted mean is

        sum_i c_i * mean(x_1 .. x_i),   c_i = i * (theta_i - theta_{i+1})

    (with the x's ordered by *weight*).  Expanding the means, argument
    slot j (the j-th largest weight) collects total OWA weight

        w_j = sum_{i >= j} c_i / i = sum_{i >= j} (theta_i - theta_{i+1})
            = theta_j

    — the weighted mean's OWA weights are the thetas themselves, applied
    to the weight-ordered arguments.  Returned explicitly (rather than
    just ``theta``) so the derivation is executable and testable.
    """
    ordered = validate_weighting(theta)
    if any(a < b for a, b in zip(ordered, ordered[1:])):
        raise WeightingError("theta must be an ordered weighting")
    m = len(ordered)
    coefficients = [
        (i + 1) * (ordered[i] - (ordered[i + 1] if i + 1 < m else 0.0))
        for i in range(m)
    ]
    weights = tuple(
        sum(coefficients[i] / (i + 1) for i in range(j, m)) for j in range(m)
    )
    return weights
