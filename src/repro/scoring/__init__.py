"""Scoring functions for fuzzy queries (paper sections 3 and 5).

Public surface:

* :class:`~repro.scoring.base.ScoringFunction` and the coercion helper
  :func:`~repro.scoring.base.as_scoring_function`.
* T-norms (:mod:`repro.scoring.tnorms`), co-norms
  (:mod:`repro.scoring.conorms`), negations
  (:mod:`repro.scoring.negations`), means (:mod:`repro.scoring.means`).
* The Fagin–Wimmers weighted rule (:mod:`repro.scoring.weighted`).
* Axiom checkers (:mod:`repro.scoring.properties`).
* Bundled semantics (:mod:`repro.scoring.zadeh`).
"""

from repro.scoring.base import (
    BinaryScoringFunction,
    FunctionScoring,
    ScoringFunction,
    as_scoring_function,
)
from repro.scoring.conorms import (
    BOUNDED_SUM,
    DE_MORGAN_PAIRS,
    DRASTIC_CONORM,
    MAX,
    PROBABILISTIC_SUM,
    STANDARD_CONORMS,
    DualConorm,
    conorm_catalog,
)
from repro.scoring.means import (
    GEOMETRIC_MEAN,
    HARMONIC_MEAN,
    MEAN,
    MEDIAN,
    STANDARD_MEANS,
    ArithmeticMean,
    GeometricMean,
    HarmonicMean,
    MedianScoring,
    PowerMean,
    WeightedArithmeticMean,
    mean_catalog,
)
from repro.scoring.negations import (
    STANDARD,
    Negation,
    StandardNegation,
    SugenoNegation,
    YagerNegation,
    negation_catalog,
)
from repro.scoring.tnorms import (
    DRASTIC,
    EINSTEIN,
    LUKASIEWICZ,
    MIN,
    PRODUCT,
    STANDARD_TNORMS,
    FrankTNorm,
    HamacherTNorm,
    SchweizerSklarTNorm,
    YagerTNorm,
    tnorm_catalog,
)
from repro.scoring.owa import (
    OwaScoring,
    fagin_wimmers_owa_weights,
    owa_max,
    owa_mean,
    owa_min,
)
from repro.scoring.weighted import (
    WeightedScoring,
    mixture,
    uniform_weighting,
    validate_weighting,
    weighted_score,
)
from repro.scoring.zadeh import (
    ALL_SEMANTICS,
    LUKASIEWICZ_LOGIC,
    PROBABILISTIC,
    ZADEH,
    FuzzySemantics,
)

__all__ = [
    "ScoringFunction",
    "BinaryScoringFunction",
    "FunctionScoring",
    "as_scoring_function",
    "MIN",
    "PRODUCT",
    "LUKASIEWICZ",
    "DRASTIC",
    "EINSTEIN",
    "STANDARD_TNORMS",
    "HamacherTNorm",
    "YagerTNorm",
    "FrankTNorm",
    "SchweizerSklarTNorm",
    "tnorm_catalog",
    "MAX",
    "PROBABILISTIC_SUM",
    "BOUNDED_SUM",
    "DRASTIC_CONORM",
    "STANDARD_CONORMS",
    "DE_MORGAN_PAIRS",
    "DualConorm",
    "conorm_catalog",
    "Negation",
    "StandardNegation",
    "SugenoNegation",
    "YagerNegation",
    "STANDARD",
    "negation_catalog",
    "MEAN",
    "GEOMETRIC_MEAN",
    "HARMONIC_MEAN",
    "MEDIAN",
    "STANDARD_MEANS",
    "ArithmeticMean",
    "GeometricMean",
    "HarmonicMean",
    "PowerMean",
    "MedianScoring",
    "WeightedArithmeticMean",
    "mean_catalog",
    "OwaScoring",
    "owa_min",
    "owa_max",
    "owa_mean",
    "fagin_wimmers_owa_weights",
    "WeightedScoring",
    "weighted_score",
    "mixture",
    "uniform_weighting",
    "validate_weighting",
    "FuzzySemantics",
    "ZADEH",
    "PROBABILISTIC",
    "LUKASIEWICZ_LOGIC",
    "ALL_SEMANTICS",
]
