"""Triangular norms: scoring functions for fuzzy conjunction (section 3).

A *triangular norm* (t-norm) is a 2-ary scoring function ``t`` satisfying

* A-conservation: ``t(0, 0) = 0`` and ``t(x, 1) = t(1, x) = x``,
* monotonicity, commutativity, and associativity.

Every rule here is strict and monotone, so Theorems 4.1/4.2 apply to all
of them.  The catalog covers the norms the paper's references discuss
(Schweizer–Sklar, Dubois–Prade, Mizumoto, Bonissone–Decker): Zadeh's min,
the product norm, the Lukasiewicz (bounded-difference) norm, the drastic
norm, and the Hamacher, Einstein, Yager, and Frank parametric families.

All axioms are verified empirically by ``repro.scoring.properties`` in
the test suite, not merely asserted.
"""

from __future__ import annotations

import math

from repro.scoring.base import BinaryScoringFunction, _np


class MinimumTNorm(BinaryScoringFunction):
    """Zadeh's standard conjunction rule: ``t(a, b) = min(a, b)``.

    By Theorem 3.1 (Yager; Dubois–Prade) this is the *unique* monotone
    scoring function for conjunction that preserves logical equivalence of
    positive queries.
    """

    name = "min"
    is_strict = True
    _batch_exact = True

    def pair(self, a: float, b: float) -> float:
        return a if a <= b else b

    def pair_matrix(self, a, b):
        return _np.minimum(a, b)


class ProductTNorm(BinaryScoringFunction):
    """The probabilistic (independence) conjunction: ``t(a, b) = a * b``."""

    name = "product"
    is_strict = True
    _batch_exact = True

    def pair(self, a: float, b: float) -> float:
        return a * b

    def pair_matrix(self, a, b):
        return a * b


class LukasiewiczTNorm(BinaryScoringFunction):
    """Bounded difference: ``t(a, b) = max(0, a + b - 1)``.

    Strict in the paper's sense (value 1 only at all-ones), although it
    is not strictly increasing — a different property the paper's
    theorems do not require.
    """

    name = "lukasiewicz"
    is_strict = True
    _batch_exact = True

    def pair(self, a: float, b: float) -> float:
        return max(0.0, a + b - 1.0)

    def pair_matrix(self, a, b):
        return _np.maximum(0.0, a + b - 1.0)


class DrasticTNorm(BinaryScoringFunction):
    """The drastic t-norm: the smallest t-norm.

    ``t(a, b) = a`` if ``b == 1``, ``b`` if ``a == 1``, else 0.
    """

    name = "drastic"
    is_strict = True
    _batch_exact = True

    def pair(self, a: float, b: float) -> float:
        if b == 1.0:
            return a
        if a == 1.0:
            return b
        return 0.0

    def pair_matrix(self, a, b):
        return _np.where(b == 1.0, a, _np.where(a == 1.0, b, 0.0))


class HamacherTNorm(BinaryScoringFunction):
    """Hamacher family: ``t(a,b) = ab / (p + (1-p)(a + b - ab))``, p >= 0.

    ``p = 1`` recovers the product norm; ``p = 2`` is the Einstein norm's
    Hamacher-parameter sibling.
    """

    def __init__(self, p: float = 1.0) -> None:
        if p < 0:
            raise ValueError(f"Hamacher parameter must be >= 0, got {p}")
        self.p = float(p)
        self.name = f"hamacher(p={p:g})"
        self.is_strict = True

    _batch_exact = True

    def pair(self, a: float, b: float) -> float:
        denom = self.p + (1.0 - self.p) * (a + b - a * b)
        if denom == 0.0:
            # Only possible at p == 0 with a == b == 0.
            return 0.0
        return (a * b) / denom

    def pair_matrix(self, a, b):
        denom = self.p + (1.0 - self.p) * (a + b - a * b)
        with _np.errstate(divide="ignore", invalid="ignore"):
            out = (a * b) / denom
        return _np.where(denom == 0.0, 0.0, out)


class EinsteinTNorm(BinaryScoringFunction):
    """Einstein product: ``t(a,b) = ab / (1 + (1-a)(1-b))``."""

    name = "einstein"
    is_strict = True
    _batch_exact = True

    def pair(self, a: float, b: float) -> float:
        return (a * b) / (1.0 + (1.0 - a) * (1.0 - b))

    def pair_matrix(self, a, b):
        return (a * b) / (1.0 + (1.0 - a) * (1.0 - b))


class YagerTNorm(BinaryScoringFunction):
    """Yager family: ``t(a,b) = max(0, 1 - ((1-a)^w + (1-b)^w)^(1/w))``.

    ``w -> inf`` approaches min; ``w = 1`` is Lukasiewicz.
    """

    def __init__(self, w: float = 2.0) -> None:
        if w <= 0:
            raise ValueError(f"Yager parameter must be > 0, got {w}")
        self.w = float(w)
        self.name = f"yager(w={w:g})"
        self.is_strict = True

    def pair(self, a: float, b: float) -> float:
        s = (1.0 - a) ** self.w + (1.0 - b) ** self.w
        return max(0.0, 1.0 - s ** (1.0 / self.w))

    # numpy's vectorized pow is not ulp-identical to math.pow, so this
    # native form stays _batch_exact = False (1e-12 agreement only).
    def pair_matrix(self, a, b):
        s = (1.0 - a) ** self.w + (1.0 - b) ** self.w
        return _np.maximum(0.0, 1.0 - s ** (1.0 / self.w))


class FrankTNorm(BinaryScoringFunction):
    """Frank family: ``t(a,b) = log_s(1 + (s^a - 1)(s^b - 1)/(s - 1))``.

    Defined for ``s > 0, s != 1``; the limits s -> 0, 1, inf give min,
    product, and Lukasiewicz respectively.
    """

    def __init__(self, s: float = math.e) -> None:
        if s <= 0 or s == 1.0:
            raise ValueError(f"Frank parameter must be > 0 and != 1, got {s}")
        self.s = float(s)
        self.name = f"frank(s={s:g})"
        self.is_strict = True

    def pair(self, a: float, b: float) -> float:
        s = self.s
        value = 1.0 + (s**a - 1.0) * (s**b - 1.0) / (s - 1.0)
        # Guard tiny negative drift from floating point before the log.
        value = max(value, 1e-300)
        return min(1.0, max(0.0, math.log(value, s)))

    def pair_matrix(self, a, b):
        s = self.s
        value = 1.0 + (s**a - 1.0) * (s**b - 1.0) / (s - 1.0)
        value = _np.maximum(value, 1e-300)
        logs = _np.log(value) / math.log(s)
        return _np.minimum(1.0, _np.maximum(0.0, logs))


class SchweizerSklarTNorm(BinaryScoringFunction):
    """Schweizer–Sklar family: ``t(a,b) = (max(0, a^p + b^p - 1))^(1/p)``.

    Defined here for ``p > 0``; ``p = 1`` is Lukasiewicz and the limit
    ``p -> 0`` is the product norm.
    """

    def __init__(self, p: float = 1.0) -> None:
        if p <= 0:
            raise ValueError(f"Schweizer–Sklar parameter must be > 0, got {p}")
        self.p = float(p)
        self.name = f"schweizer-sklar(p={p:g})"
        self.is_strict = True

    def pair(self, a: float, b: float) -> float:
        # The boundary condition t(a, 1) = a is exact; evaluating the
        # formula there loses tiny a to floating-point cancellation.
        if b == 1.0:
            return a
        if a == 1.0:
            return b
        base = a**self.p + b**self.p - 1.0
        if base <= 0.0:
            return 0.0
        return base ** (1.0 / self.p)

    def pair_matrix(self, a, b):
        base = a**self.p + b**self.p - 1.0
        powed = _np.maximum(base, 0.0) ** (1.0 / self.p)
        return _np.where(b == 1.0, a, _np.where(a == 1.0, b, powed))


#: Singleton instances for the parameter-free norms.
MIN = MinimumTNorm()
PRODUCT = ProductTNorm()
LUKASIEWICZ = LukasiewiczTNorm()
DRASTIC = DrasticTNorm()
EINSTEIN = EinsteinTNorm()

#: The full parameter-free catalog, used by tests and benchmarks.
STANDARD_TNORMS = (MIN, PRODUCT, LUKASIEWICZ, DRASTIC, EINSTEIN)


def tnorm_catalog() -> tuple:
    """Return a representative catalog including parametric family members."""
    return STANDARD_TNORMS + (
        HamacherTNorm(0.5),
        HamacherTNorm(2.0),
        YagerTNorm(2.0),
        YagerTNorm(5.0),
        FrankTNorm(2.0),
        FrankTNorm(10.0),
        SchweizerSklarTNorm(2.0),
    )
