"""Triangular co-norms: scoring functions for fuzzy disjunction (section 3).

A *triangular co-norm* satisfies monotonicity, commutativity, and
associativity like a t-norm, but with the dual boundary conditions
(V-conservation): ``s(1, 1) = 1`` and ``s(x, 0) = s(0, x) = x``.

Following Alsina [Al85], every t-norm ``t`` induces its dual co-norm
``s(a, b) = 1 - t(1 - a, 1 - b)``; :class:`DualConorm` implements exactly
that construction, and the module also provides the common co-norms in
closed form.  De Morgan duality between a norm and its co-norm (with the
standard negation) is verified by the property suite.

Co-norms are monotone but *not* strict in the paper's sense (``s`` hits 1
as soon as one argument is 1), which is precisely why the lower bound of
Theorem 4.2 does not apply to disjunction and the cheap ``m * k``
algorithm of section 4.1 exists (see :mod:`repro.core.disjunction`).
"""

from __future__ import annotations

from repro.scoring.base import BinaryScoringFunction, _np
from repro.scoring.tnorms import (
    DrasticTNorm,
    EinsteinTNorm,
    HamacherTNorm,
    LukasiewiczTNorm,
    MinimumTNorm,
    ProductTNorm,
    YagerTNorm,
)


class MaximumConorm(BinaryScoringFunction):
    """Zadeh's standard disjunction rule: ``s(a, b) = max(a, b)``."""

    name = "max"
    is_strict = False
    _batch_exact = True

    def pair(self, a: float, b: float) -> float:
        return a if a >= b else b

    def pair_matrix(self, a, b):
        return _np.maximum(a, b)


class ProbabilisticSumConorm(BinaryScoringFunction):
    """Dual of the product norm: ``s(a, b) = a + b - a*b``."""

    name = "probabilistic-sum"
    is_strict = False
    _batch_exact = True

    def pair(self, a: float, b: float) -> float:
        return a + b - a * b

    def pair_matrix(self, a, b):
        return a + b - a * b


class BoundedSumConorm(BinaryScoringFunction):
    """Dual of Lukasiewicz: ``s(a, b) = min(1, a + b)``."""

    name = "bounded-sum"
    is_strict = False
    _batch_exact = True

    def pair(self, a: float, b: float) -> float:
        return min(1.0, a + b)

    def pair_matrix(self, a, b):
        return _np.minimum(1.0, a + b)


class DrasticConorm(BinaryScoringFunction):
    """The largest co-norm: ``s(a,b) = b if a == 0, a if b == 0, else 1``."""

    name = "drastic-conorm"
    is_strict = False
    _batch_exact = True

    def pair(self, a: float, b: float) -> float:
        if a == 0.0:
            return b
        if b == 0.0:
            return a
        return 1.0

    def pair_matrix(self, a, b):
        return _np.where(a == 0.0, b, _np.where(b == 0.0, a, 1.0))


class DualConorm(BinaryScoringFunction):
    """The co-norm dual to a given t-norm: ``s(a,b) = 1 - t(1-a, 1-b)``.

    This is the generic Alsina construction; it lets any member of the
    parametric t-norm families act as a disjunction rule.
    """

    is_strict = False

    def __init__(self, tnorm: BinaryScoringFunction) -> None:
        self._tnorm = tnorm
        self.name = f"dual({tnorm.name})"
        inner = getattr(tnorm, "pair_matrix", None)
        if inner is not None:
            # Instance-level vectorized form; exact iff the norm's is.
            self.pair_matrix = lambda a, b: 1.0 - inner(1.0 - a, 1.0 - b)
            self._batch_exact = tnorm.batch_exact

    def pair(self, a: float, b: float) -> float:
        return 1.0 - self._tnorm.pair(1.0 - a, 1.0 - b)


#: Singleton instances for the parameter-free co-norms.
MAX = MaximumConorm()
PROBABILISTIC_SUM = ProbabilisticSumConorm()
BOUNDED_SUM = BoundedSumConorm()
DRASTIC_CONORM = DrasticConorm()

STANDARD_CONORMS = (MAX, PROBABILISTIC_SUM, BOUNDED_SUM, DRASTIC_CONORM)

#: (t-norm, closed-form co-norm) De Morgan pairs used by the property suite.
DE_MORGAN_PAIRS = (
    (MinimumTNorm(), MAX),
    (ProductTNorm(), PROBABILISTIC_SUM),
    (LukasiewiczTNorm(), BOUNDED_SUM),
    (DrasticTNorm(), DRASTIC_CONORM),
)


def conorm_catalog() -> tuple:
    """Representative co-norm catalog, mirroring the t-norm catalog."""
    return STANDARD_CONORMS + (
        DualConorm(HamacherTNorm(0.5)),
        DualConorm(EinsteinTNorm()),
        DualConorm(YagerTNorm(2.0)),
    )
