"""Negation rules for fuzzy complement (section 3).

The paper uses Zadeh's standard negation ``n(x) = 1 - x`` and notes
(following Bonissone and Decker) that "suitable" negation functions make
De Morgan's laws hold between a t-norm and its co-norm.  A *strong
negation* is a strictly decreasing involution with ``n(0) = 1`` and
``n(1) = 0``; the Sugeno and Yager families below are the classical
parametric examples.
"""

from __future__ import annotations

from repro.errors import GradeError
from repro.grades import validate_grade

try:  # numpy is optional; scalar negation never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None


class Negation:
    """A fuzzy negation: decreasing, ``n(0) = 1``, ``n(1) = 0``."""

    name = "negation"

    def __call__(self, grade: float) -> float:
        return validate_grade(self._negate(validate_grade(grade)))

    def _negate(self, grade: float) -> float:
        raise NotImplementedError

    def negate_matrix(self, grades):
        """Batch form of ``__call__`` over a float64 array of any shape.

        Families with closed-form array rules override ``_negate_matrix``;
        the base implementation loops the scalar rule, so every negation
        supports the API.
        """
        if _np is None:  # pragma: no cover - exercised on numpy-free installs
            raise GradeError(f"{self.name}: negate_matrix requires numpy")
        values = _np.asarray(grades, dtype=_np.float64)
        if values.size and (
            not _np.isfinite(values).all()
            or values.min() < 0.0
            or values.max() > 1.0
        ):
            raise GradeError(f"{self.name}: batch grades must lie in [0, 1]")
        result = _np.asarray(self._negate_matrix(values), dtype=_np.float64)
        if result.size and (
            not _np.isfinite(result).all()
            or result.min() < 0.0
            or result.max() > 1.0
        ):
            raise GradeError(f"{self.name}: negation left [0, 1]")
        return result

    def _negate_matrix(self, values):
        negate = self._negate
        flat = values.reshape(-1).tolist()
        out = _np.fromiter(
            (negate(v) for v in flat), dtype=_np.float64, count=len(flat)
        )
        return out.reshape(values.shape)

    def is_involution(self, samples: int = 101, tol: float = 1e-9) -> bool:
        """Empirically check ``n(n(x)) == x`` on an even grid."""
        for i in range(samples):
            x = i / (samples - 1)
            if abs(self(self(x)) - x) > tol:
                return False
        return True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class StandardNegation(Negation):
    """Zadeh's rule: ``n(x) = 1 - x``.  A strong negation."""

    name = "standard"

    def _negate(self, grade: float) -> float:
        return 1.0 - grade

    def _negate_matrix(self, values):
        return 1.0 - values


class SugenoNegation(Negation):
    """Sugeno family: ``n(x) = (1 - x) / (1 + lam * x)`` with ``lam > -1``.

    ``lam = 0`` recovers the standard negation.  Every member is a strong
    negation (an involution).
    """

    def __init__(self, lam: float = 0.0) -> None:
        if lam <= -1.0:
            raise ValueError(f"Sugeno parameter must be > -1, got {lam}")
        self.lam = float(lam)
        self.name = f"sugeno(lambda={lam:g})"

    def _negate(self, grade: float) -> float:
        return (1.0 - grade) / (1.0 + self.lam * grade)

    def _negate_matrix(self, values):
        return (1.0 - values) / (1.0 + self.lam * values)


class YagerNegation(Negation):
    """Yager family: ``n(x) = (1 - x^w)^(1/w)`` with ``w > 0``.

    ``w = 1`` recovers the standard negation.
    """

    def __init__(self, w: float = 1.0) -> None:
        if w <= 0:
            raise ValueError(f"Yager negation parameter must be > 0, got {w}")
        self.w = float(w)
        self.name = f"yager-neg(w={w:g})"

    def _negate(self, grade: float) -> float:
        return (1.0 - grade**self.w) ** (1.0 / self.w)

    def _negate_matrix(self, values):
        return _np.maximum(0.0, 1.0 - values**self.w) ** (1.0 / self.w)


STANDARD = StandardNegation()


def negation_catalog() -> tuple:
    """Representative negations for the property suite."""
    return (
        STANDARD,
        SugenoNegation(0.5),
        SugenoNegation(2.0),
        SugenoNegation(-0.5),
        YagerNegation(2.0),
        YagerNegation(0.5),
    )
