"""Zadeh's standard fuzzy-logic rules, bundled (paper section 3).

The standard semantics the paper starts from:

* conjunction: ``min``
* disjunction: ``max``
* negation: ``1 - x``

:class:`FuzzySemantics` packages one conjunction rule, one disjunction
rule and one negation together, so the query evaluator
(:mod:`repro.core.evaluation`) can be parameterized by a complete,
coherent logic rather than three loose functions.  ``ZADEH`` is the
default; ``PROBABILISTIC`` and ``LUKASIEWICZ_LOGIC`` are the other two
classical De Morgan triples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scoring import conorms, negations, tnorms
from repro.scoring.base import ScoringFunction
from repro.scoring.negations import Negation


@dataclass(frozen=True)
class FuzzySemantics:
    """A complete fuzzy propositional semantics (t-norm, co-norm, negation)."""

    name: str
    conjunction: ScoringFunction
    disjunction: ScoringFunction
    negation: Negation = field(default_factory=negations.StandardNegation)

    def __post_init__(self) -> None:
        if not self.conjunction.is_monotone or not self.disjunction.is_monotone:
            raise ValueError(f"semantics {self.name!r} uses non-monotone rules")


#: The standard rules of fuzzy logic, as defined by Zadeh.
ZADEH = FuzzySemantics("zadeh", tnorms.MIN, conorms.MAX)

#: Product/probabilistic-sum logic (independence semantics).
PROBABILISTIC = FuzzySemantics("probabilistic", tnorms.PRODUCT, conorms.PROBABILISTIC_SUM)

#: Lukasiewicz logic (bounded difference / bounded sum).
LUKASIEWICZ_LOGIC = FuzzySemantics("lukasiewicz", tnorms.LUKASIEWICZ, conorms.BOUNDED_SUM)

ALL_SEMANTICS = (ZADEH, PROBABILISTIC, LUKASIEWICZ_LOGIC)
