"""Scoring-function abstractions (paper section 3).

An *m-ary scoring function* maps ``[0, 1]^m`` to ``[0, 1]``; it combines
the grades an object earned under the subqueries into the object's overall
grade under the full query.  The paper cares about two structural
properties of scoring functions, because they are exactly what its
algorithmic theorems need:

* **Monotonicity** — ``t(x1..xm) <= t(x1'..xm')`` whenever ``xi <= xi'``
  for every i.  Required for the upper bound (Theorem 4.1): Fagin's
  algorithm is correct precisely for monotone scoring functions.
* **Strictness** — ``t(x1..xm) = 1`` iff every ``xi = 1``.  Required for
  the matching lower bound (Theorem 4.2).

:class:`ScoringFunction` is the base class for every rule in the catalog.
Subclasses implement :meth:`_combine` over a nonempty tuple of grades;
the base class handles validation and exposes the property flags.
:class:`BinaryScoringFunction` adds iteration, turning an associative
2-ary rule into an m-ary rule the way the paper describes ("in practice an
m-ary conjunction is almost always evaluated by using an associative
2-ary function that is iterated").

Batch evaluation
----------------
:meth:`ScoringFunction.combine_matrix` scores a whole ``[n, m]`` grade
matrix at once — one row per object, one column per subquery — and is
the scoring half of the vectorized kernels (:mod:`repro.kernels`).  The
base implementation loops :meth:`_combine` row by row, so every rule
supports the API; catalog rules override :meth:`_combine_matrix` (or
:meth:`BinaryScoringFunction.pair_matrix`) with native numpy code.  A
native override that folds the same IEEE-754 operations in the same
order as the scalar rule is *batch-exact*: bit-identical to per-row
``__call__``, which is what lets the vector kernels reproduce scalar
stop decisions byte for byte.  Rules whose scalar path goes through
``math.pow``/``math.log`` (Yager, Frank, power mean, ...) cannot make
that promise against numpy's SIMD transcendentals and leave
``_batch_exact`` False; they still agree to within 1e-12.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import reduce
from typing import Callable, Sequence

from repro.grades import validate_grade
from repro.errors import GradeError, ScoringError

try:  # numpy is optional at runtime; scalar scoring never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None


class ScoringFunction(ABC):
    """A rule assigning an overall grade to a tuple of subquery grades.

    Following [FW97], a scoring function here accepts tuples of *any*
    positive arity unless the subclass restricts it.  The class carries
    metadata used by the algorithms and the property-based test suite:

    ``name``
        Short identifier used in reports and benchmarks.
    ``is_monotone`` / ``is_strict``
        Declared structural properties.  The declared flags are verified
        empirically by :mod:`repro.scoring.properties` in the test suite.
    """

    #: Human-readable identifier; subclasses override.
    name: str = "scoring"
    #: Declared monotonicity (checked by the property suite).
    is_monotone: bool = True
    #: Declared strictness (checked by the property suite).
    is_strict: bool = False
    #: True when the rule is invariant under argument permutation.
    is_symmetric: bool = True

    def __call__(self, grades: Sequence[float]) -> float:
        values = tuple(validate_grade(g) for g in grades)
        if not values:
            raise ScoringError(f"{self.name}: cannot score an empty grade tuple")
        return validate_grade(self._combine(values))

    @abstractmethod
    def _combine(self, grades: tuple) -> float:
        """Combine a validated, nonempty tuple of grades."""

    #: True when the native ``_combine_matrix`` override is guaranteed
    #: bit-identical to the scalar path (same IEEE operations, same
    #: order).  Meaningless unless :attr:`supports_batch` is True.
    _batch_exact: bool = False

    @property
    def supports_batch(self) -> bool:
        """True when the rule has a *native* vectorized implementation
        (so batch evaluation is actually faster than the scalar loop)."""
        return type(self)._combine_matrix is not ScoringFunction._combine_matrix

    @property
    def batch_exact(self) -> bool:
        """True when ``combine_matrix`` is bit-identical to per-row
        ``__call__``.  The scalar-loop fallback is trivially exact; a
        native override must declare exactness via ``_batch_exact``."""
        return not self.supports_batch or self._batch_exact

    def combine_matrix(self, grades):
        """Batch form of ``__call__``: score an ``[n, m]`` grade matrix.

        Each row is one object's grade tuple; the result is a float64
        array of n overall grades.  Validation mirrors the scalar path:
        every input cell and every output grade must be a finite number
        in [0, 1] (:class:`GradeError` otherwise), and an empty grade
        tuple (m == 0) raises :class:`ScoringError`.
        """
        if _np is None:  # pragma: no cover - exercised on numpy-free installs
            raise ScoringError(
                f"{self.name}: combine_matrix requires numpy; "
                "use the scalar __call__ path instead"
            )
        matrix = _np.asarray(grades, dtype=_np.float64)
        if matrix.ndim != 2:
            raise ScoringError(
                f"{self.name}: combine_matrix expects an [n, m] matrix, "
                f"got shape {matrix.shape}"
            )
        n, m = matrix.shape
        if m == 0:
            raise ScoringError(f"{self.name}: cannot score an empty grade tuple")
        if n == 0:
            return _np.empty(0, dtype=_np.float64)
        if not _np.isfinite(matrix).all() or matrix.min() < 0.0 or matrix.max() > 1.0:
            raise GradeError(
                f"{self.name}: batch grades must lie in [0, 1] and be finite"
            )
        result = _np.asarray(self._combine_matrix(matrix), dtype=_np.float64)
        if not _np.isfinite(result).all() or result.min() < 0.0 or result.max() > 1.0:
            raise GradeError(
                f"{self.name}: rule produced grades outside [0, 1]"
            )
        return result

    def _combine_matrix(self, matrix):
        """Combine a validated ``[n, m]`` float64 matrix row by row.

        Override hook for native vectorized rules.  The base version is
        the scalar fallback: it calls ``_combine`` per row, so it is
        always available and always bit-identical to ``__call__``.
        """
        combine = self._combine
        rows = matrix.tolist()
        return _np.fromiter(
            (combine(tuple(row)) for row in rows),
            dtype=_np.float64,
            count=len(rows),
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class BinaryScoringFunction(ScoringFunction):
    """An associative 2-ary rule extended to m arguments by iteration.

    Subclasses implement :meth:`pair`; ``_combine`` left-folds it, which
    is well-defined for associative rules (all t-norms and t-co-norms).
    Subclasses with a vectorized pairwise form implement
    :meth:`pair_matrix` over float64 arrays; ``_combine_matrix`` then
    left-folds it column by column, mirroring the scalar fold op for op
    (which is what makes elementwise-arithmetic rules batch-exact).
    """

    def pair(self, a: float, b: float) -> float:
        """Combine exactly two grades."""
        raise NotImplementedError

    def _combine(self, grades: tuple) -> float:
        return reduce(self.pair, grades)

    # Subclasses (or instances) set ``pair_matrix`` to the vectorized
    # pairwise rule: (ndarray[n], ndarray[n]) -> ndarray[n].
    pair_matrix: "Callable" = None

    @property
    def supports_batch(self) -> bool:
        if getattr(self, "pair_matrix", None) is not None:
            return True
        return (
            type(self)._combine_matrix
            is not BinaryScoringFunction._combine_matrix
        )

    def _combine_matrix(self, matrix):
        pair_matrix = getattr(self, "pair_matrix", None)
        if pair_matrix is None:
            return super()._combine_matrix(matrix)
        if matrix.shape[1] == 1:
            return matrix[:, 0].copy()
        accumulated = matrix[:, 0]
        for column in range(1, matrix.shape[1]):
            accumulated = pair_matrix(accumulated, matrix[:, column])
        return accumulated


class FunctionScoring(ScoringFunction):
    """Adapter wrapping a plain callable as a scoring function.

    Used for user-defined scoring functions in the middleware engine
    (Garlic's "option 2": allow arbitrary user rules, then guard
    monotonicity at run time — see :mod:`repro.middleware.monotonicity`).
    """

    def __init__(
        self,
        func: Callable[[Sequence[float]], float],
        name: str = "user",
        *,
        is_monotone: bool = True,
        is_strict: bool = False,
        is_symmetric: bool = True,
    ) -> None:
        self._func = func
        self.name = name
        self.is_monotone = is_monotone
        self.is_strict = is_strict
        self.is_symmetric = is_symmetric

    def _combine(self, grades: tuple) -> float:
        return self._func(grades)


def as_scoring_function(rule) -> ScoringFunction:
    """Coerce ``rule`` (a ScoringFunction or a callable) to a ScoringFunction."""
    if isinstance(rule, ScoringFunction):
        return rule
    if callable(rule):
        return FunctionScoring(rule, name=getattr(rule, "__name__", "user"))
    raise ScoringError(f"cannot interpret {rule!r} as a scoring function")
