"""Scoring-function abstractions (paper section 3).

An *m-ary scoring function* maps ``[0, 1]^m`` to ``[0, 1]``; it combines
the grades an object earned under the subqueries into the object's overall
grade under the full query.  The paper cares about two structural
properties of scoring functions, because they are exactly what its
algorithmic theorems need:

* **Monotonicity** — ``t(x1..xm) <= t(x1'..xm')`` whenever ``xi <= xi'``
  for every i.  Required for the upper bound (Theorem 4.1): Fagin's
  algorithm is correct precisely for monotone scoring functions.
* **Strictness** — ``t(x1..xm) = 1`` iff every ``xi = 1``.  Required for
  the matching lower bound (Theorem 4.2).

:class:`ScoringFunction` is the base class for every rule in the catalog.
Subclasses implement :meth:`_combine` over a nonempty tuple of grades;
the base class handles validation and exposes the property flags.
:class:`BinaryScoringFunction` adds iteration, turning an associative
2-ary rule into an m-ary rule the way the paper describes ("in practice an
m-ary conjunction is almost always evaluated by using an associative
2-ary function that is iterated").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import reduce
from typing import Callable, Sequence

from repro.grades import validate_grade
from repro.errors import ScoringError


class ScoringFunction(ABC):
    """A rule assigning an overall grade to a tuple of subquery grades.

    Following [FW97], a scoring function here accepts tuples of *any*
    positive arity unless the subclass restricts it.  The class carries
    metadata used by the algorithms and the property-based test suite:

    ``name``
        Short identifier used in reports and benchmarks.
    ``is_monotone`` / ``is_strict``
        Declared structural properties.  The declared flags are verified
        empirically by :mod:`repro.scoring.properties` in the test suite.
    """

    #: Human-readable identifier; subclasses override.
    name: str = "scoring"
    #: Declared monotonicity (checked by the property suite).
    is_monotone: bool = True
    #: Declared strictness (checked by the property suite).
    is_strict: bool = False
    #: True when the rule is invariant under argument permutation.
    is_symmetric: bool = True

    def __call__(self, grades: Sequence[float]) -> float:
        values = tuple(validate_grade(g) for g in grades)
        if not values:
            raise ScoringError(f"{self.name}: cannot score an empty grade tuple")
        return validate_grade(self._combine(values))

    @abstractmethod
    def _combine(self, grades: tuple) -> float:
        """Combine a validated, nonempty tuple of grades."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class BinaryScoringFunction(ScoringFunction):
    """An associative 2-ary rule extended to m arguments by iteration.

    Subclasses implement :meth:`pair`; ``_combine`` left-folds it, which
    is well-defined for associative rules (all t-norms and t-co-norms).
    """

    def pair(self, a: float, b: float) -> float:
        """Combine exactly two grades."""
        raise NotImplementedError

    def _combine(self, grades: tuple) -> float:
        return reduce(self.pair, grades)


class FunctionScoring(ScoringFunction):
    """Adapter wrapping a plain callable as a scoring function.

    Used for user-defined scoring functions in the middleware engine
    (Garlic's "option 2": allow arbitrary user rules, then guard
    monotonicity at run time — see :mod:`repro.middleware.monotonicity`).
    """

    def __init__(
        self,
        func: Callable[[Sequence[float]], float],
        name: str = "user",
        *,
        is_monotone: bool = True,
        is_strict: bool = False,
        is_symmetric: bool = True,
    ) -> None:
        self._func = func
        self.name = name
        self.is_monotone = is_monotone
        self.is_strict = is_strict
        self.is_symmetric = is_symmetric

    def _combine(self, grades: tuple) -> float:
        return self._func(grades)


def as_scoring_function(rule) -> ScoringFunction:
    """Coerce ``rule`` (a ScoringFunction or a callable) to a ScoringFunction."""
    if isinstance(rule, ScoringFunction):
        return rule
    if callable(rule):
        return FunctionScoring(rule, name=getattr(rule, "__name__", "user"))
    raise ScoringError(f"cannot interpret {rule!r} as a scoring function")
