"""Empirical property checkers for scoring functions (paper section 3).

The paper's taxonomy of scoring functions is defined by axioms:
t-norm axioms (conservation, monotonicity, commutativity, associativity),
strictness, De Morgan duality, and preservation of logical equivalence
(the hypothesis of Theorem 3.1).  This module turns each axiom into a
checker that searches a deterministic grid plus random samples for a
*witness* violating the axiom.  Checkers return a :class:`PropertyReport`
carrying the witness when one is found, so test failures are actionable
and benchmark E10 can report which catalog rules fail which identities.

A checker passing does not prove the axiom, but the grids include the
boundary points (0 and 1) where fuzzy connectives typically misbehave,
and the test suite additionally runs hypothesis-driven randomized checks.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Tuple

from repro.scoring.base import ScoringFunction, as_scoring_function


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of an axiom check.

    ``passed`` is False iff a witness (a concrete grade tuple violating
    the axiom) was found; ``witness`` then holds that tuple and
    ``detail`` a human-readable account of the violation.
    """

    property_name: str
    passed: bool
    witness: Optional[tuple] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.passed


def _grid(resolution: int) -> Tuple[float, ...]:
    return tuple(i / (resolution - 1) for i in range(resolution))


def _samples(
    arity: int, resolution: int, trials: int, seed: int
) -> Iterable[Tuple[float, ...]]:
    """Deterministic grid points followed by seeded random points."""
    grid = _grid(resolution)
    yield from itertools.product(grid, repeat=arity)
    rng = random.Random(seed)
    for _ in range(trials):
        yield tuple(rng.random() for _ in range(arity))


def check_tnorm_conservation(
    rule, *, resolution: int = 11, trials: int = 200, seed: int = 0, tol: float = 1e-9
) -> PropertyReport:
    """A-conservation: ``t(0,0) = 0`` and ``t(x,1) = t(1,x) = x``."""
    t = as_scoring_function(rule)
    if abs(t((0.0, 0.0))) > tol:
        return PropertyReport(
            "tnorm-conservation", False, (0.0, 0.0), f"t(0,0) = {t((0.0, 0.0))}"
        )
    for (x,) in _samples(1, resolution, trials, seed):
        if abs(t((x, 1.0)) - x) > tol:
            return PropertyReport(
                "tnorm-conservation", False, (x, 1.0), f"t({x},1) = {t((x, 1.0))} != {x}"
            )
        if abs(t((1.0, x)) - x) > tol:
            return PropertyReport(
                "tnorm-conservation", False, (1.0, x), f"t(1,{x}) = {t((1.0, x))} != {x}"
            )
    return PropertyReport("tnorm-conservation", True)


def check_conorm_conservation(
    rule, *, resolution: int = 11, trials: int = 200, seed: int = 0, tol: float = 1e-9
) -> PropertyReport:
    """V-conservation: ``s(1,1) = 1`` and ``s(x,0) = s(0,x) = x``."""
    s = as_scoring_function(rule)
    if abs(s((1.0, 1.0)) - 1.0) > tol:
        return PropertyReport(
            "conorm-conservation", False, (1.0, 1.0), f"s(1,1) = {s((1.0, 1.0))}"
        )
    for (x,) in _samples(1, resolution, trials, seed):
        if abs(s((x, 0.0)) - x) > tol:
            return PropertyReport(
                "conorm-conservation", False, (x, 0.0), f"s({x},0) = {s((x, 0.0))} != {x}"
            )
        if abs(s((0.0, x)) - x) > tol:
            return PropertyReport(
                "conorm-conservation", False, (0.0, x), f"s(0,{x}) = {s((0.0, x))} != {x}"
            )
    return PropertyReport("conorm-conservation", True)


def check_commutativity(
    rule, *, resolution: int = 9, trials: int = 200, seed: int = 1, tol: float = 1e-9
) -> PropertyReport:
    """``t(a, b) == t(b, a)`` over the sample set."""
    t = as_scoring_function(rule)
    for a, b in _samples(2, resolution, trials, seed):
        if abs(t((a, b)) - t((b, a))) > tol:
            return PropertyReport(
                "commutativity", False, (a, b),
                f"t({a},{b}) = {t((a, b))} != t({b},{a}) = {t((b, a))}",
            )
    return PropertyReport("commutativity", True)


def check_associativity(
    rule, *, resolution: int = 7, trials: int = 200, seed: int = 2, tol: float = 1e-8
) -> PropertyReport:
    """``t(t(a,b),c) == t(a,t(b,c))`` over the sample set."""
    t = as_scoring_function(rule)
    for a, b, c in _samples(3, resolution, trials, seed):
        left = t((t((a, b)), c))
        right = t((a, t((b, c))))
        if abs(left - right) > tol:
            return PropertyReport(
                "associativity", False, (a, b, c),
                f"t(t({a},{b}),{c}) = {left} != t({a},t({b},{c})) = {right}",
            )
    return PropertyReport("associativity", True)


def check_monotonicity(
    rule,
    arity: int = 2,
    *,
    trials: int = 500,
    seed: int = 3,
    tol: float = 1e-9,
) -> PropertyReport:
    """Monotonicity in every argument, via random dominated pairs.

    Draws ``X <= X'`` componentwise and checks ``t(X) <= t(X') + tol``.
    """
    t = as_scoring_function(rule)
    rng = random.Random(seed)
    for _ in range(trials):
        lo = tuple(rng.random() for _ in range(arity))
        hi = tuple(x + (1.0 - x) * rng.random() for x in lo)
        if t(lo) > t(hi) + tol:
            return PropertyReport(
                "monotonicity", False, (lo, hi),
                f"t({lo}) = {t(lo)} > t({hi}) = {t(hi)}",
            )
    return PropertyReport("monotonicity", True)


def check_strictness(
    rule,
    arity: int = 2,
    *,
    trials: int = 500,
    seed: int = 4,
    tol: float = 1e-9,
) -> PropertyReport:
    """Strictness: ``t(X) = 1`` iff every coordinate of ``X`` is 1.

    The 'if' direction is checked exactly at the all-ones point; the
    'only if' direction over random points with at least one coordinate
    pulled strictly below 1.
    """
    t = as_scoring_function(rule)
    ones = tuple(1.0 for _ in range(arity))
    if abs(t(ones) - 1.0) > tol:
        return PropertyReport(
            "strictness", False, ones, f"t(1,...,1) = {t(ones)} != 1"
        )
    rng = random.Random(seed)
    for _ in range(trials):
        point = [1.0] * arity
        # Pull a random nonempty subset of coordinates below 1.
        dropped = rng.randrange(1, 2**arity)
        for i in range(arity):
            if dropped >> i & 1:
                point[i] = rng.uniform(0.0, 0.999)
        if t(tuple(point)) >= 1.0 - tol:
            return PropertyReport(
                "strictness", False, tuple(point),
                f"t({tuple(point)}) = {t(tuple(point))} reaches 1 off the corner",
            )
    return PropertyReport("strictness", True)


def check_de_morgan(
    tnorm,
    conorm,
    negation: Callable[[float], float],
    *,
    resolution: int = 9,
    trials: int = 200,
    seed: int = 5,
    tol: float = 1e-8,
) -> PropertyReport:
    """De Morgan duality: ``s(a,b) = n(t(n(a), n(b)))`` and dually.

    This is the Bonissone–Decker relationship the paper quotes for
    "suitable" negations.
    """
    t = as_scoring_function(tnorm)
    s = as_scoring_function(conorm)
    for a, b in _samples(2, resolution, trials, seed):
        via_t = negation(t((negation(a), negation(b))))
        if abs(s((a, b)) - via_t) > tol:
            return PropertyReport(
                "de-morgan", False, (a, b),
                f"s({a},{b}) = {s((a, b))} != n(t(n,n)) = {via_t}",
            )
        via_s = negation(s((negation(a), negation(b))))
        if abs(t((a, b)) - via_s) > tol:
            return PropertyReport(
                "de-morgan", False, (a, b),
                f"t({a},{b}) = {t((a, b))} != n(s(n,n)) = {via_s}",
            )
    return PropertyReport("de-morgan", True)


#: The positive-query logical equivalences used to *test* equivalence
#: preservation.  Each entry is (name, lhs, rhs) where lhs/rhs evaluate a
#: grade triple (a, b, c) under conjunction rule ``t`` and disjunction
#: rule ``s``.  Theorem 3.1 says min/max are the unique monotone pair
#: satisfying all of these.
EQUIVALENCE_IDENTITIES: Tuple[Tuple[str, Callable, Callable], ...] = (
    (
        "idempotence-and (A ^ A == A)",
        lambda t, s, a, b, c: t((a, a)),
        lambda t, s, a, b, c: a,
    ),
    (
        "idempotence-or (A v A == A)",
        lambda t, s, a, b, c: s((a, a)),
        lambda t, s, a, b, c: a,
    ),
    (
        "absorption (A ^ (A v B) == A)",
        lambda t, s, a, b, c: t((a, s((a, b)))),
        lambda t, s, a, b, c: a,
    ),
    (
        "distributivity (A ^ (B v C) == (A ^ B) v (A ^ C))",
        lambda t, s, a, b, c: t((a, s((b, c)))),
        lambda t, s, a, b, c: s((t((a, b)), t((a, c)))),
    ),
)


def check_equivalence_preservation(
    tnorm,
    conorm,
    *,
    resolution: int = 7,
    trials: int = 300,
    seed: int = 6,
    tol: float = 1e-8,
) -> PropertyReport:
    """Check the positive-query equivalences of Theorem 3.1's hypothesis.

    Returns a failing report (naming the first violated identity) for
    every conjunction/disjunction pair other than min/max — this is the
    empirical content of benchmark E10.
    """
    t = as_scoring_function(tnorm)
    s = as_scoring_function(conorm)
    for name, lhs, rhs in EQUIVALENCE_IDENTITIES:
        for a, b, c in _samples(3, resolution, trials, seed):
            left = lhs(t, s, a, b, c)
            right = rhs(t, s, a, b, c)
            if abs(left - right) > tol:
                return PropertyReport(
                    "equivalence-preservation", False, (a, b, c),
                    f"{name} fails: lhs = {left}, rhs = {right}",
                )
    return PropertyReport("equivalence-preservation", True)


def check_local_linearity(
    rule,
    *,
    arity: int = 3,
    trials: int = 200,
    seed: int = 7,
    tol: float = 1e-8,
) -> PropertyReport:
    """Local linearity (D3') of the Fagin–Wimmers weighted family of ``rule``.

    Draws random ordered weightings Theta, Theta', a mixture coefficient
    ``a``, and a grade tuple ``X``, then checks
    ``f_{a Theta + (1-a) Theta'}(X) == a f_Theta(X) + (1-a) f_{Theta'}(X)``.
    """
    from repro.scoring.weighted import mixture, weighted_score

    rng = random.Random(seed)

    def ordered_weighting() -> tuple:
        raw = sorted((rng.random() for _ in range(arity)), reverse=True)
        total = sum(raw)
        return tuple(w / total for w in raw)

    f = as_scoring_function(rule)
    for _ in range(trials):
        theta_a = ordered_weighting()
        theta_b = ordered_weighting()
        alpha = rng.random()
        xs = tuple(rng.random() for _ in range(arity))
        mixed = mixture(theta_a, theta_b, alpha)
        lhs = weighted_score(f, mixed, xs)
        rhs = alpha * weighted_score(f, theta_a, xs) + (1.0 - alpha) * weighted_score(
            f, theta_b, xs
        )
        if abs(lhs - rhs) > tol:
            return PropertyReport(
                "local-linearity", False, (theta_a, theta_b, alpha, xs),
                f"f_mixed = {lhs} != interpolation = {rhs}",
            )
    return PropertyReport("local-linearity", True)


@dataclass(frozen=True)
class TNormReport:
    """Bundle of the four t-norm axioms plus strictness for one rule."""

    rule_name: str
    conservation: PropertyReport
    monotonicity: PropertyReport
    commutativity: PropertyReport
    associativity: PropertyReport
    strictness: PropertyReport

    @property
    def is_tnorm(self) -> bool:
        return bool(
            self.conservation
            and self.monotonicity
            and self.commutativity
            and self.associativity
        )


def audit_tnorm(rule) -> TNormReport:
    """Run the full t-norm axiom battery against ``rule``."""
    t = as_scoring_function(rule)
    return TNormReport(
        rule_name=t.name,
        conservation=check_tnorm_conservation(t),
        monotonicity=check_monotonicity(t),
        commutativity=check_commutativity(t),
        associativity=check_associativity(t),
        strictness=check_strictness(t),
    )


def certify_monotone(
    rule: ScoringFunction, arity: int, *, trials: int = 1000, seed: int = 99
) -> PropertyReport:
    """Randomized monotonicity certificate used by the middleware guard.

    This is the mechanism behind Garlic's choice (section 4.2) to accept
    arbitrary user-defined scoring functions: before running Fagin's
    algorithm, the engine certifies monotonicity empirically and refuses
    rules with a concrete counterexample.
    """
    return check_monotonicity(rule, arity, trials=trials, seed=seed)
