"""Mean-type scoring functions (section 3, Thole–Zimmermann–Zysno).

The paper singles out weighted and unweighted arithmetic and geometric
means as scoring functions that "perform empirically quite well" yet are
*not* triangular norms — the arithmetic mean does not even conserve the
standard propositional semantics (mean(0, 1) = 1/2, not 0).  They do
satisfy strictness and monotonicity, so the upper and lower bounds of
[Fa96] (Theorems 4.1 and 4.2) still apply — which is exactly why the
paper highlights them, and why experiment E5 runs Fagin's algorithm under
these rules.

Means are genuinely m-ary (not an iterated 2-ary rule): the mean of three
grades is not the mean of a mean, so these classes override ``_combine``
directly rather than extending :class:`BinaryScoringFunction`.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import WeightingError
from repro.scoring.base import ScoringFunction, _np


def _normalized_weights(weights: Sequence[float], arity: int) -> tuple:
    values = tuple(float(w) for w in weights)
    if len(values) != arity:
        raise WeightingError(
            f"expected {arity} weights, got {len(values)}"
        )
    if any(w < 0 for w in values):
        raise WeightingError(f"weights must be nonnegative, got {values}")
    total = sum(values)
    if total <= 0:
        raise WeightingError("weights must not all be zero")
    return tuple(w / total for w in values)


class ArithmeticMean(ScoringFunction):
    """Unweighted arithmetic mean.  Strict and monotone; not a t-norm."""

    name = "mean"
    is_strict = True
    _batch_exact = True

    def _combine(self, grades: tuple) -> float:
        return sum(grades) / len(grades)

    def _combine_matrix(self, matrix):
        # Column-by-column fold: same additions in the same order as
        # the scalar sum(), so the result is bit-identical.
        total = matrix[:, 0].copy()
        for column in range(1, matrix.shape[1]):
            total += matrix[:, column]
        return total / matrix.shape[1]


class GeometricMean(ScoringFunction):
    """Unweighted geometric mean.  Strict and monotone; not a t-norm."""

    name = "geometric-mean"
    is_strict = True

    def _combine(self, grades: tuple) -> float:
        if any(g == 0.0 for g in grades):
            return 0.0
        return math.exp(sum(math.log(g) for g in grades) / len(grades))

    # log/exp go through numpy's SIMD routines, which are not
    # ulp-identical to libm — native but not batch-exact.
    def _combine_matrix(self, matrix):
        zero = (matrix == 0.0).any(axis=1)
        safe = _np.where(matrix == 0.0, 1.0, matrix)
        total = _np.log(safe[:, 0])
        for column in range(1, matrix.shape[1]):
            total += _np.log(safe[:, column])
        out = _np.exp(total / matrix.shape[1])
        out[zero] = 0.0
        return out


class HarmonicMean(ScoringFunction):
    """Unweighted harmonic mean (0 when any grade is 0)."""

    name = "harmonic-mean"
    is_strict = True
    _batch_exact = True

    def _combine(self, grades: tuple) -> float:
        if any(g == 0.0 for g in grades):
            return 0.0
        return len(grades) / sum(1.0 / g for g in grades)

    def _combine_matrix(self, matrix):
        zero = (matrix == 0.0).any(axis=1)
        safe = _np.where(matrix == 0.0, 1.0, matrix)
        total = 1.0 / safe[:, 0]
        for column in range(1, matrix.shape[1]):
            total += 1.0 / safe[:, column]
        out = matrix.shape[1] / total
        out[zero] = 0.0
        return out


class PowerMean(ScoringFunction):
    """Power (generalized) mean with exponent ``p``.

    ``p = 1`` is arithmetic, ``p -> 0`` geometric, ``p = -1`` harmonic,
    ``p -> -inf`` min, ``p -> +inf`` max.  Strict and monotone for every
    finite p (with the 0-grade convention for p <= 0).
    """

    def __init__(self, p: float) -> None:
        if p == 0:
            raise ValueError("use GeometricMean for p = 0")
        self.p = float(p)
        self.name = f"power-mean(p={p:g})"
        self.is_strict = True

    def _combine(self, grades: tuple) -> float:
        if self.p < 0:
            # Subnormal grades would overflow g**p; mathematically the
            # negative-exponent mean tends to 0 as any grade does.
            if any(g < 1e-9 for g in grades):
                return 0.0
        total = sum(g**self.p for g in grades) / len(grades)
        return min(1.0, total ** (1.0 / self.p))

    def _combine_matrix(self, matrix):
        if self.p < 0:
            zero = (matrix < 1e-9).any(axis=1)
            safe = _np.where(matrix < 1e-9, 1.0, matrix)
        else:
            zero = None
            safe = matrix
        total = safe[:, 0] ** self.p
        for column in range(1, matrix.shape[1]):
            total = total + safe[:, column] ** self.p
        out = _np.minimum(1.0, (total / matrix.shape[1]) ** (1.0 / self.p))
        if zero is not None:
            out[zero] = 0.0
        return out


class WeightedArithmeticMean(ScoringFunction):
    """Fixed-weight arithmetic mean ``sum(theta_i * x_i)``.

    This is the one rule the paper calls "easy" to weight (section 5);
    for every other rule the Fagin–Wimmers formula of
    :mod:`repro.scoring.weighted` is needed.  A weighted mean with unequal
    weights is *not symmetric*.
    """

    is_strict = False  # strict only if every weight is positive
    is_symmetric = False

    def __init__(self, weights: Sequence[float]) -> None:
        self.weights = _normalized_weights(weights, len(tuple(weights)))
        self.is_strict = all(w > 0 for w in self.weights)
        self.name = f"weighted-mean({', '.join(f'{w:.3g}' for w in self.weights)})"

    _batch_exact = True

    def _combine(self, grades: tuple) -> float:
        if len(grades) != len(self.weights):
            raise WeightingError(
                f"{self.name}: expected {len(self.weights)} grades, "
                f"got {len(grades)}"
            )
        return sum(w * g for w, g in zip(self.weights, grades))

    def _combine_matrix(self, matrix):
        if matrix.shape[1] != len(self.weights):
            raise WeightingError(
                f"{self.name}: expected {len(self.weights)} grades, "
                f"got {matrix.shape[1]}"
            )
        total = self.weights[0] * matrix[:, 0]
        for column in range(1, matrix.shape[1]):
            total += self.weights[column] * matrix[:, column]
        return total


class MedianScoring(ScoringFunction):
    """Median of the grades.  Monotone but not strict for m >= 3.

    Included as a catalog member that separates monotonicity from
    strictness: Fagin's algorithm remains correct for the median, but the
    lower bound of Theorem 4.2 does not apply to it.
    """

    name = "median"
    is_strict = False
    _batch_exact = True

    def _combine(self, grades: tuple) -> float:
        ordered = sorted(grades)
        n = len(ordered)
        mid = n // 2
        if n % 2 == 1:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def _combine_matrix(self, matrix):
        ordered = _np.sort(matrix, axis=1)
        n = matrix.shape[1]
        mid = n // 2
        if n % 2 == 1:
            return ordered[:, mid].copy()
        return (ordered[:, mid - 1] + ordered[:, mid]) / 2.0


MEAN = ArithmeticMean()
GEOMETRIC_MEAN = GeometricMean()
HARMONIC_MEAN = HarmonicMean()
MEDIAN = MedianScoring()

STANDARD_MEANS = (MEAN, GEOMETRIC_MEAN, HARMONIC_MEAN)


def mean_catalog(extra_powers: Optional[Sequence[float]] = None) -> tuple:
    """Representative mean-type rules for tests and benchmarks."""
    powers = tuple(extra_powers) if extra_powers is not None else (2.0, -1.0, 0.5)
    return STANDARD_MEANS + tuple(PowerMean(p) for p in powers) + (MEDIAN,)
