"""The Fagin–Wimmers formula for weighting subqueries (paper section 5).

Given an (unweighted, symmetric) rule ``f`` and an *ordered weighting*
``theta_1 >= ... >= theta_m >= 0`` summing to 1, the weighted rule is

    f_Theta(x_1, ..., x_m) =
        (theta_1 - theta_2) * f(x_1)
      + 2 * (theta_2 - theta_3) * f(x_1, x_2)
      + 3 * (theta_3 - theta_4) * f(x_1, x_2, x_3)
      + ...
      + m * theta_m * f(x_1, ..., x_m)

(Equation 5 of the paper).  The coefficients ``i * (theta_i - theta_{i+1})``
(with ``theta_{m+1} = 0``) are nonnegative and sum to 1, so the result is
a convex combination of prefix scores.  The formula satisfies the paper's
desiderata:

* **D1** — equal weights reduce to the unweighted rule ``f``.
* **D2** — a zero-weight argument can be dropped without changing the value.
* **D3** — the value is continuous in the weights.
* **D3'** — the family is *locally linear*: for ordered weightings
  ``Theta, Theta'`` and ``a in [0, 1]``,
  ``f_{a*Theta + (1-a)*Theta'}(X) = a * f_Theta(X) + (1-a) * f_{Theta'}(X)``.

[FW97] proves the formula is the *unique* choice satisfying D1, D2, D3',
and that monotonicity and strictness of ``f`` are inherited by
``f_Theta`` — hence Fagin's algorithm remains correct and optimal in the
weighted case (exercised by experiment E8).

For arbitrary (unordered) weightings over a *symmetric* ``f``, we sort
the (weight, grade) pairs by descending weight before applying the
formula, which is the standard reduction the paper alludes to.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import WeightingError
from repro.scoring.base import ScoringFunction, _np, as_scoring_function


def validate_weighting(weights: Sequence[float], *, tol: float = 1e-9) -> Tuple[float, ...]:
    """Validate a weighting: nonnegative entries summing to 1.

    Returns the weighting as a tuple of floats (re-normalized to remove
    floating-point drift in the sum).
    """
    values = tuple(float(w) for w in weights)
    if not values:
        raise WeightingError("weighting must be nonempty")
    if any(w < -tol for w in values):
        raise WeightingError(f"weights must be nonnegative, got {values}")
    values = tuple(max(w, 0.0) for w in values)
    total = sum(values)
    if abs(total - 1.0) > max(tol, 1e-6):
        raise WeightingError(f"weights must sum to 1, got sum {total!r}")
    return tuple(w / total for w in values)


def is_ordered(weights: Sequence[float]) -> bool:
    """True when the weighting is nonincreasing (theta_1 >= ... >= theta_m)."""
    return all(a >= b for a, b in zip(weights, weights[1:]))


def weighted_score(rule, weights: Sequence[float], grades: Sequence[float]) -> float:
    """Evaluate the Fagin–Wimmers weighted version of ``rule``.

    ``rule`` may be a :class:`ScoringFunction` or any callable over grade
    tuples.  ``weights`` need not be ordered: (weight, grade) pairs are
    sorted by descending weight first, which is valid because the paper's
    framework assumes a symmetric underlying rule.
    """
    f = as_scoring_function(rule)
    theta = validate_weighting(weights)
    xs = tuple(float(g) for g in grades)
    if len(theta) != len(xs):
        raise WeightingError(
            f"weighting has {len(theta)} entries but {len(xs)} grades given"
        )
    # Sort jointly by descending weight; stable so equal weights keep
    # their relative order (the formula's value does not depend on how
    # ties are ordered — the tied coefficients are zero).
    order = sorted(range(len(theta)), key=lambda i: -theta[i])
    theta_sorted = tuple(theta[i] for i in order)
    xs_sorted = tuple(xs[i] for i in order)

    total = 0.0
    m = len(theta_sorted)
    for i in range(1, m + 1):
        theta_next = theta_sorted[i] if i < m else 0.0
        coefficient = i * (theta_sorted[i - 1] - theta_next)
        if coefficient != 0.0:
            total += coefficient * f(xs_sorted[:i])
    return min(1.0, max(0.0, total))


def mixture(weighting_a: Sequence[float], weighting_b: Sequence[float], a: float) -> Tuple[float, ...]:
    """Convex combination ``a * Theta + (1 - a) * Theta'`` of two weightings."""
    if not 0.0 <= a <= 1.0:
        raise WeightingError(f"mixture coefficient must lie in [0, 1], got {a}")
    wa = validate_weighting(weighting_a)
    wb = validate_weighting(weighting_b)
    if len(wa) != len(wb):
        raise WeightingError("weightings must have the same length")
    return tuple(a * x + (1.0 - a) * y for x, y in zip(wa, wb))


class WeightedScoring(ScoringFunction):
    """A scoring function produced by weighting a base rule per [FW97].

    The instance is bound to a fixed weighting, so it can be handed to
    any top-k algorithm exactly like an unweighted rule.  Monotonicity is
    inherited from the base rule; strictness is inherited when every
    weight is positive (a zero-weight argument is dropped by D2, so its
    grade cannot be forced to 1).
    """

    is_symmetric = False

    def __init__(self, base, weights: Sequence[float]) -> None:
        self.base = as_scoring_function(base)
        self.weights = validate_weighting(weights)
        self.is_monotone = self.base.is_monotone
        self.is_strict = self.base.is_strict and all(w > 0 for w in self.weights)
        pretty = ", ".join(f"{w:.3g}" for w in self.weights)
        self.name = f"weighted[{self.base.name}]({pretty})"
        # Batch evaluation is exact iff every prefix call to the base
        # rule is; the formula's own arithmetic mirrors the scalar fold.
        self._batch_exact = self.base.batch_exact

    def _combine(self, grades: tuple) -> float:
        return weighted_score(self.base, self.weights, grades)

    def _combine_matrix(self, matrix):
        if matrix.shape[1] != len(self.weights):
            raise WeightingError(
                f"weighting has {len(self.weights)} entries but "
                f"{matrix.shape[1]} grades given"
            )
        # Re-run the exact normalization/ordering weighted_score performs
        # so coefficients match the scalar path bit for bit.
        theta = validate_weighting(self.weights)
        order = sorted(range(len(theta)), key=lambda i: -theta[i])
        theta_sorted = tuple(theta[i] for i in order)
        columns = matrix[:, order]
        total = None
        m = len(theta_sorted)
        for i in range(1, m + 1):
            theta_next = theta_sorted[i] if i < m else 0.0
            coefficient = i * (theta_sorted[i - 1] - theta_next)
            if coefficient != 0.0:
                term = coefficient * self.base.combine_matrix(columns[:, :i])
                total = term if total is None else total + term
        return _np.minimum(1.0, _np.maximum(0.0, total))


def uniform_weighting(m: int) -> Tuple[float, ...]:
    """The equal weighting (1/m, ..., 1/m) of desideratum D1."""
    if m <= 0:
        raise WeightingError(f"arity must be positive, got {m}")
    return tuple(1.0 / m for _ in range(m))
