"""`QueryService`: a concurrent, multi-tenant front end over one engine.

The paper's cost model assumes one query owns the engine; production
means thousands of concurrent queries over shared subsystems.  This
module layers the serving discipline over
:class:`~repro.middleware.engine.MiddlewareEngine`:

* a **worker pool** executing admitted queries concurrently (the engine
  is safe for concurrent ``top_k``: bindings are built under a lock and
  shared, algorithms keep all per-query state locally);
* **admission control** — a bounded queue with explicit
  :class:`~repro.errors.AdmissionError` rejection, per-tenant
  token-bucket quotas, and per-tenant max-inflight caps (see
  :mod:`repro.service.admission`);
* **priority-aware shedding** — under saturation the lowest-priority
  *queued* request is shed (:class:`~repro.errors.ShedError`) to make
  room for higher-priority arrivals; running work is never shed;
* **deadline propagation** — a request's end-to-end deadline starts at
  admission, keeps ticking through the queue, and is handed to the
  engine as a :class:`~repro.middleware.resilience.DeadlineGuard`
  budget, so a late query returns a partial-bound
  :class:`~repro.core.result.DegradedResult` within one access round
  of its deadline instead of hanging;
* a **shared access-executor pool** reused across queries, with
  per-query fair-share caps (:class:`~repro.service.FairShareExecutor`);
* **observability** — admission/shed/degradation counters, queue-depth
  and inflight gauges, and queue-wait/latency histograms in a
  :class:`~repro.observability.metrics.MetricsRegistry`, plus optional
  per-request :class:`~repro.observability.tracer.QueryTracer` traces.

The service does not replace the engine's session tracer — run it over
an engine *without* one (a shared session tracer would interleave phase
spans across worker threads); ask for per-request traces instead via
``trace_requests`` or ``submit(..., trace=True)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.result import TopKResult
from repro.errors import AdmissionError, ReproError, ShedError
from repro.middleware.resilience import MonotonicClock
from repro.observability.metrics import MetricsRegistry
from repro.parallel import ParallelAccessExecutor
from repro.service.admission import AdmissionQueue, TenantPolicy, TenantTable
from repro.service.fairshare import FairShareExecutor

#: ticket lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
SHED = "shed"
REJECTED = "rejected"


@dataclass(frozen=True)
class ServiceConfig:
    """Operating parameters of one :class:`QueryService`.

    ``workers``
        Query worker threads (concurrent queries in execution).
    ``queue_depth``
        Bound on the admission queue; beyond it arrivals shed
        lower-priority queued work or are rejected.
    ``default_deadline``
        End-to-end seconds granted to requests that do not bring their
        own deadline (None = no deadline).
    ``default_tenant`` / ``tenants``
        Quota policy applied to unlisted tenants, and per-tenant
        overrides.
    ``access_workers`` / ``fair_share``
        Size of the shared :class:`~repro.parallel.ParallelAccessExecutor`
        pool reused across queries, and the per-query cap on it
        (None = ``access_workers``, i.e. uncapped).  ``access_workers=1``
        keeps the classic serial access path.
    ``trace_requests``
        Attach a fresh :class:`~repro.observability.tracer.QueryTracer`
        to every request (read it off ``ticket.trace``).
    ``default_theta``
        Fagin–Lotem–Naor θ-approximation factor applied to requests
        that do not bring their own (1.0 = exact answers).  A request's
        explicit ``submit(..., theta=...)`` always wins; the service
        knob (explicit or default) takes precedence over the engine's
        session-level :meth:`~repro.middleware.engine.MiddlewareEngine.
        configure_approximation` setting.
    """

    workers: int = 4
    queue_depth: int = 64
    default_deadline: Optional[float] = None
    default_tenant: TenantPolicy = TenantPolicy()
    tenants: Mapping[str, TenantPolicy] = field(default_factory=dict)
    access_workers: int = 1
    fair_share: Optional[int] = None
    trace_requests: bool = False
    default_theta: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.default_theta < 1.0:
            raise ValueError(
                f"default_theta must be >= 1.0, got {self.default_theta}"
            )
        if self.access_workers < 1:
            raise ValueError(
                f"access_workers must be >= 1, got {self.access_workers}"
            )
        if self.fair_share is not None and self.fair_share < 1:
            raise ValueError(
                f"fair_share must be >= 1 (or None), got {self.fair_share}"
            )


class QueryTicket:
    """Handle for one submitted query: status, timings, and the result.

    ``result()`` blocks until the query finishes and either returns the
    :class:`~repro.core.result.TopKResult` (possibly carrying a
    ``degraded`` report) or raises the stored error
    (:class:`~repro.errors.ShedError` for shed work, the original
    exception for failed work).
    """

    def __init__(
        self,
        query,
        k: int,
        *,
        tenant: str,
        priority: int,
        seq: int,
        prefer=None,
        theta: float = 1.0,
        deadline_at: Optional[float] = None,
        submitted_at: float = 0.0,
        trace=None,
    ) -> None:
        self.query = query
        self.k = k
        self.tenant = tenant
        self.priority = priority
        self.seq = seq
        self.prefer = prefer
        self.theta = theta
        self.deadline_at = deadline_at
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.status = QUEUED
        #: per-request QueryTracer when tracing was requested
        self.trace = trace
        self._event = threading.Event()
        self._result: Optional[TopKResult] = None
        self._error: Optional[BaseException] = None

    # -- completion (service-side) --------------------------------------------
    def _complete(self, result: TopKResult) -> None:
        self._result = result
        self.status = DONE
        self._event.set()

    def _fail(self, error: BaseException, status: str = FAILED) -> None:
        self._error = error
        self.status = status
        self._event.set()

    # -- caller-side -----------------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until finished (or timeout); True when finished."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> TopKResult:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query (tenant={self.tenant!r}, seq={self.seq}) still "
                f"{self.status} after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def __repr__(self) -> str:
        return (
            f"<QueryTicket seq={self.seq} tenant={self.tenant!r} "
            f"priority={self.priority} {self.status}>"
        )


class QueryService:
    """Thread-pool query front end with admission control and shedding.

    Parameters
    ----------
    engine:
        The :class:`~repro.middleware.engine.MiddlewareEngine` to serve.
        The service shares its bindings (and therefore breaker and
        fault state) across all queries.
    config:
        A :class:`ServiceConfig`; defaults are modest and safe.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`
        to emit into; one is created when omitted (``service.metrics``).
    clock:
        Deadline/quota clock.  Defaults to the engine clock when that
        is a :class:`~repro.middleware.resilience.MonotonicClock`
        (production), else to a fresh ``MonotonicClock`` — pass the
        engine's :class:`~repro.middleware.resilience.VirtualClock`
        explicitly for deterministic tests.
    """

    def __init__(
        self,
        engine,
        config: Optional[ServiceConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        clock=None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if clock is None:
            engine_clock = getattr(engine, "clock", None)
            clock = (
                engine_clock
                if isinstance(engine_clock, MonotonicClock)
                else MonotonicClock()
            )
        self.clock = clock
        self._queue = AdmissionQueue(self.config.queue_depth)
        self._tenants = TenantTable(
            self.config.default_tenant, self.config.tenants, clock
        )
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._closing = False
        self._closed = False
        self._close_lock = threading.Lock()
        self._shared_executor: Optional[ParallelAccessExecutor] = None
        if self.config.access_workers > 1:
            self._shared_executor = ParallelAccessExecutor(
                self.config.access_workers
            )
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-{index}",
                daemon=True,
            )
            for index in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        query,
        k: int,
        *,
        tenant: str = "default",
        priority: int = 0,
        deadline: Optional[float] = None,
        prefer=None,
        theta: Optional[float] = None,
        trace: Optional[bool] = None,
    ) -> QueryTicket:
        """Admit one query for execution; returns its ticket.

        Raises :class:`~repro.errors.AdmissionError` (with a machine-
        readable ``reason``) when the request cannot be taken on:
        ``"closed"`` after :meth:`close`, ``"inflight"`` at the tenant's
        max-inflight cap, ``"quota"`` on an empty token bucket, and
        ``"queue-full"`` when the queue is saturated with equal-or-
        higher-priority work.  ``deadline`` (seconds, measured from this
        call on the service clock) overrides the config default; the
        budget includes queue wait.  ``theta`` (≥ 1.0) requests a
        θ-approximate answer with a certificate (see
        :class:`~repro.core.result.ApproximationCertificate`); it
        defaults to ``config.default_theta``.  θ also composes with
        deadlines: a deadline that fires mid-query yields the current
        best-k with a certified bound rather than a bare partial.

        With a result cache on the engine
        (:meth:`~repro.middleware.engine.MiddlewareEngine.configure_cache`),
        the cache is consulted right here at admission: an exact or
        prefix hit completes the ticket immediately — no queue slot, no
        tenant quota, no worker — and counts ``service.cache.hit``.
        Misses (and warm-startable deeper-k queries) go through normal
        admission and execution.
        """
        self._count("service.submitted", tenant=tenant)
        theta = float(theta) if theta is not None else self.config.default_theta
        if theta < 1.0:
            raise ValueError(f"theta must be >= 1.0, got {theta}")
        if self._closing:
            self._count("service.rejected", tenant=tenant, reason="closed")
            raise AdmissionError(
                "query service is closed to new work", reason="closed"
            )
        served = self._probe_cache(
            query,
            k,
            tenant=tenant,
            priority=priority,
            prefer=prefer,
            theta=theta,
            trace=trace,
        )
        if served is not None:
            return served
        state = self._tenants.state(tenant)
        ok, reason = state.try_reserve()
        if not ok:
            self._count("service.rejected", tenant=tenant, reason=reason)
            raise AdmissionError(
                f"tenant {tenant!r} over its {reason} limit", reason=reason
            )
        now = self.clock.now()
        budget = deadline if deadline is not None else self.config.default_deadline
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        ticket = QueryTicket(
            query,
            k,
            tenant=tenant,
            priority=priority,
            seq=seq,
            prefer=prefer,
            theta=theta,
            deadline_at=(now + budget) if budget is not None else None,
            submitted_at=now,
            trace=self._make_trace(trace),
        )
        admitted, victim = self._queue.offer(ticket)
        if not admitted:
            state.release(refund_token=True)
            self._count("service.rejected", tenant=tenant, reason="queue-full")
            raise AdmissionError(
                f"admission queue full ({self.config.queue_depth} queued, "
                "no lower-priority work to shed)",
                reason="queue-full",
            )
        if victim is not None:
            self._shed(victim)
        self._count("service.admitted", tenant=tenant)
        self._gauge_queue_depth()
        self._tenant_gauge(tenant)
        return ticket

    def query(
        self,
        query,
        k: int,
        *,
        tenant: str = "default",
        priority: int = 0,
        deadline: Optional[float] = None,
        prefer=None,
        theta: Optional[float] = None,
        trace: Optional[bool] = None,
        timeout: Optional[float] = None,
    ) -> TopKResult:
        """Synchronous convenience: submit and wait for the result."""
        ticket = self.submit(
            query,
            k,
            tenant=tenant,
            priority=priority,
            deadline=deadline,
            prefer=prefer,
            theta=theta,
            trace=trace,
        )
        return ticket.result(timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently queued (admitted, not yet running)."""
        return len(self._queue)

    def inflight(self, tenant: str = "default") -> int:
        """One tenant's queued-plus-running query count."""
        return self._tenants.inflight(tenant)

    def stats(self) -> Dict[str, int]:
        """Aggregate service counters (across tenants), for dashboards."""
        return {
            name.rsplit(".", 1)[1]: self.metrics.counter_total(name)
            for name in (
                "service.submitted",
                "service.admitted",
                "service.rejected",
                "service.shed",
                "service.completed",
                "service.degraded",
                "service.expired",
                "service.failed",
            )
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting work and wind the workers down.

        ``drain=True`` (default) lets already-queued work run to
        completion; ``drain=False`` fails queued tickets with
        :class:`~repro.errors.AdmissionError` (reason ``"closed"``)
        immediately.  Running queries always finish either way — the
        no-shed-running guarantee extends through shutdown.  Idempotent.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closing = True
            if not drain:
                for ticket in self._queue.drain():
                    self._finish_tenant(ticket)
                    self._count(
                        "service.rejected", tenant=ticket.tenant, reason="closed"
                    )
                    ticket._fail(
                        AdmissionError(
                            "query service closed before execution",
                            reason="closed",
                        ),
                        status=REJECTED,
                    )
            self._queue.wake_all()
            for worker in self._workers:
                worker.join(timeout)
            if self._shared_executor is not None:
                self._shared_executor.shutdown()
            self._closed = True

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _probe_cache(
        self, query, k, *, tenant, priority, prefer, theta, trace
    ) -> Optional[QueryTicket]:
        """Serve an admission-time cache hit, or None to admit normally.

        Only the zero-execution tiers (exact/prefix, plus θ-certified
        replays when the request tolerates them) short-circuit here;
        warm starts need an execution slot and stay on the normal path.
        Binding or planning errors are swallowed: the normal submission
        path will surface them with proper accounting.
        """
        if getattr(self.engine, "cache", None) is None:
            return None
        trace_obj = self._make_trace(trace)
        try:
            result, status = self.engine.cache_probe(
                query, k, prefer=prefer, theta=theta, tracer=trace_obj
            )
        except ReproError:
            return None
        if status in ("exact", "prefix", "theta"):
            self._count("service.cache.hit", tenant=tenant, tier=status)
        else:
            self._count("service.cache.miss", tenant=tenant)
            if status == "stale":
                self._count("service.cache.stale", tenant=tenant)
        if result is None:
            return None
        now = self.clock.now()
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        ticket = QueryTicket(
            query,
            k,
            tenant=tenant,
            priority=priority,
            seq=seq,
            prefer=prefer,
            theta=theta,
            submitted_at=now,
            trace=trace_obj,
        )
        ticket.started_at = now
        ticket.finished_at = now
        self._count("service.admitted", tenant=tenant)
        self._count("service.completed", tenant=tenant)
        self.metrics.histogram(
            "service.latency_seconds", tenant=tenant
        ).observe(0.0)
        ticket._complete(result)
        return ticket

    def _make_trace(self, trace: Optional[bool]):
        wanted = self.config.trace_requests if trace is None else trace
        if not wanted:
            return None
        from repro.observability.tracer import QueryTracer

        return QueryTracer()

    def _count(self, name: str, **labels) -> None:
        self.metrics.counter(name, **labels).inc()

    def _gauge_queue_depth(self) -> None:
        self.metrics.gauge("service.queue_depth").set(len(self._queue))

    def _tenant_gauge(self, tenant: str) -> None:
        self.metrics.gauge("service.inflight", tenant=tenant).set(
            self._tenants.inflight(tenant)
        )

    def _finish_tenant(self, ticket: QueryTicket) -> None:
        self._tenants.state(ticket.tenant).release()
        self._tenant_gauge(ticket.tenant)

    def _shed(self, ticket: QueryTicket) -> None:
        """Fail one queued ticket that was evicted to make room."""
        self._finish_tenant(ticket)
        self._count("service.shed", tenant=ticket.tenant)
        ticket._fail(
            ShedError(
                f"shed from the admission queue (priority {ticket.priority}) "
                "to admit higher-priority work"
            ),
            status=SHED,
        )

    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.take(timeout=0.05)
            if ticket is None:
                if self._closing and len(self._queue) == 0:
                    return
                continue
            try:
                self._run_ticket(ticket)
            except BaseException as error:  # noqa: BLE001 - never kill a worker
                if not ticket.done():
                    ticket._fail(error)
                self._finish_tenant(ticket)

    def _run_ticket(self, ticket: QueryTicket) -> None:
        now = self.clock.now()
        ticket.started_at = now
        ticket.status = RUNNING
        self._gauge_queue_depth()
        self.metrics.histogram(
            "service.queue_wait_seconds", tenant=ticket.tenant
        ).observe(now - ticket.submitted_at)
        remaining: Optional[float] = None
        if ticket.deadline_at is not None:
            remaining = ticket.deadline_at - now
            if remaining <= 0:
                # Spent its whole budget queueing: degrade without
                # touching the engine (zero accesses, empty partial).
                self._count("service.expired", tenant=ticket.tenant)
                self._count("service.degraded", tenant=ticket.tenant)
                result = self._expired_result(ticket)
                self._conclude(ticket, result)
                return
        executor = None
        if self._shared_executor is not None:
            cap = self.config.fair_share or self.config.access_workers
            executor = FairShareExecutor(self._shared_executor, cap)
        try:
            result = self.engine.top_k(
                ticket.query,
                ticket.k,
                prefer=ticket.prefer,
                theta=ticket.theta,
                tracer=ticket.trace,
                executor=executor,
                deadline=remaining,
            )
        except ReproError as error:
            self._count("service.failed", tenant=ticket.tenant)
            ticket.finished_at = self.clock.now()
            ticket._fail(error)
            self._finish_tenant(ticket)
            return
        if result.degraded is not None:
            self._count("service.degraded", tenant=ticket.tenant)
        cache_info = result.extras.get("cache")
        if cache_info is not None:
            # Served (or warm-started) from the result cache at
            # execution time — e.g. filled between admission and here.
            self._count(
                "service.cache.served",
                tenant=ticket.tenant,
                tier=cache_info["tier"],
            )
        self._conclude(ticket, result)

    def _conclude(self, ticket: QueryTicket, result: TopKResult) -> None:
        ticket.finished_at = self.clock.now()
        self._count("service.completed", tenant=ticket.tenant)
        self.metrics.histogram(
            "service.latency_seconds", tenant=ticket.tenant
        ).observe(ticket.finished_at - ticket.submitted_at)
        ticket._complete(result)
        self._finish_tenant(ticket)

    def _expired_result(self, ticket: QueryTicket) -> TopKResult:
        from repro.core.cost import CostReport
        from repro.core.graded import GradedSet
        from repro.core.result import DegradedResult

        return TopKResult(
            answers=GradedSet({}),
            cost=CostReport(),
            algorithm="none",
            grades_exact=False,
            degraded=DegradedResult(
                failed_sources={},
                fallback="deadline-expired",
                complete=False,
                bounds={},
            ),
        )

    def __repr__(self) -> str:
        return (
            f"<QueryService workers={self.config.workers} "
            f"queue={len(self._queue)}/{self.config.queue_depth} "
            f"{'closed' if self._closed else 'open'}>"
        )
