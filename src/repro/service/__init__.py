"""Multi-tenant query serving over one middleware engine.

The production-facing layer above :mod:`repro.middleware`: a thread-pool
:class:`QueryService` with bounded admission, per-tenant quotas,
priority-aware load shedding, end-to-end deadline propagation into the
engine's resilience budgets, and a shared fair-share access-executor
pool.  See ``docs/API.md`` ("Query service") for the serving contract.
"""

from repro.errors import AdmissionError, ShedError
from repro.service.admission import (
    AdmissionQueue,
    TenantPolicy,
    TenantState,
    TenantTable,
    TokenBucket,
)
from repro.service.fairshare import FairShareExecutor
from repro.service.service import (
    QueryService,
    QueryTicket,
    ServiceConfig,
)

__all__ = [
    "AdmissionError",
    "AdmissionQueue",
    "FairShareExecutor",
    "QueryService",
    "QueryTicket",
    "ServiceConfig",
    "ShedError",
    "TenantPolicy",
    "TenantState",
    "TenantTable",
    "TokenBucket",
]
