"""Per-query fair-share views over one shared access-executor pool.

The query service keeps a single
:class:`~repro.parallel.ParallelAccessExecutor` for the whole process —
worker threads are a scarce resource, and per-query pools would let one
fat query monopolize the machine.  :class:`FairShareExecutor` is the
view each running query drives: it shares the pool's threads but caps
how many of one query's access thunks may be in flight at once, so m
concurrent queries each get roughly ``pool_size / m``-ish service
rather than head-of-line blocking behind whoever submitted first.

The cap is enforced by *wave* submission: a fan-out of t thunks under
cap c is submitted as ⌈t/c⌉ consecutive waves of at most c thunks.
Outcomes still come back in submission order, so the determinism
contract of :mod:`repro.parallel` (answers, costs, traces byte-identical
to serial) is untouched — waves only bound overlap, never reorder the
merge.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.parallel import AccessThunk, Outcome, ParallelAccessExecutor, fan_out


class FairShareExecutor:
    """A capped, non-owning view over a shared access executor.

    Duck-typed like :class:`~repro.parallel.ParallelAccessExecutor`
    (``run`` / ``parallel`` / ``shutdown``) so the algorithms cannot
    tell the difference.  ``shutdown`` is a no-op: the pool belongs to
    the query service, and one query finishing must not strand the
    others.
    """

    def __init__(self, shared: ParallelAccessExecutor, cap: int) -> None:
        if cap < 1:
            raise ValueError(f"fair-share cap must be >= 1, got {cap}")
        self._shared = shared
        self.cap = cap
        self.max_workers = min(shared.max_workers, cap)

    @property
    def parallel(self) -> bool:
        """Whether this view may actually overlap accesses."""
        return self.max_workers > 1

    def run(
        self, thunks: Sequence[AccessThunk], *, stop_on_error: bool = False
    ) -> List[Outcome]:
        """Run one fan-out under the cap; outcomes in submission order.

        Serial mode (cap 1, or a single thunk) runs inline with full
        ``stop_on_error`` semantics, exactly like the serial executor.
        Parallel mode runs every thunk (the shared-pool contract), in
        waves of at most ``cap``.
        """
        if not self.parallel or len(thunks) <= 1:
            return fan_out(None, thunks, stop_on_error=stop_on_error)
        thunks = list(thunks)
        outcomes: List[Outcome] = []
        for start in range(0, len(thunks), self.cap):
            outcomes.extend(self._shared.run(thunks[start : start + self.cap]))
        return outcomes

    def shutdown(self) -> None:
        """No-op: the underlying pool is owned by the query service."""

    def __repr__(self) -> str:
        return (
            f"<FairShareExecutor cap={self.cap} "
            f"shared={self._shared.max_workers}>"
        )
