"""Admission control: token buckets, tenant quotas, bounded queue.

The service's first line of defence against overload is refusing work
*early and explicitly* instead of queueing without bound:

* :class:`TokenBucket` — classic rate limiter: a tenant accrues
  ``rate`` tokens per second up to ``burst``, one query costs one
  token, an empty bucket means :class:`~repro.errors.AdmissionError`
  at submit time (the cheapest possible place to say no);
* :class:`TenantPolicy` / :class:`TenantState` — per-tenant quota
  settings and live accounting (bucket + inflight count);
* :class:`AdmissionQueue` — the bounded priority queue between
  submission and the worker pool.  When full, an arriving request
  either *sheds* the lowest-priority queued entry (strictly lower
  priority than the arrival — running work is never touched) or is
  itself rejected.

All timing uses the injected clock (monotonic in production, virtual in
tests); none of it reads the wall clock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple


class TokenBucket:
    """A thread-safe token bucket on an injectable clock.

    ``rate=None`` disables rate limiting (the bucket always grants).
    Refill is computed lazily on each acquire from the elapsed clock
    time, so there is no refill thread to manage.
    """

    def __init__(self, rate: Optional[float], burst: float, clock) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive (or None), got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock.now()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock.now()
        elapsed = now - self._last
        self._last = now
        if self.rate is not None and elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (and no change) if not."""
        if self.rate is None:
            return True
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def refund(self, tokens: float = 1.0) -> None:
        """Return tokens taken for work that was never admitted."""
        if self.rate is None:
            return
        with self._lock:
            self._tokens = min(self.burst, self._tokens + tokens)

    @property
    def available(self) -> float:
        """Current token balance (after a lazy refill)."""
        if self.rate is None:
            return float("inf")
        with self._lock:
            self._refill_locked()
            return self._tokens


@dataclass(frozen=True)
class TenantPolicy:
    """Operating limits for one tenant.

    ``rate``/``burst`` parameterize the tenant's token bucket
    (``rate=None`` = unlimited rate); ``max_inflight`` caps the
    tenant's queued-plus-running queries (``None`` = uncapped).
    """

    rate: Optional[float] = None
    burst: float = 16.0
    max_inflight: Optional[int] = None


class TenantState:
    """Live accounting for one tenant: bucket plus inflight count."""

    def __init__(self, policy: TenantPolicy, clock) -> None:
        self.policy = policy
        self.bucket = TokenBucket(policy.rate, policy.burst, clock)
        self.inflight = 0
        self._lock = threading.Lock()

    def try_reserve(self) -> Tuple[bool, str]:
        """Reserve one inflight slot and one token; (ok, reject reason)."""
        with self._lock:
            cap = self.policy.max_inflight
            if cap is not None and self.inflight >= cap:
                return False, "inflight"
            if not self.bucket.try_acquire():
                return False, "quota"
            self.inflight += 1
            return True, ""

    def release(self, *, refund_token: bool = False) -> None:
        """Release one inflight slot (work finished, shed, or rejected)."""
        with self._lock:
            self.inflight -= 1
            if refund_token:
                self.bucket.refund()


class TenantTable:
    """Get-or-create registry of :class:`TenantState` by tenant name."""

    def __init__(
        self,
        default_policy: TenantPolicy,
        policies: Mapping[str, TenantPolicy],
        clock,
    ) -> None:
        self._default = default_policy
        self._policies = dict(policies)
        self._clock = clock
        self._states: Dict[str, TenantState] = {}
        self._lock = threading.Lock()

    def state(self, tenant: str) -> TenantState:
        with self._lock:
            existing = self._states.get(tenant)
            if existing is None:
                policy = self._policies.get(tenant, self._default)
                existing = self._states[tenant] = TenantState(policy, self._clock)
            return existing

    def inflight(self, tenant: str) -> int:
        return self.state(tenant).inflight


class AdmissionQueue:
    """Bounded priority queue with explicit lowest-priority shedding.

    Entries are any objects exposing ``priority`` (int, higher runs
    first) and ``seq`` (submission order, FIFO within a priority).
    :meth:`offer` never blocks: a full queue either sheds its worst
    queued entry (only if *strictly* lower priority than the arrival)
    or refuses the arrival — the caller turns either outcome into the
    right error.  :meth:`take` blocks workers until work or timeout.

    Shedding and taking hold the same lock, so an entry is taken XOR
    shed, never both — which is what makes "running work is never shed"
    a structural guarantee rather than a convention.
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self._entries: List[object] = []
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def _take_key(entry) -> Tuple[int, int]:
        # Highest priority first; FIFO within a priority level.
        return (-entry.priority, entry.seq)

    @staticmethod
    def _shed_key(entry) -> Tuple[int, int]:
        # Lowest priority first; shed the *newest* of the worst level,
        # preserving the oldest queued work at that level.
        return (entry.priority, -entry.seq)

    def offer(self, entry) -> Tuple[bool, Optional[object]]:
        """Try to enqueue; returns ``(admitted, shed_entry)``.

        ``(True, None)`` — room available, enqueued.
        ``(True, victim)`` — queue was full; ``victim`` (strictly lower
        priority) was removed to make room and must be failed by the
        caller.  ``(False, None)`` — full of equal-or-higher-priority
        work; the arrival itself must be rejected.
        """
        with self._lock:
            if len(self._entries) < self.depth:
                self._entries.append(entry)
                self._ready.notify()
                return True, None
            victim = min(self._entries, key=self._shed_key)
            if victim.priority >= entry.priority:
                return False, None
            self._entries.remove(victim)
            self._entries.append(entry)
            self._ready.notify()
            return True, victim

    def take(self, timeout: Optional[float] = None):
        """Pop the highest-priority entry, blocking up to ``timeout``.

        Returns None on timeout (workers use short timeouts so close()
        can wind them down promptly).
        """
        with self._ready:
            if not self._entries:
                self._ready.wait(timeout)
                if not self._entries:
                    return None
            entry = min(self._entries, key=self._take_key)
            self._entries.remove(entry)
            return entry

    def drain(self) -> List[object]:
        """Remove and return everything queued (close-time cleanup)."""
        with self._lock:
            entries, self._entries = self._entries, []
            return entries

    def wake_all(self) -> None:
        """Wake every blocked taker (used during shutdown)."""
        with self._ready:
            self._ready.notify_all()
