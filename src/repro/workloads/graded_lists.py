"""Synthetic graded-list workloads (the [Fa96] probabilistic model).

Theorems 4.1/4.2 analyze Fagin's algorithm over m *independent* lists:
each object's grade in each list is drawn independently.  This module
generates that model plus the structured variants the experiments use:

* :func:`independent` — i.i.d. uniform grades (the theorem's model);
* :func:`correlated` — per-object latent quality plus noise, so lists
  agree (easier than independent: matches surface early);
* :func:`anti_correlated` — high grades in one list co-occur with low
  grades in the others (harder: matches surface late);
* :func:`reversed_pair` — the exact adversarial reversed-lists instance
  (delegates to :mod:`repro.core.adversary`);
* :func:`boolean_column` — a crisp 0/1 column with chosen selectivity,
  for the Beatles-style Boolean-conjunct experiments.

All generators are seeded and return either the raw grade table
(``object -> (g_1, ..., g_m)``) or ready ranked-list columns.  Columns
are numpy-backed :class:`~repro.core.sources.ArraySource` by default
(one vectorized build + argsort instead of N Python calls); pass
``backend="list"`` for the classic :class:`ListSource`.  Both backends
produce identical sorted order and accounting.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.adversary import hard_instance
from repro.core.sources import GradedSource, ListSource, sources_from_columns

GradeTable = Dict[str, Tuple[float, ...]]


def _clip(value: float) -> float:
    return min(1.0, max(0.0, value))


def _names(n: int) -> List[str]:
    return [f"o{i}" for i in range(n)]


def independent(n: int, m: int, seed: int = 0) -> GradeTable:
    """i.i.d. uniform grades — the independence model of Theorem 4.1."""
    rng = random.Random(seed)
    return {name: tuple(rng.random() for _ in range(m)) for name in _names(n)}


def correlated(
    n: int, m: int, seed: int = 0, *, noise: float = 0.1
) -> GradeTable:
    """A latent per-object quality shared by all lists, plus noise.

    ``noise = 0`` makes all lists identical (maximally easy);
    ``noise = 1`` approaches independence.
    """
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must lie in [0, 1], got {noise}")
    rng = random.Random(seed)
    table: GradeTable = {}
    for name in _names(n):
        quality = rng.random()
        table[name] = tuple(
            _clip(quality + rng.uniform(-noise, noise)) for _ in range(m)
        )
    return table


def anti_correlated(
    n: int, m: int, seed: int = 0, *, spread: float = 0.05
) -> GradeTable:
    """Grades summing to roughly a constant: good in one list, bad in others.

    The classic hard case for top-k under min: every object looks
    promising somewhere, so prefixes share few objects.
    """
    rng = random.Random(seed)
    table: GradeTable = {}
    for name in _names(n):
        raw = [rng.random() for _ in range(m)]
        total = sum(raw)
        # Rescale so grades sum to m/2 (the anti-correlation constraint),
        # then jitter so ties are broken randomly.
        scale = (m / 2.0) / total if total > 0 else 1.0
        table[name] = tuple(
            _clip(g * scale + rng.uniform(-spread, spread)) for g in raw
        )
    return table


def zipf_skewed(
    n: int, m: int, seed: int = 0, *, exponent: float = 1.0
) -> GradeTable:
    """Grades with Zipf-like skew: a few objects score high, most low.

    Real relevance distributions are heavy-tailed (a handful of strong
    matches, a long tail of weak ones); this workload checks that the
    algorithms' advantage survives skew.  Each list independently draws
    a permutation and assigns grade ``(rank)^-exponent`` normalized to
    (0, 1].
    """
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    rng = random.Random(seed)
    names = _names(n)
    table: GradeTable = {name: () for name in names}
    for _ in range(m):
        order = names[:]
        rng.shuffle(order)
        for rank, name in enumerate(order, start=1):
            table[name] = table[name] + (rank**-exponent,)
    return table


def reversed_pair(n: int) -> List[ListSource]:
    """The linear-lower-bound adversarial instance (two reversed lists)."""
    return hard_instance(n)


def boolean_column(
    n: int, selectivity: float, seed: int = 0
) -> Dict[str, float]:
    """A crisp 0/1 grade column with the given fraction of 1s."""
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError(f"selectivity must lie in [0, 1], got {selectivity}")
    rng = random.Random(seed)
    names = _names(n)
    positives = set(rng.sample(names, int(round(selectivity * n))))
    return {name: 1.0 if name in positives else 0.0 for name in names}


def make_sources(
    table: GradeTable,
    names: Optional[Sequence[str]] = None,
    *,
    backend: str = "array",
    shards: int = 1,
    directory: Optional[str] = None,
) -> List[GradedSource]:
    """Ranked-list columns for a generated grade table.

    ``backend="array"`` (default) builds numpy-backed
    :class:`~repro.core.sources.ArraySource` columns; ``backend="list"``
    builds the classic :class:`ListSource`; ``backend="memmap"`` the
    out-of-core :class:`~repro.storage.memmap.MemmapSource` (under
    ``directory`` when given).  ``shards > 1`` hash-partitions every
    column behind a :class:`~repro.storage.sharded.ShardedSource`.
    All combinations produce byte-identical answers, costs, and traces.
    """
    return sources_from_columns(
        table, names, backend=backend, shards=shards, directory=directory
    )


def workload(
    kind: str,
    n: int,
    m: int,
    seed: int = 0,
    *,
    backend: str = "array",
    shards: int = 1,
    directory: Optional[str] = None,
) -> List[GradedSource]:
    """Generate sources by workload name ('independent', 'correlated',
    'anti-correlated', 'reversed')."""
    build = dict(backend=backend, shards=shards, directory=directory)
    if kind == "independent":
        return make_sources(independent(n, m, seed), **build)
    if kind == "correlated":
        return make_sources(correlated(n, m, seed), **build)
    if kind == "anti-correlated":
        return make_sources(anti_correlated(n, m, seed), **build)
    if kind == "zipf":
        return make_sources(zipf_skewed(n, m, seed), **build)
    if kind == "reversed":
        if m != 2:
            raise ValueError("the reversed workload is defined for m = 2")
        return reversed_pair(n)
    raise ValueError(
        f"unknown workload kind {kind!r}; use independent, correlated, "
        "anti-correlated, zipf, or reversed"
    )
