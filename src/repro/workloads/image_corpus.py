"""Synthetic image corpora for the QBIC experiments (sections 2, 4).

Wraps :class:`~repro.multimedia.images.ImageGenerator` with the standard
shapes the experiments need: a general mixed corpus, a corpus with
planted near-matches for a theme color, and a ready middleware engine
combining QBIC with a relational metadata side (the Advertisements /
AdPhotos scenario of section 4.2).
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.middleware.complex_objects import Containment
from repro.middleware.engine import MiddlewareEngine
from repro.middleware.relational import RelationalSubsystem
from repro.multimedia.histogram import Palette, color_histogram
from repro.multimedia.images import ImageGenerator, SyntheticImage
from repro.multimedia.qbic import QbicSubsystem


def mixed_corpus(
    n: int, seed: int = 0, *, theme: str = "red", themed_fraction: float = 0.2
) -> List[SyntheticImage]:
    """The standard experiment corpus: mostly random, some theme-colored."""
    return ImageGenerator(seed).corpus(
        n, themed_fraction=themed_fraction, theme=theme
    )


def corpus_histograms(
    corpus: Sequence[SyntheticImage],
    palette: Palette,
    resolution: int = 32,
) -> Dict[str, np.ndarray]:
    """Color histograms for every image (the filter/cache experiments'
    raw material)."""
    return {
        image.image_id: color_histogram(image.rasterize(resolution), palette)
        for image in corpus
    }


def feature_corpus(
    n: int,
    dimension: int = 6,
    seed: int = 0,
    *,
    object_ids: Optional[Sequence[str]] = None,
    directory: Optional[str] = None,
    chunk: int = 65536,
) -> Tuple[List[str], np.ndarray]:
    """Unit-cube feature vectors for ``n`` images, optionally on disk.

    With a ``directory`` the ``[n, d]`` matrix is a numpy memmap (an
    ``.npy`` file written chunk-wise), so a 10^6-object corpus never
    materializes in RAM — the shape the index bulk loaders adopt
    by reference.  Generation is chunked but deterministic: the same
    ``(n, dimension, seed)`` yields the same matrix for any chunk size,
    because ``default_rng`` streams doubles in row order.
    """
    if object_ids is None:
        ids = [f"img{i}" for i in range(n)]
    else:
        ids = list(object_ids)
        n = len(ids)
    if directory is not None:
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        matrix = np.lib.format.open_memmap(
            root / f"features-{n}x{dimension}.npy",
            mode="w+",
            dtype=np.float64,
            shape=(n, dimension),
        )
    else:
        matrix = np.empty((n, dimension))
    rng = np.random.default_rng(seed)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        matrix[start:stop] = rng.random((stop - start, dimension))
    if directory is not None:
        matrix.flush()
    return ids, matrix


def build_image_database(
    n: int,
    seed: int = 0,
    *,
    theme: str = "red",
    knn_index: Optional[str] = None,
    knn_dimension: int = 6,
    knn_directory: Optional[str] = None,
) -> MiddlewareEngine:
    """A full multimedia database: QBIC over a corpus + relational metadata.

    The relational side carries a Category column ('nature', 'product',
    'portrait', ...) so Beatles-style mixed queries
    (Category='product' AND Color='red') can run against images too.

    ``knn_index`` (``scan`` | ``vafile`` | ``rtree``) additionally
    registers a :class:`~repro.index.source.KnnSubsystem` serving
    ``Near = <target>`` atoms from a feature corpus over the same image
    ids — the CLI's ``--index`` flag lands here.  The answers are
    byte-identical across index kinds; only the physical work changes.
    ``knn_directory`` puts the feature matrix on disk (memmap).
    """
    corpus = mixed_corpus(n, seed, theme=theme)
    qbic = QbicSubsystem("qbic", corpus)
    rng = random.Random(seed + 1)
    categories = ("nature", "product", "portrait", "abstract")
    rows = {
        image.image_id: {
            "Category": rng.choice(categories),
            "ShapeCount": len(image.shapes),
        }
        for image in corpus
    }
    metadata = RelationalSubsystem("image-metadata", rows)
    engine = MiddlewareEngine()
    engine.register(qbic)
    engine.register(metadata)
    if knn_index is not None:
        from repro.index import KnnSubsystem

        ids, features = feature_corpus(
            n,
            dimension=knn_dimension,
            seed=seed + 2,
            object_ids=[image.image_id for image in corpus],
            directory=knn_directory,
        )
        engine.register(
            KnnSubsystem("knn", ids, features, index=knn_index)
        )
    return engine


def advertisements_scenario(
    ad_count: int,
    photos_per_ad: int = 3,
    seed: int = 0,
    *,
    shared_fraction: float = 0.1,
) -> Tuple[List[SyntheticImage], Containment]:
    """The section-4.2 complex-object scenario: Advertisements holding
    AdPhotos, with a fraction of photos shared between two ads.

    Returns the photo corpus and the Advertisement -> AdPhotos
    containment; promote a photo-level ranked list with
    :class:`~repro.middleware.complex_objects.PromotedSource` to query
    at the Advertisement level.
    """
    if photos_per_ad < 1:
        raise ValueError(f"photos_per_ad must be >= 1, got {photos_per_ad}")
    generator = ImageGenerator(seed)
    rng = random.Random(seed + 7)
    photos: List[SyntheticImage] = []
    parent_map: Dict[str, List[str]] = {}
    photo_counter = 0
    for ad_index in range(ad_count):
        ad_id = f"ad{ad_index}"
        children = []
        for _ in range(photos_per_ad):
            if photos and rng.random() < shared_fraction:
                children.append(rng.choice(photos).image_id)  # shared photo
            else:
                photo = generator.random_image(f"photo{photo_counter}")
                photo_counter += 1
                photos.append(photo)
                children.append(photo.image_id)
        parent_map[ad_id] = children
    return photos, Containment(parent_map)
