"""Synthetic workloads: graded lists matching the [Fa96] probabilistic
model, the CD-store running example, and image corpora (the substitution
layer for the paper's proprietary data — see DESIGN.md)."""

from repro.workloads.cd_store import (
    ARTISTS,
    Album,
    build_store,
    generate_catalog,
)
from repro.workloads.graded_lists import (
    anti_correlated,
    boolean_column,
    correlated,
    independent,
    make_sources,
    reversed_pair,
    workload,
    zipf_skewed,
)
from repro.workloads.image_corpus import (
    advertisements_scenario,
    build_image_database,
    corpus_histograms,
    feature_corpus,
    mixed_corpus,
)

__all__ = [
    "independent",
    "correlated",
    "anti_correlated",
    "reversed_pair",
    "zipf_skewed",
    "boolean_column",
    "make_sources",
    "workload",
    "Album",
    "ARTISTS",
    "generate_catalog",
    "build_store",
    "mixed_corpus",
    "corpus_histograms",
    "feature_corpus",
    "build_image_database",
    "advertisements_scenario",
]
