"""The CD-store workload (the paper's running example, sections 3–4).

"As an example, let us consider an application of a store that sells
compact disks. ... the query Artist='Beatles' gives us a set, whereas
the query AlbumColor='red' gives us a sorted list."

The generator produces a catalog of albums with:

* a relational side — artist, title, year, price (crisp predicates);
* a multimedia side — an album-cover color (an RGB value generated per
  album, plus precomputed closeness grades to the named query colors).

:func:`build_store` wires both sides into a ready
:class:`~repro.middleware.engine.MiddlewareEngine` with a
:class:`RelationalSubsystem` and a :class:`ListSubsystem`, so examples
and experiments can issue the paper's queries verbatim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.middleware.engine import MiddlewareEngine
from repro.middleware.list_subsystem import ListSubsystem
from repro.middleware.relational import RelationalSubsystem
from repro.multimedia.images import NAMED_COLORS, RGB

ARTISTS = (
    "Beatles",
    "Miles Davis",
    "Glenn Gould",
    "Ella Fitzgerald",
    "Led Zeppelin",
    "Aretha Franklin",
    "Bob Dylan",
    "Nina Simone",
)

_TITLE_WORDS = (
    "Blue", "Midnight", "Golden", "Electric", "Silent", "Crimson",
    "Velvet", "Northern", "Summer", "Lonely", "Running", "Falling",
)


@dataclass(frozen=True)
class Album:
    """One catalog entry: relational columns plus a cover color."""

    album_id: str
    artist: str
    title: str
    year: int
    price: float
    cover_color: RGB


def _color_closeness(color: RGB, target: RGB) -> float:
    """Grade in [0, 1] from Euclidean RGB distance (max distance sqrt 3)."""
    distance = sum((a - b) ** 2 for a, b in zip(color, target)) ** 0.5
    return max(0.0, 1.0 - distance / (3**0.5))


def generate_catalog(
    n: int,
    seed: int = 0,
    *,
    beatles_fraction: float = 0.05,
) -> List[Album]:
    """A catalog of n albums; ``beatles_fraction`` controls the
    selectivity of the paper's Artist='Beatles' predicate."""
    if not 0.0 <= beatles_fraction <= 1.0:
        raise ValueError(f"beatles_fraction must lie in [0, 1], got {beatles_fraction}")
    rng = random.Random(seed)
    albums = []
    beatles_count = int(round(beatles_fraction * n))
    for i in range(n):
        artist = "Beatles" if i < beatles_count else rng.choice(ARTISTS[1:])
        title = f"{rng.choice(_TITLE_WORDS)} {rng.choice(_TITLE_WORDS)} #{i}"
        albums.append(
            Album(
                album_id=f"cd{i}",
                artist=artist,
                title=title,
                year=rng.randint(1955, 1998),
                price=round(rng.uniform(5.0, 25.0), 2),
                cover_color=(rng.random(), rng.random(), rng.random()),
            )
        )
    rng.shuffle(albums)
    return albums


def build_store(
    catalog: Sequence[Album],
    *,
    query_colors: Optional[Sequence[str]] = None,
) -> MiddlewareEngine:
    """A middleware engine over the catalog: RDBMS + album-color subsystem.

    ``query_colors`` names the colors for which the color subsystem
    precomputes graded answer lists (default: red, blue, green, yellow).
    """
    colors = tuple(query_colors) if query_colors is not None else (
        "red", "blue", "green", "yellow",
    )
    rows = {
        album.album_id: {
            "Artist": album.artist,
            "Title": album.title,
            "Year": album.year,
            "Price": album.price,
        }
        for album in catalog
    }
    relational = RelationalSubsystem("cd-rdbms", rows)

    covers = ListSubsystem("cover-art")
    for color_name in colors:
        target = NAMED_COLORS[color_name]
        covers.add_list(
            "AlbumColor",
            color_name,
            {
                album.album_id: _color_closeness(album.cover_color, target)
                for album in catalog
            },
        )

    engine = MiddlewareEngine()
    engine.register(relational)
    engine.register(covers)
    return engine
