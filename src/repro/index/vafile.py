"""A vector-approximation file (VA-file) for high dimensions (§2.1, §6).

"It is the author's opinion that much more work is needed in
high-dimensional indexing, or similar techniques, in order to deal
effectively with the hard issues of efficiently evaluating multimedia
queries."

The VA-file (Weber–Schek–Blott, 1998 — contemporaneous with the paper)
is the classic such technique: instead of a tree, keep a *compressed
approximation* of every vector (a few bits per dimension) and scan the
approximations.  Each approximation yields lower/upper bounds on the
true distance, so most full vectors are never touched:

1. scan phase — compute bound intervals from the b-bit grid cells; keep
   a candidate only if its lower bound beats the current k-th upper
   bound;
2. refine phase — visit candidates in lower-bound order, computing true
   distances, stopping when the next lower bound exceeds the k-th true
   distance.

Unlike partitioning indexes the scan cost never *explodes* with
dimension — it degrades gracefully toward the linear scan — which is
exactly the regime E13 shows the R-tree losing.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.index.base import Neighbor, VectorIndex


class VAFile(VectorIndex):
    """Vector-approximation file over [0, 1]^d with ``bits`` per dimension."""

    def __init__(self, dimension: int, bits: int = 4) -> None:
        super().__init__(dimension)
        if not 1 <= bits <= 16:
            raise IndexError_(f"bits per dimension must lie in [1, 16], got {bits}")
        self.bits = bits
        self.cells = 2**bits
        self._ids: List[object] = []
        self._vectors: List[np.ndarray] = []
        self._approximations: List[np.ndarray] = []

    # ------------------------------------------------------------------
    def _approximate(self, vector: np.ndarray) -> np.ndarray:
        return np.clip((vector * self.cells).astype(int), 0, self.cells - 1)

    def insert(self, object_id: object, vector) -> None:
        point = self._check_vector(vector)
        if np.any(point < 0) or np.any(point > 1):
            raise IndexError_("VA-file stores points in the unit cube only")
        self._ids.append(object_id)
        self._vectors.append(point)
        self._approximations.append(self._approximate(point))

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    def _bounds(self, approximation: np.ndarray, query: np.ndarray) -> Tuple[float, float]:
        """Lower/upper bounds on the distance from query to any point in
        the approximation's grid cell."""
        cell_low = approximation / self.cells
        cell_high = (approximation + 1) / self.cells
        below = np.clip(cell_low - query, 0.0, None)
        above = np.clip(query - cell_high, 0.0, None)
        lower = float(np.sqrt(np.sum(np.maximum(below, above) ** 2)))
        farthest = np.maximum(np.abs(query - cell_low), np.abs(query - cell_high))
        upper = float(np.sqrt(np.sum(farthest**2)))
        return lower, upper

    def range_query(self, lower, upper) -> List[object]:
        lo = self._check_vector(lower)
        hi = self._check_vector(upper)
        results: List[object] = []
        lo_cells = self._approximate(np.clip(lo, 0.0, 1.0))
        hi_cells = self._approximate(np.clip(hi, 0.0, 1.0))
        for object_id, vector, approximation in zip(
            self._ids, self._vectors, self._approximations
        ):
            self.stats.node_accesses += 1  # one approximation read
            if np.any(approximation < lo_cells) or np.any(approximation > hi_cells):
                continue
            self.stats.distance_evaluations += 1  # full-vector check
            if np.all(vector >= lo) and np.all(vector <= hi):
                results.append(object_id)
        return results

    def knn(self, target, k: int) -> List[Neighbor]:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        query = self._check_vector(target)
        if not self._ids:
            return []

        # Phase 1: scan approximations, keeping bound intervals.
        candidates: List[Tuple[float, float, int]] = []
        kth_upper = float("inf")
        uppers: List[float] = []
        for index, approximation in enumerate(self._approximations):
            self.stats.node_accesses += 1
            lower, upper = self._bounds(approximation, query)
            if lower <= kth_upper:
                candidates.append((lower, upper, index))
                uppers.append(upper)
                if len(uppers) >= k:
                    uppers.sort()
                    del uppers[k:]
                    kth_upper = uppers[k - 1]

        # Phase 2: refine in lower-bound order with true distances.
        candidates.sort()
        best: List[Tuple[float, str, object]] = []
        cutoff = float("inf")
        for lower, _, index in candidates:
            if len(best) >= k and lower > cutoff:
                break
            self.stats.distance_evaluations += 1
            distance = float(np.linalg.norm(self._vectors[index] - query))
            best.append((distance, str(self._ids[index]), self._ids[index]))
            best.sort()
            if len(best) > k:
                best.pop()
            if len(best) >= k:
                cutoff = best[-1][0]
        return [(object_id, distance) for distance, _, object_id in best]

    # ------------------------------------------------------------------
    def approximation_bytes(self) -> int:
        """Size of the approximation file (the thing that gets scanned)."""
        bits_total = len(self._ids) * self.dimension * self.bits
        return (bits_total + 7) // 8

    def vector_bytes(self) -> int:
        """Size of the full vectors (8-byte floats)."""
        return len(self._ids) * self.dimension * 8
