"""A vector-approximation file (VA-file) for high dimensions (§2.1, §6).

"It is the author's opinion that much more work is needed in
high-dimensional indexing, or similar techniques, in order to deal
effectively with the hard issues of efficiently evaluating multimedia
queries."

The VA-file (Weber–Schek–Blott, 1998 — contemporaneous with the paper)
is the classic such technique: instead of a tree, keep a *compressed
approximation* of every vector (a few bits per dimension) and scan the
approximations.  Each approximation yields lower/upper bounds on the
true distance, so most full vectors are never touched:

1. scan phase — one vectorized pass over the ``[n, d]`` code matrix
   computes every lower/upper bound; a partitioned selection of the
   k-th upper bound prunes the candidate set in one mask;
2. refine phase — visit candidates in canonical ``(lower, str(id))``
   order, computing true distances in vectorized blocks, stopping when
   the next lower bound exceeds the k-th true distance.

Unlike partitioning indexes the scan cost never *explodes* with
dimension — it degrades gracefully toward the linear scan — which is
exactly the regime E13 shows the R-tree losing.

Storage is columnar: :meth:`VAFile.bulk_load` adopts one ``[n, d]``
float matrix (a numpy memmap stays out of core) plus one ``[n, d]``
uint code matrix; per-item :meth:`VAFile.insert` remains as the
incremental path and consolidates lazily.  :meth:`VAFile.knn_stream`
exposes the same scan/refine machinery as a lazy nearest-first stream:
the scan phase runs on the first pop, then candidates refine in small
blocks only as far as emission requires.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import IndexError_, UnknownObjectError
from repro.index.base import (
    KnnStream,
    Neighbor,
    VectorIndex,
    canonical_tie_array,
    euclidean_distances,
)

#: Slack added to bound comparisons so float rounding in the vectorized
#: bound kernel can never prune a true neighbour (errs toward refining).
EPS = 1e-12

#: Rows per vectorized chunk in the scan phase (bounds temp memory).
SCAN_CHUNK = 65536

#: Candidates refined per vectorized block in the refine phase.
REFINE_BLOCK = 64

#: Refine block for the incremental stream (smaller: streams usually
#: stop after a handful of pops).
STREAM_BLOCK = 32


class _VAFileStream(KnnStream):
    """Lazy scan-then-refine stream over a VA-file.

    The approximation scan (all n bounds) runs on the first pop; after
    that, candidates are refined in blocks of :data:`STREAM_BLOCK`,
    only while the next unrefined lower bound could still beat the best
    refined-but-unemitted distance.  Emission order is the canonical
    ``(distance, str(id))`` order.
    """

    def __init__(self, vafile: "VAFile", query: np.ndarray) -> None:
        super().__init__()
        self._va = vafile
        self._query = query
        self._started = False
        self._order: Optional[np.ndarray] = None  # rows by (lower, tie)
        self._lowers: Optional[np.ndarray] = None  # lower bound per order slot
        self._position = 0
        #: refined-but-unemitted: (distance, tie, row) min-heap
        self._refined: List[Tuple[float, str, int]] = []

    def _start(self) -> None:
        self._started = True
        size = len(self._va)
        if size == 0:
            self._order = np.empty(0, dtype=int)
            self._lowers = np.empty(0)
            return
        lower, _ = self._va._all_bounds(self._query)
        self._va.stats.record_nodes(size)
        order = np.lexsort((self._va._tie_array(), lower))
        self._order = order
        self._lowers = lower[order]

    def _advance(self) -> Optional[Neighbor]:
        if not self._started:
            self._start()
        matrix = self._va._matrix()
        ties = self._va._tie_array()
        total = len(self._order)
        while self._position < total and (
            not self._refined
            or self._lowers[self._position] <= self._refined[0][0] + EPS
        ):
            rows = self._order[self._position : self._position + STREAM_BLOCK]
            self._position += len(rows)
            distances = euclidean_distances(matrix[rows], self._query)
            self._va.stats.record_distances(len(rows))
            for row, distance in zip(rows, distances):
                heapq.heappush(
                    self._refined, (float(distance), ties[row], int(row))
                )
        if not self._refined:
            return None
        distance, _, row = heapq.heappop(self._refined)
        return (self._va._ids[row], distance)


class VAFile(VectorIndex):
    """Vector-approximation file over [0, 1]^d with ``bits`` per dimension."""

    def __init__(self, dimension: int, bits: int = 4) -> None:
        super().__init__(dimension)
        if not 1 <= bits <= 16:
            raise IndexError_(f"bits per dimension must lie in [1, 16], got {bits}")
        self.bits = bits
        self.cells = 2**bits
        self._code_dtype = np.uint8 if bits <= 8 else np.uint16
        self._ids: List[object] = []
        self._base_matrix: Optional[np.ndarray] = None  # bulk-loaded block
        self._base_codes: Optional[np.ndarray] = None
        self._tail_vectors: List[np.ndarray] = []  # per-item inserts
        self._tail_codes: List[np.ndarray] = []
        self._positions: Dict[object, int] = {}
        self._matrix_cache: Optional[np.ndarray] = None
        self._codes_cache: Optional[np.ndarray] = None
        self._tie_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls, object_ids, vectors, *, bits: int = 6, chunk: int = SCAN_CHUNK
    ) -> "VAFile":
        """Columnar build: one ``[n, d]`` matrix in, codes out chunk-wise.

        The vector matrix is adopted by reference when already
        ``float64`` (a memmap stays out of core); only the small uint
        code matrix is materialized in RAM."""
        matrix = np.asarray(vectors, dtype=float)
        if matrix.ndim != 2:
            raise IndexError_(f"expected an [n, d] matrix, got shape {matrix.shape}")
        ids = list(object_ids)
        if len(ids) != len(matrix):
            raise IndexError_(f"{len(ids)} ids for {len(matrix)} vectors")
        va = cls(matrix.shape[1], bits=bits)
        codes = np.empty(matrix.shape, dtype=va._code_dtype)
        for start in range(0, len(matrix), chunk):
            block = matrix[start : start + chunk]
            if np.any(block < 0) or np.any(block > 1):
                raise IndexError_("VA-file stores points in the unit cube only")
            np.clip(
                (block * va.cells).astype(np.int64),
                0,
                va.cells - 1,
                out=codes[start : start + chunk],
                casting="unsafe",
            )
        va._ids = ids
        va._base_matrix = matrix
        va._base_codes = codes
        va._positions = {object_id: row for row, object_id in enumerate(ids)}
        return va

    def _approximate(self, vector: np.ndarray) -> np.ndarray:
        return np.clip((vector * self.cells).astype(int), 0, self.cells - 1)

    def insert(self, object_id: object, vector) -> None:
        point = self._check_vector(vector)
        if np.any(point < 0) or np.any(point > 1):
            raise IndexError_("VA-file stores points in the unit cube only")
        self._positions[object_id] = len(self._ids)
        self._ids.append(object_id)
        self._tail_vectors.append(point)
        self._tail_codes.append(self._approximate(point).astype(self._code_dtype))
        self._matrix_cache = None
        self._codes_cache = None
        self._tie_cache = None

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # Columnar views
    # ------------------------------------------------------------------
    def _matrix(self) -> np.ndarray:
        if self._matrix_cache is None:
            blocks = []
            if self._base_matrix is not None and len(self._base_matrix):
                blocks.append(self._base_matrix)
            if self._tail_vectors:
                blocks.append(np.stack(self._tail_vectors))
            if not blocks:
                return np.empty((0, self.dimension))
            self._matrix_cache = (
                blocks[0] if len(blocks) == 1 else np.vstack(blocks)
            )
        return self._matrix_cache

    def _codes(self) -> np.ndarray:
        if self._codes_cache is None:
            blocks = []
            if self._base_codes is not None and len(self._base_codes):
                blocks.append(self._base_codes)
            if self._tail_codes:
                blocks.append(np.stack(self._tail_codes))
            if not blocks:
                return np.empty((0, self.dimension), dtype=self._code_dtype)
            self._codes_cache = (
                blocks[0] if len(blocks) == 1 else np.vstack(blocks)
            )
        return self._codes_cache

    def _tie_array(self) -> np.ndarray:
        if self._tie_cache is None:
            self._tie_cache = canonical_tie_array(self._ids)
        return self._tie_cache

    @property
    def _vectors(self) -> np.ndarray:
        """Row-indexable view of all stored vectors (tests peek here)."""
        return self._matrix()

    @property
    def _approximations(self) -> np.ndarray:
        """Row-indexable view of all stored approximations."""
        return self._codes()

    def vector_of(self, object_id: object) -> np.ndarray:
        row = self._positions.get(object_id)
        if row is None:
            raise UnknownObjectError(f"unknown object: {object_id!r}")
        return np.asarray(self._matrix()[row], dtype=float)

    # ------------------------------------------------------------------
    # Distance bounds
    # ------------------------------------------------------------------
    def _bounds(self, approximation: np.ndarray, query: np.ndarray) -> Tuple[float, float]:
        """Lower/upper bounds on the distance from query to any point in
        the approximation's grid cell."""
        cell_low = approximation / self.cells
        cell_high = (approximation + 1.0) / self.cells
        below = np.clip(cell_low - query, 0.0, None)
        above = np.clip(query - cell_high, 0.0, None)
        lower = float(np.sqrt(np.sum(np.maximum(below, above) ** 2)))
        farthest = np.maximum(np.abs(query - cell_low), np.abs(query - cell_high))
        upper = float(np.sqrt(np.sum(farthest**2)))
        return lower, upper

    def _all_bounds(self, query: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized scan phase: lower/upper bounds for every stored
        approximation, computed in chunks of :data:`SCAN_CHUNK` rows."""
        codes = self._codes()
        size = len(codes)
        lower = np.empty(size)
        upper = np.empty(size)
        for start in range(0, size, SCAN_CHUNK):
            block = codes[start : start + SCAN_CHUNK]
            cell_low = block / self.cells
            cell_high = (block + 1.0) / self.cells
            below = np.clip(cell_low - query, 0.0, None)
            above = np.clip(query - cell_high, 0.0, None)
            gap = np.maximum(below, above)
            lower[start : start + SCAN_CHUNK] = np.sqrt((gap * gap).sum(axis=1))
            farthest = np.maximum(
                np.abs(query - cell_low), np.abs(query - cell_high)
            )
            upper[start : start + SCAN_CHUNK] = np.sqrt(
                (farthest * farthest).sum(axis=1)
            )
        return lower, upper

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, lower, upper) -> List[object]:
        lo = self._check_vector(lower)
        hi = self._check_vector(upper)
        size = len(self._ids)
        if size == 0:
            return []
        lo_cells = self._approximate(np.clip(lo, 0.0, 1.0))
        hi_cells = self._approximate(np.clip(hi, 0.0, 1.0))
        codes = self._codes()
        self.stats.record_nodes(size)  # every approximation is read
        maybe = np.all((codes >= lo_cells) & (codes <= hi_cells), axis=1)
        rows = np.nonzero(maybe)[0]
        if not len(rows):
            return []
        self.stats.record_distances(len(rows))  # full-vector checks
        block = self._matrix()[rows]
        inside = np.all((block >= lo) & (block <= hi), axis=1)
        return [self._ids[row] for row in rows[inside]]

    def knn(self, target, k: int) -> List[Neighbor]:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        query = self._check_vector(target)
        size = len(self._ids)
        if size == 0:
            return []

        # Phase 1: vectorized approximation scan + partitioned selection
        # of the pruning threshold (the k-th smallest upper bound).
        lower, upper = self._all_bounds(query)
        self.stats.record_nodes(size)
        if size > k:
            kth_upper = np.partition(upper, k - 1)[k - 1]
            keep = np.nonzero(lower <= kth_upper + EPS)[0]
        else:
            keep = np.arange(size)

        # Phase 2: refine candidates in canonical (lower, tie) order,
        # true distances computed in vectorized blocks.
        ties = self._tie_array()
        order = np.lexsort((ties[keep], lower[keep]))
        candidates = keep[order]
        candidate_lowers = lower[candidates]
        matrix = self._matrix()
        refined_rows: List[np.ndarray] = []
        refined_distances: List[np.ndarray] = []
        refined_count = 0
        cutoff = float("inf")
        position = 0
        while position < len(candidates):
            if refined_count >= k and candidate_lowers[position] > cutoff + EPS:
                break
            rows = candidates[position : position + REFINE_BLOCK]
            position += len(rows)
            distances = euclidean_distances(matrix[rows], query)
            self.stats.record_distances(len(rows))
            refined_rows.append(rows)
            refined_distances.append(distances)
            refined_count += len(rows)
            if refined_count >= k:
                flat = np.concatenate(refined_distances)
                cutoff = float(np.partition(flat, k - 1)[k - 1])
        rows = np.concatenate(refined_rows)
        distances = np.concatenate(refined_distances)
        best = np.lexsort((ties[rows], distances))[:k]
        return [
            (self._ids[rows[i]], float(distances[i])) for i in best
        ]

    def knn_stream(self, target) -> KnnStream:
        return _VAFileStream(self, self._check_vector(target))

    # ------------------------------------------------------------------
    def approximation_bytes(self) -> int:
        """Size of the approximation file (the thing that gets scanned)."""
        bits_total = len(self._ids) * self.dimension * self.bits
        return (bits_total + 7) // 8

    def vector_bytes(self) -> int:
        """Size of the full vectors (8-byte floats)."""
        return len(self._ids) * self.dimension * 8
