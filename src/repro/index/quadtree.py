"""A linear quadtree via Morton (Z-order) codes (section 2.1).

The other method the paper names as growing "exponentially with the
dimensionality" [Sa89].  A *linear* quadtree stores no explicit tree:
each point is coded by interleaving the bits of its quantized
coordinates (the Morton code), and cells become contiguous code ranges.
Range queries decompose the query box into cell ranges at a fixed depth;
the number of such cells — and hence query work — is exponential in the
dimension, which E13 measures.

Generalized to d dimensions (a true "quadtree" is d = 2 with 4-way
fan-out; the code handles any d >= 1 with 2^d-way fan-out).
"""

from __future__ import annotations

import bisect
import itertools
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import IndexError_, UnknownObjectError
from repro.index.base import Neighbor, VectorIndex, euclidean_distances


def interleave_bits(coordinates: Tuple[int, ...], depth: int) -> int:
    """Morton code: bit-interleave quantized coordinates at ``depth`` bits."""
    code = 0
    for bit in range(depth - 1, -1, -1):
        for axis, coordinate in enumerate(coordinates):
            code = (code << 1) | ((coordinate >> bit) & 1)
    return code


class LinearQuadtree(VectorIndex):
    """Morton-coded point store over the unit cube at a fixed depth."""

    #: Refuse cell spaces past this size — range decomposition visits a
    #: number of cells exponential in the dimension (the curse), and
    #: beyond this bound even one query would take unbounded time.
    MAX_CELLS = 2**22

    def __init__(self, dimension: int, depth: int = 4) -> None:
        super().__init__(dimension)
        if depth < 1:
            raise IndexError_(f"depth must be >= 1, got {depth}")
        if 2 ** (depth * dimension) > self.MAX_CELLS:
            raise IndexError_(
                f"cell space 2^{depth * dimension} at dimension {dimension} "
                "is intractable: the dimensionality curse in action"
            )
        self.depth = depth
        self.cells_per_dim = 2**depth
        #: (code, object_id, vector), kept sorted by code.
        self._entries: List[Tuple[int, object, np.ndarray]] = []
        self._codes: List[int] = []
        self._by_id: Dict[object, np.ndarray] = {}

    def _quantize(self, vector: np.ndarray) -> Tuple[int, ...]:
        cells = np.clip(
            (vector * self.cells_per_dim).astype(int), 0, self.cells_per_dim - 1
        )
        return tuple(int(c) for c in cells)

    def code_of(self, vector) -> int:
        """The Morton code of a point (exposed for tests)."""
        return interleave_bits(self._quantize(self._check_vector(vector)), self.depth)

    def insert(self, object_id: object, vector) -> None:
        point = self._check_vector(vector)
        if np.any(point < 0) or np.any(point > 1):
            raise IndexError_("linear quadtree stores points in the unit cube only")
        code = interleave_bits(self._quantize(point), self.depth)
        position = bisect.bisect_left(self._codes, code)
        self._codes.insert(position, code)
        self._entries.insert(position, (code, object_id, point))
        self._by_id[object_id] = point

    def vector_of(self, object_id: object) -> np.ndarray:
        vector = self._by_id.get(object_id)
        if vector is None:
            raise UnknownObjectError(f"unknown object: {object_id!r}")
        return vector

    def range_query(self, lower, upper) -> List[object]:
        lo = self._check_vector(lower)
        hi = self._check_vector(upper)
        lo_cell = self._quantize(np.clip(lo, 0.0, 1.0))
        hi_cell = self._quantize(np.clip(hi, 0.0, 1.0))
        results: List[object] = []
        # Visit every cell overlapping the box — the cell count is
        # exponential in dimension, which is the point of E13.
        ranges = [range(a, b + 1) for a, b in zip(lo_cell, hi_cell)]
        for cell in itertools.product(*ranges):
            code = interleave_bits(cell, self.depth)
            self.stats.record_nodes()
            start = bisect.bisect_left(self._codes, code)
            end = bisect.bisect_right(self._codes, code)
            for _, object_id, point in self._entries[start:end]:
                self.stats.record_distances()
                if np.all(point >= lo) and np.all(point <= hi):
                    results.append(object_id)
        return results

    def knn(self, target, k: int) -> List[Neighbor]:
        """k-NN by growing a range box around the target.

        Doubles the box half-width until k candidates are inside and the
        box fully covers the k-th distance, then verifies exactly.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        point = self._check_vector(target)
        if not self._entries:
            return []
        half_width = 1.0 / self.cells_per_dim
        while True:
            ids = self.range_query(point - half_width, point + half_width)
            if len(ids) >= k or half_width >= 1.0:
                candidates = []
                vectors = {
                    object_id: vector for _, object_id, vector in self._entries
                }
                for object_id in ids:
                    self.stats.record_distances()
                    d = euclidean_distances(vectors[object_id], point)
                    candidates.append((d, str(object_id), object_id))
                candidates.sort()
                if half_width >= 1.0 or (
                    len(candidates) >= k and candidates[k - 1][0] <= half_width
                ):
                    return [(obj, d) for d, _, obj in candidates[:k]]
            half_width *= 2.0

    def __len__(self) -> int:
        return len(self._entries)
