"""A grid file (section 2.1's exponential-growth example).

"Two popular multidimensional indexing methods, namely linear quadtrees
and grid files, grow exponentially with the dimensionality.  So these
methods are not practical in these situations."  [NHS84]

This is a simplified grid file over the unit cube: a uniform directory
of ``cells_per_dim ** dimension`` cells.  The directory size — the
quantity that explodes with dimension — is exposed as
:attr:`GridFile.directory_size`, and experiment E13 charts it against
the R-tree's node count to reproduce the paper's "not practical"
verdict.  k-NN expands concentric cell shells around the target until
the unexplored shells provably cannot improve the answer.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import IndexError_, UnknownObjectError
from repro.index.base import Neighbor, VectorIndex, euclidean_distances

Cell = Tuple[int, ...]


class GridFile(VectorIndex):
    """Uniform grid directory over [0, 1]^d."""

    #: Refuse directories past this size instead of exhausting memory —
    #: the practical manifestation of the dimensionality curse.
    MAX_DIRECTORY = 2_000_000

    def __init__(self, dimension: int, cells_per_dim: int = 8) -> None:
        super().__init__(dimension)
        if cells_per_dim < 1:
            raise IndexError_(f"cells_per_dim must be >= 1, got {cells_per_dim}")
        self.cells_per_dim = cells_per_dim
        self.directory_size = cells_per_dim**dimension
        if self.directory_size > self.MAX_DIRECTORY:
            raise IndexError_(
                f"grid directory would need {self.directory_size} cells at "
                f"dimension {dimension}: the dimensionality curse in action"
            )
        self._cells: Dict[Cell, List[Tuple[object, np.ndarray]]] = {}
        self._by_id: Dict[object, np.ndarray] = {}
        self._count = 0

    def _cell_of(self, vector: np.ndarray) -> Cell:
        scaled = np.clip(
            (vector * self.cells_per_dim).astype(int), 0, self.cells_per_dim - 1
        )
        return tuple(int(c) for c in scaled)

    def insert(self, object_id: object, vector) -> None:
        point = self._check_vector(vector)
        if np.any(point < 0) or np.any(point > 1):
            raise IndexError_("grid file stores points in the unit cube only")
        self._cells.setdefault(self._cell_of(point), []).append((object_id, point))
        self._by_id[object_id] = point
        self._count += 1

    def vector_of(self, object_id: object) -> np.ndarray:
        vector = self._by_id.get(object_id)
        if vector is None:
            raise UnknownObjectError(f"unknown object: {object_id!r}")
        return vector

    def range_query(self, lower, upper) -> List[object]:
        lo = self._check_vector(lower)
        hi = self._check_vector(upper)
        lo_cell = self._cell_of(np.clip(lo, 0.0, 1.0))
        hi_cell = self._cell_of(np.clip(hi, 0.0, 1.0))
        results: List[object] = []
        ranges = [range(a, b + 1) for a, b in zip(lo_cell, hi_cell)]
        for cell in itertools.product(*ranges):
            self.stats.record_nodes()
            for object_id, point in self._cells.get(cell, ()):
                self.stats.record_distances()
                if np.all(point >= lo) and np.all(point <= hi):
                    results.append(object_id)
        return results

    def _shell(self, center: Cell, radius: int):
        """Cells at Chebyshev distance exactly ``radius`` from center."""
        if radius == 0:
            yield center
            return
        spans = [
            range(
                max(0, c - radius), min(self.cells_per_dim - 1, c + radius) + 1
            )
            for c in center
        ]
        for cell in itertools.product(*spans):
            if max(abs(a - b) for a, b in zip(cell, center)) == radius:
                yield cell

    def knn(self, target, k: int) -> List[Neighbor]:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        point = self._check_vector(target)
        if self._count == 0:
            return []
        center = self._cell_of(np.clip(point, 0.0, 1.0))
        cell_size = 1.0 / self.cells_per_dim
        found: List[Tuple[float, str, object]] = []
        for radius in range(self.cells_per_dim + 1):
            # Any point in an unexplored shell is at least this far away.
            shell_min_distance = max(0.0, (radius - 1) * cell_size)
            if len(found) >= k and found[k - 1][0] <= shell_min_distance:
                break
            for cell in self._shell(center, radius):
                self.stats.record_nodes()
                for object_id, vector in self._cells.get(cell, ()):
                    self.stats.record_distances()
                    d = euclidean_distances(vector, point)
                    found.append((d, str(object_id), object_id))
            found.sort()
        return [(object_id, d) for d, _, object_id in found[:k]]

    def occupied_cells(self) -> int:
        """Number of directory cells actually holding data."""
        return len(self._cells)

    def __len__(self) -> int:
        return self._count
