"""Common machinery for the multidimensional indexes (section 2.1).

"This suggests the use of a multidimensional indexing method, in order
to speed up the evaluation of atomic multimedia queries.  But multimedia
data often have high dimensionalities ... the 'dimensionality curse'."

Every index stores (object id, feature vector) pairs, answers range and
k-nearest-neighbour queries under Euclidean distance, and tallies its
work in an :class:`IndexStats` so experiment E13 can compare indexes
against the linear-scan baseline as dimensionality grows.

Beyond the batch ``knn()`` API, every index exposes a lazy, resumable
:meth:`VectorIndex.knn_stream`: a best-first iterator that emits
neighbours in certified nondecreasing ``(distance, str(id))`` order
without materializing all n results — the sorted-access feed that
``repro.index.source.KnnSource`` adapts into a graded ranked list.

All distance computation in the index package goes through
:func:`euclidean_distances` so that the same (query, vector) pair yields
the *bit-identical* float in every index — the property the cross-index
conformance gates (exact id+distance equality against the linear-scan
oracle) and the byte-identical CLI answers rely on.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import IndexError_, UnknownObjectError


def euclidean_distances(vectors, query: np.ndarray):
    """Euclidean distance from ``query`` to one vector or a ``[n, d]`` block.

    The single shared kernel for *every* distance the index package
    computes.  It spells out ``sqrt(sum((x - q)**2))`` instead of
    ``np.linalg.norm`` so the scalar and the row-block paths run the
    same pairwise summation and return bit-identical floats — distance
    ties then break identically across indexes, which is what makes
    cross-index conformance byte-exact.
    """
    diff = np.asarray(vectors, dtype=float) - query
    squared = diff * diff
    if diff.ndim == 1:
        return float(np.sqrt(squared.sum()))
    return np.sqrt(squared.sum(axis=1))


def canonical_tie_array(object_ids) -> np.ndarray:
    """``str(id)`` per object as a numpy array — the canonical tie key."""
    return np.asarray([str(object_id) for object_id in object_ids])


@dataclass
class IndexStats:
    """Work counters for one index instance.

    ``node_accesses`` counts directory/page touches (the I/O proxy);
    ``distance_evaluations`` counts full feature-vector distance
    computations (the CPU proxy).  Updates go through
    :meth:`record_nodes` / :meth:`record_distances`, which hold a lock
    so concurrent probes from the parallel executor never tear a count.
    """

    node_accesses: int = 0
    distance_evaluations: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_nodes(self, n: int = 1) -> None:
        with self._lock:
            self.node_accesses += n

    def record_distances(self, n: int = 1) -> None:
        with self._lock:
            self.distance_evaluations += n

    def snapshot(self) -> Tuple[int, int]:
        """A consistent ``(node_accesses, distance_evaluations)`` pair."""
        with self._lock:
            return self.node_accesses, self.distance_evaluations

    def reset(self) -> None:
        with self._lock:
            self.node_accesses = 0
            self.distance_evaluations = 0


Neighbor = Tuple[object, float]


class KnnStream(ABC):
    """A lazy, resumable nearest-first neighbour stream.

    Emits :data:`Neighbor` pairs in certified nondecreasing
    ``(distance, str(id))`` order.  ``next()`` pops one neighbour (or
    ``None`` when exhausted); ``next_batch(n)`` pops up to ``n`` — the
    bulk shape :class:`repro.index.source.KnnSource` feeds from.  The
    stream is resumable: popping ``j`` then ``j`` more yields exactly
    the first ``2j`` of a fresh stream.
    """

    def __init__(self) -> None:
        self.delivered = 0

    @abstractmethod
    def _advance(self) -> Optional[Neighbor]:
        """Produce the next neighbour, or ``None`` when exhausted."""

    def next(self) -> Optional[Neighbor]:
        neighbor = self._advance()
        if neighbor is not None:
            self.delivered += 1
        return neighbor

    def next_batch(self, n: int) -> List[Neighbor]:
        if n < 0:
            raise ValueError(f"batch size must be >= 0, got {n}")
        batch: List[Neighbor] = []
        while len(batch) < n:
            neighbor = self.next()
            if neighbor is None:
                break
            batch.append(neighbor)
        return batch

    def __iter__(self) -> Iterator[Neighbor]:
        while True:
            neighbor = self.next()
            if neighbor is None:
                return
            yield neighbor


class _MaterializedKnnStream(KnnStream):
    """Fallback stream: run the batch ``knn`` once, then emit lazily.

    Used by indexes without a native incremental traversal (grid file,
    linear quadtree).  The full answer is computed on the *first* pop —
    constructing the stream costs nothing.
    """

    def __init__(self, index: "VectorIndex", target: np.ndarray) -> None:
        super().__init__()
        self._index = index
        self._target = target
        self._results: Optional[List[Neighbor]] = None
        self._position = 0

    def _advance(self) -> Optional[Neighbor]:
        if self._results is None:
            size = len(self._index)
            self._results = self._index.knn(self._target, size) if size else []
        if self._position >= len(self._results):
            return None
        neighbor = self._results[self._position]
        self._position += 1
        return neighbor


class VectorIndex(ABC):
    """A multidimensional index over labeled feature vectors."""

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise IndexError_(f"dimension must be >= 1, got {dimension}")
        self.dimension = dimension
        self.stats = IndexStats()

    def _check_vector(self, vector) -> np.ndarray:
        array = np.asarray(vector, dtype=float)
        if array.shape != (self.dimension,):
            raise IndexError_(
                f"expected a {self.dimension}-vector, got shape {array.shape}"
            )
        return array

    @abstractmethod
    def insert(self, object_id: object, vector) -> None:
        """Add one labeled vector."""

    @abstractmethod
    def range_query(self, lower, upper) -> List[object]:
        """Object ids inside the axis-aligned box [lower, upper]."""

    @abstractmethod
    def knn(self, target, k: int) -> List[Neighbor]:
        """The k nearest objects to ``target`` by Euclidean distance.

        Distance ties break by the canonical ``str(id)`` key, so every
        index returns the identical list for the identical data."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored vectors."""

    def knn_stream(self, target) -> KnnStream:
        """A lazy nearest-first stream over the whole index.

        Subclasses with a native incremental traversal override this;
        the default materializes the batch answer on first pop."""
        return _MaterializedKnnStream(self, self._check_vector(target))

    def vector_of(self, object_id: object) -> np.ndarray:
        """The stored feature vector of one object (random access)."""
        raise UnknownObjectError(
            f"{type(self).__name__} does not support vector lookup"
        )


class _ScanStream(KnnStream):
    """Linear-scan stream: all distances on first pop, emitted lazily."""

    def __init__(self, index: "LinearScanIndex", target: np.ndarray) -> None:
        super().__init__()
        self._index = index
        self._target = target
        self._order: Optional[np.ndarray] = None
        self._distances: Optional[np.ndarray] = None
        self._position = 0

    def _advance(self) -> Optional[Neighbor]:
        if self._order is None:
            matrix = self._index._full_matrix()
            if matrix is None:
                self._order = np.empty(0, dtype=int)
                self._distances = np.empty(0)
            else:
                self._index.stats.record_distances(len(matrix))
                self._distances = euclidean_distances(matrix, self._target)
                self._order = np.lexsort(
                    (self._index._tie_array(), self._distances)
                )
        if self._position >= len(self._order):
            return None
        row = int(self._order[self._position])
        self._position += 1
        return (self._index._ids[row], float(self._distances[row]))


class LinearScanIndex(VectorIndex):
    """The no-index baseline: a sequential scan of the entire database.

    "We wish to avoid doing a sequential scan of the entire database"
    (section 6) — this is the thing to beat.  The scan itself is
    columnar: vectors live in one ``[n, d]`` matrix (built by
    :meth:`bulk_load` or consolidated lazily from per-item inserts, and
    the bulk matrix may be a numpy memmap), so a query is one
    vectorized distance pass plus one canonical-order ``lexsort``.
    """

    def __init__(self, dimension: int) -> None:
        super().__init__(dimension)
        self._ids: List[object] = []
        self._matrix: Optional[np.ndarray] = None  # bulk-loaded block
        self._extra: List[np.ndarray] = []  # per-item inserts
        self._matrix_cache: Optional[np.ndarray] = None
        self._tie_cache: Optional[np.ndarray] = None
        self._positions: Dict[object, int] = {}

    @classmethod
    def bulk_load(cls, object_ids, vectors) -> "LinearScanIndex":
        """Columnar build from parallel ids and an ``[n, d]`` matrix.

        The matrix is adopted by reference when already ``float64`` —
        a memmap stays a memmap, so 10^6 vectors never enter RAM."""
        matrix = np.asarray(vectors, dtype=float)
        if matrix.ndim != 2:
            raise IndexError_(f"expected an [n, d] matrix, got shape {matrix.shape}")
        ids = list(object_ids)
        if len(ids) != len(matrix):
            raise IndexError_(
                f"{len(ids)} ids for {len(matrix)} vectors"
            )
        index = cls(matrix.shape[1])
        index._ids = ids
        index._matrix = matrix
        index._positions = {object_id: row for row, object_id in enumerate(ids)}
        return index

    def insert(self, object_id: object, vector) -> None:
        self._positions[object_id] = len(self._ids)
        self._ids.append(object_id)
        self._extra.append(self._check_vector(vector))
        self._matrix_cache = None
        self._tie_cache = None

    def _full_matrix(self) -> Optional[np.ndarray]:
        if self._matrix_cache is None:
            blocks = []
            if self._matrix is not None and len(self._matrix):
                blocks.append(self._matrix)
            if self._extra:
                blocks.append(np.stack(self._extra))
            if not blocks:
                return None
            self._matrix_cache = blocks[0] if len(blocks) == 1 else np.vstack(blocks)
        return self._matrix_cache

    def _tie_array(self) -> np.ndarray:
        if self._tie_cache is None:
            self._tie_cache = canonical_tie_array(self._ids)
        return self._tie_cache

    def vector_of(self, object_id: object) -> np.ndarray:
        row = self._positions.get(object_id)
        if row is None:
            raise UnknownObjectError(f"unknown object: {object_id!r}")
        matrix = self._full_matrix()
        return np.asarray(matrix[row], dtype=float)

    def range_query(self, lower, upper) -> List[object]:
        lo = self._check_vector(lower)
        hi = self._check_vector(upper)
        matrix = self._full_matrix()
        if matrix is None:
            return []
        self.stats.record_distances(len(matrix))
        inside = np.all((matrix >= lo) & (matrix <= hi), axis=1)
        return [self._ids[row] for row in np.nonzero(inside)[0]]

    def knn(self, target, k: int) -> List[Neighbor]:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        point = self._check_vector(target)
        matrix = self._full_matrix()
        if matrix is None:
            return []
        self.stats.record_distances(len(matrix))
        distances = euclidean_distances(matrix, point)
        order = np.lexsort((self._tie_array(), distances))[:k]
        return [(self._ids[row], float(distances[row])) for row in order]

    def knn_stream(self, target) -> KnnStream:
        return _ScanStream(self, self._check_vector(target))

    def __len__(self) -> int:
        return len(self._ids)
