"""Common machinery for the multidimensional indexes (section 2.1).

"This suggests the use of a multidimensional indexing method, in order
to speed up the evaluation of atomic multimedia queries.  But multimedia
data often have high dimensionalities ... the 'dimensionality curse'."

Every index stores (object id, feature vector) pairs, answers range and
k-nearest-neighbour queries under Euclidean distance, and tallies its
work in an :class:`IndexStats` so experiment E13 can compare indexes
against the linear-scan baseline as dimensionality grows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import IndexError_


@dataclass
class IndexStats:
    """Work counters for one index instance.

    ``node_accesses`` counts directory/page touches (the I/O proxy);
    ``distance_evaluations`` counts full feature-vector distance
    computations (the CPU proxy).
    """

    node_accesses: int = 0
    distance_evaluations: int = 0

    def reset(self) -> None:
        self.node_accesses = 0
        self.distance_evaluations = 0


Neighbor = Tuple[object, float]


class VectorIndex(ABC):
    """A multidimensional index over labeled feature vectors."""

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise IndexError_(f"dimension must be >= 1, got {dimension}")
        self.dimension = dimension
        self.stats = IndexStats()

    def _check_vector(self, vector) -> np.ndarray:
        array = np.asarray(vector, dtype=float)
        if array.shape != (self.dimension,):
            raise IndexError_(
                f"expected a {self.dimension}-vector, got shape {array.shape}"
            )
        return array

    @abstractmethod
    def insert(self, object_id: object, vector) -> None:
        """Add one labeled vector."""

    @abstractmethod
    def range_query(self, lower, upper) -> List[object]:
        """Object ids inside the axis-aligned box [lower, upper]."""

    @abstractmethod
    def knn(self, target, k: int) -> List[Neighbor]:
        """The k nearest objects to ``target`` by Euclidean distance."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored vectors."""


class LinearScanIndex(VectorIndex):
    """The no-index baseline: a sequential scan of the entire database.

    "We wish to avoid doing a sequential scan of the entire database"
    (section 6) — this is the thing to beat.
    """

    def __init__(self, dimension: int) -> None:
        super().__init__(dimension)
        self._ids: List[object] = []
        self._vectors: List[np.ndarray] = []

    def insert(self, object_id: object, vector) -> None:
        self._ids.append(object_id)
        self._vectors.append(self._check_vector(vector))

    def range_query(self, lower, upper) -> List[object]:
        lo = self._check_vector(lower)
        hi = self._check_vector(upper)
        results = []
        for object_id, vector in zip(self._ids, self._vectors):
            self.stats.distance_evaluations += 1
            if np.all(vector >= lo) and np.all(vector <= hi):
                results.append(object_id)
        return results

    def knn(self, target, k: int) -> List[Neighbor]:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        point = self._check_vector(target)
        if not self._ids:
            return []
        matrix = np.stack(self._vectors)
        self.stats.distance_evaluations += len(self._ids)
        distances = np.linalg.norm(matrix - point, axis=1)
        order = np.argsort(distances, kind="stable")[:k]
        return [(self._ids[i], float(distances[i])) for i in order]

    def __len__(self) -> int:
        return len(self._ids)
