"""Multidimensional indexes and the dimensionality curse (section 2.1):
an R-tree (robust to moderate dimensions), a grid file and a linear
quadtree (directory sizes exponential in dimension), and the linear-scan
baseline."""

from repro.index.base import IndexStats, LinearScanIndex, VectorIndex
from repro.index.gridfile import GridFile
from repro.index.knn import (
    KnnRun,
    build_default_indexes,
    run_knn_batch,
    verify_against_scan,
)
from repro.index.quadtree import LinearQuadtree, interleave_bits
from repro.index.rtree import RTree
from repro.index.vafile import VAFile

__all__ = [
    "VectorIndex",
    "IndexStats",
    "LinearScanIndex",
    "RTree",
    "VAFile",
    "GridFile",
    "LinearQuadtree",
    "interleave_bits",
    "KnnRun",
    "build_default_indexes",
    "run_knn_batch",
    "verify_against_scan",
]
