"""Multidimensional indexes and the dimensionality curse (section 2.1):
an R-tree (robust to moderate dimensions), a grid file and a linear
quadtree (directory sizes exponential in dimension), a VA-file, and the
linear-scan baseline — all exposing lazy nearest-first ``knn_stream``\\ s
that :class:`~repro.index.source.KnnSource` adapts into graded ranked
lists for the middleware."""

from repro.index.base import (
    IndexStats,
    KnnStream,
    LinearScanIndex,
    VectorIndex,
    canonical_tie_array,
    euclidean_distances,
)
from repro.index.gridfile import GridFile
from repro.index.knn import (
    KnnRun,
    build_default_indexes,
    run_knn_batch,
    verify_against_scan,
)
from repro.index.quadtree import LinearQuadtree, interleave_bits
from repro.index.rtree import RTree
from repro.index.source import (
    INDEX_KINDS,
    KnnSource,
    KnnSubsystem,
    build_knn_index,
)
from repro.index.vafile import VAFile

__all__ = [
    "VectorIndex",
    "IndexStats",
    "KnnStream",
    "LinearScanIndex",
    "RTree",
    "VAFile",
    "GridFile",
    "LinearQuadtree",
    "interleave_bits",
    "canonical_tie_array",
    "euclidean_distances",
    "KnnRun",
    "build_default_indexes",
    "run_knn_batch",
    "verify_against_scan",
    "INDEX_KINDS",
    "KnnSource",
    "KnnSubsystem",
    "build_knn_index",
]
