"""Index-backed kNN ranked lists: §2.1's indexes feeding §4's middleware.

"This suggests the use of a multidimensional indexing method, in order
to speed up the evaluation of atomic multimedia queries."  The paper's
top-k algorithms consume *ranked lists*; its index section produces
*nearest neighbours*.  :class:`KnnSource` is the bridge: it adapts a
lazy :meth:`~repro.index.base.VectorIndex.knn_stream` into a
:class:`~repro.core.sources.GradedSource` by mapping each certified
nondecreasing distance through the monotone decreasing
:func:`~repro.multimedia.histogram.distance_to_grade` — so the stream's
distance order *is* the ranked list's grade order, and TA/NRA/θ run
unchanged on top of a VA-file or R-tree instead of a full scan-and-sort.

Access-mode mapping (section 4):

* **sorted access** pops the stream (lazily, in batches — neighbours
  past the stopping depth are never computed, which is the entire point
  of the index fast path);
* **random access** is a direct distance evaluation against the stored
  vector (one ``distance_evaluations`` tick on the index);
* the bulk/columnar contract (``_items_range``, ``_columns_range``,
  ``supports_columnar``) is implemented, so the vector kernels, storage
  wrappers, tracer accounting, and resilience middleware compose
  unchanged.

Grade accounting stays on the source's :class:`AccessCounter` exactly
as for any other source; the *physical* index work (node accesses,
distance evaluations) accumulates on the index's locked
:class:`~repro.index.base.IndexStats`, surfaced to traces through the
:meth:`KnnSource.index_stats` hook.

:class:`KnnSubsystem` registers the whole thing as a middleware
subsystem: it bulk-loads one index over a feature corpus and binds
``Near = <target>`` atoms to fresh :class:`KnnSource` ranked lists.
"""

from __future__ import annotations

import zlib
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.query import Atomic
from repro.core.sources import GradedSource, _fast_item
from repro.errors import IndexError_
from repro.index.base import (
    LinearScanIndex,
    VectorIndex,
    euclidean_distances,
)
from repro.index.rtree import RTree
from repro.index.vafile import VAFile
from repro.middleware.interface import Subsystem
from repro.multimedia.histogram import distance_to_grade

#: The index kinds selectable end to end (``--index`` on the CLI).
INDEX_KINDS = ("scan", "vafile", "rtree")


def build_knn_index(
    kind: str,
    object_ids,
    vectors,
    *,
    bits: int = 6,
    max_entries: int = 32,
) -> VectorIndex:
    """Bulk-load one index of the chosen kind over an ``[n, d]`` matrix."""
    if kind == "scan":
        return LinearScanIndex.bulk_load(object_ids, vectors)
    if kind == "vafile":
        return VAFile.bulk_load(object_ids, vectors, bits=bits)
    if kind == "rtree":
        return RTree.bulk_load_arrays(object_ids, vectors, max_entries=max_entries)
    raise IndexError_(
        f"unknown index kind {kind!r}; expected one of {INDEX_KINDS}"
    )


class KnnSource(GradedSource):
    """A ranked list served by a nearest-first index stream.

    The stream prefix materializes lazily (ids + grades in parallel
    lists) as sorted positions are first touched; peeks re-read the
    materialized prefix and stay charge-free.  Grades are
    ``distance_to_grade(distance, scale)`` — since every index computes
    bit-identical distances through the shared Euclidean kernel, two
    :class:`KnnSource`\\ s over different index kinds produce
    byte-identical ranked lists.
    """

    supports_columnar = True

    def __init__(
        self,
        index: VectorIndex,
        target,
        *,
        name: str = "knn",
        scale: float = 1.0,
        batch: int = 256,
        kind: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self._index = index
        self._target = index._check_vector(target)
        self._scale = float(scale)
        self._batch = int(batch)
        self._kind = kind or type(index).__name__
        self._stream = index.knn_stream(self._target)
        self._prefix_ids: List[object] = []
        self._prefix_grades: List[float] = []
        self._stream_done = False

    # -- lazy materialization -------------------------------------------------
    def _materialize_to(self, position: int) -> None:
        """Pull the stream until the prefix covers ``position``.

        Charges nothing on the access counter — the cursor/random-access
        layer does that accounting; the physical pull cost lands on the
        index's own stats at the moment the work actually happens."""
        while not self._stream_done and len(self._prefix_ids) <= position:
            need = max(self._batch, position + 1 - len(self._prefix_ids))
            batch = self._stream.next_batch(need)
            if len(batch) < need:
                self._stream_done = True
            for object_id, distance in batch:
                self._prefix_ids.append(object_id)
                self._prefix_grades.append(
                    distance_to_grade(distance, scale=self._scale)
                )

    # -- GradedSource hooks ---------------------------------------------------
    def _item_at(self, index: int):
        self._materialize_to(index)
        if index >= len(self._prefix_ids):
            return None
        return _fast_item(self._prefix_ids[index], self._prefix_grades[index])

    def _items_range(self, start: int, count: int):
        self._materialize_to(start + count - 1)
        end = min(start + count, len(self._prefix_ids))
        return [
            _fast_item(self._prefix_ids[i], self._prefix_grades[i])
            for i in range(start, end)
        ]

    def _peek_range(self, start: int, count: int):
        return self._items_range(start, count)

    def _columns_range(self, start: int, count: int) -> Tuple[List[object], np.ndarray]:
        self._materialize_to(start + count - 1)
        end = min(start + count, len(self._prefix_ids))
        return (
            self._prefix_ids[start:end],
            np.asarray(self._prefix_grades[start:end], dtype=np.float64),
        )

    def _grade_of(self, object_id: object) -> float:
        vector = self._index.vector_of(object_id)
        self._index.stats.record_distances()
        distance = euclidean_distances(vector, self._target)
        return distance_to_grade(distance, scale=self._scale)

    def __len__(self) -> int:
        return len(self._index)

    # -- observability hook ---------------------------------------------------
    def index_stats(self) -> Dict[str, object]:
        """Physical index work behind this source (engine trace hook).

        Counters live on the index, so sources sharing one index report
        the cumulative work of that index."""
        nodes, distances = self._index.stats.snapshot()
        return {
            "index": self._kind,
            "n": len(self._index),
            "node_accesses": nodes,
            "distance_evals": distances,
        }


class KnnSubsystem(Subsystem):
    """A middleware subsystem serving ``Near = <target>`` kNN atoms.

    Bulk-loads one index (``scan`` | ``vafile`` | ``rtree``) over a
    feature corpus at construction; every supported atom binds to a
    fresh :class:`KnnSource` over that shared index.  String targets
    resolve to deterministic pseudo-random unit-cube query points
    (crc32-seeded, stable across processes), so SQL like
    ``WHERE Near = 'sunset'`` works without shipping raw vectors.
    """

    def __init__(
        self,
        name: str,
        object_ids,
        vectors,
        *,
        index: str = "vafile",
        attribute: str = "Near",
        scale: float = 1.0,
        bits: int = 6,
        max_entries: int = 32,
        batch: int = 256,
    ) -> None:
        super().__init__(name)
        self.kind = index
        self._attribute = attribute
        self._scale = scale
        self._batch = batch
        self._index = build_knn_index(
            index, object_ids, vectors, bits=bits, max_entries=max_entries
        )

    @property
    def index(self) -> VectorIndex:
        return self._index

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self._attribute})

    def resolve_target(self, value) -> np.ndarray:
        """An atom target as a query vector (strings hash to stable points)."""
        if isinstance(value, str):
            seed = zlib.crc32(value.encode("utf-8"))
            rng = np.random.default_rng(seed)
            return rng.random(self._index.dimension)
        return self._index._check_vector(value)

    def _bind(self, atom: Atomic) -> GradedSource:
        target = self.resolve_target(atom.target)
        label = atom.target if isinstance(atom.target, str) else "<vector>"
        return KnnSource(
            self._index,
            target,
            name=f"{self._attribute}={label}",
            scale=self._scale,
            batch=self._batch,
            kind=self.kind,
        )
