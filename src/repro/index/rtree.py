"""An R-tree with quadratic split and STR bulk loading (section 2.1).

"Another popular multidimensional indexing method is R-trees.  These
tend to be more robust for higher dimensions, at least for dimensions up
to around 20."  [BKSS90, Ot92]

The implementation follows Guttman's original design with the quadratic
split heuristic, plus Sort-Tile-Recursive (STR) bulk loading for
building from a batch.  k-NN uses the standard best-first traversal on
MINDIST, which visits exactly the nodes whose bounding boxes could still
contain a result — so the node-access counter directly measures how much
of the tree a query actually needed (the E13 comparison quantity).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.index.base import Neighbor, VectorIndex


class _BBox:
    """An axis-aligned bounding box with the usual R-tree operations."""

    __slots__ = ("lower", "upper")

    def __init__(self, lower: np.ndarray, upper: np.ndarray) -> None:
        self.lower = lower
        self.upper = upper

    @classmethod
    def of_point(cls, point: np.ndarray) -> "_BBox":
        return cls(point.copy(), point.copy())

    def volume(self) -> float:
        return float(np.prod(self.upper - self.lower))

    def enlarged(self, other: "_BBox") -> "_BBox":
        return _BBox(
            np.minimum(self.lower, other.lower),
            np.maximum(self.upper, other.upper),
        )

    def enlargement(self, other: "_BBox") -> float:
        return self.enlarged(other).volume() - self.volume()

    def intersects_box(self, lower: np.ndarray, upper: np.ndarray) -> bool:
        return bool(np.all(self.upper >= lower) and np.all(self.lower <= upper))

    def mindist(self, point: np.ndarray) -> float:
        """Distance from a point to the nearest point of the box."""
        below = np.clip(self.lower - point, 0.0, None)
        above = np.clip(point - self.upper, 0.0, None)
        return float(np.sqrt(np.sum(below**2) + np.sum(above**2)))


class _Node:
    __slots__ = ("is_leaf", "entries", "bbox")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        #: leaf entries: (bbox, object_id, vector); inner: (bbox, child)
        self.entries: List[tuple] = []
        self.bbox: Optional[_BBox] = None

    def recompute_bbox(self) -> None:
        boxes = [entry[0] for entry in self.entries]
        lower = np.minimum.reduce([b.lower for b in boxes])
        upper = np.maximum.reduce([b.upper for b in boxes])
        self.bbox = _BBox(lower, upper)


class RTree(VectorIndex):
    """Guttman R-tree over points, with STR bulk load and best-first k-NN."""

    def __init__(
        self, dimension: int, *, max_entries: int = 16, min_entries: Optional[int] = None
    ) -> None:
        super().__init__(dimension)
        if max_entries < 4:
            raise IndexError_(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max(2, max_entries // 3)
        )
        if not 2 <= self.min_entries <= self.max_entries // 2:
            raise IndexError_(
                f"min_entries must lie in [2, {self.max_entries // 2}], "
                f"got {self.min_entries}"
            )
        self._root = _Node(is_leaf=True)
        self._count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Sequence[Tuple[object, Sequence[float]]],
        dimension: int,
        *,
        max_entries: int = 16,
    ) -> "RTree":
        """Sort-Tile-Recursive bulk load: packed leaves, short tree."""
        tree = cls(dimension, max_entries=max_entries)
        if not items:
            return tree
        vectors = [tree._check_vector(v) for _, v in items]
        leaf_entries = [
            (_BBox.of_point(vector), object_id, vector)
            for (object_id, _), vector in zip(items, vectors)
        ]
        nodes = tree._str_pack(leaf_entries, leaf_level=True)
        while len(nodes) > 1:
            upper_entries = [(node.bbox, node) for node in nodes]
            nodes = tree._str_pack(upper_entries, leaf_level=False)
        tree._root = nodes[0]
        tree._count = len(items)
        return tree

    def _str_pack(self, entries: List[tuple], *, leaf_level: bool) -> List[_Node]:
        """Pack entries into nodes by recursive sort-tile slabs."""
        capacity = self.max_entries

        def center(entry) -> np.ndarray:
            box: _BBox = entry[0]
            return (box.lower + box.upper) / 2.0

        def tile(block: List[tuple], axis: int) -> List[List[tuple]]:
            if axis >= self.dimension or len(block) <= capacity:
                return [
                    block[i : i + capacity] for i in range(0, len(block), capacity)
                ]
            block = sorted(block, key=lambda e: center(e)[axis])
            leaves_needed = math.ceil(len(block) / capacity)
            remaining_axes = self.dimension - axis
            slabs = math.ceil(leaves_needed ** (1.0 / remaining_axes))
            slab_size = math.ceil(len(block) / slabs)
            groups: List[List[tuple]] = []
            for start in range(0, len(block), slab_size):
                groups.extend(tile(block[start : start + slab_size], axis + 1))
            return groups

        nodes = []
        for group in tile(list(entries), 0):
            node = _Node(is_leaf=leaf_level)
            node.entries = group
            node.recompute_bbox()
            nodes.append(node)
        return nodes

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, object_id: object, vector) -> None:
        point = self._check_vector(vector)
        entry = (_BBox.of_point(point), object_id, point)
        split = self._insert_entry(self._root, entry)
        if split is not None:
            old_root = self._root
            self._root = _Node(is_leaf=False)
            self._root.entries = [(old_root.bbox, old_root), (split.bbox, split)]
            self._root.recompute_bbox()
        self._count += 1

    def _insert_entry(self, node: _Node, entry: tuple) -> Optional[_Node]:
        """Insert into the subtree; return the new sibling on a split."""
        entry_box: _BBox = entry[0]
        if node.is_leaf:
            node.entries.append(entry)
        else:
            best_index = min(
                range(len(node.entries)),
                key=lambda i: (
                    node.entries[i][0].enlargement(entry_box),
                    node.entries[i][0].volume(),
                ),
            )
            child: _Node = node.entries[best_index][1]
            split = self._insert_entry(child, entry)
            node.entries[best_index] = (child.bbox, child)
            if split is not None:
                node.entries.append((split.bbox, split))
        if len(node.entries) > self.max_entries:
            return self._quadratic_split(node)
        node.recompute_bbox()
        return None

    def _quadratic_split(self, node: _Node) -> _Node:
        """Guttman's quadratic split; mutates ``node``, returns sibling."""
        entries = node.entries
        # Pick the pair of seeds wasting the most volume together.
        seed_a, seed_b = max(
            itertools.combinations(range(len(entries)), 2),
            key=lambda pair: entries[pair[0]][0]
            .enlarged(entries[pair[1]][0])
            .volume()
            - entries[pair[0]][0].volume()
            - entries[pair[1]][0].volume(),
        )
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        box_a = entries[seed_a][0]
        box_b = entries[seed_b][0]
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        while remaining:
            # Honor minimum fill if one group is running out of slack.
            slack = len(remaining)
            if len(group_a) + slack == self.min_entries:
                group_a.extend(remaining)
                for e in remaining:
                    box_a = box_a.enlarged(e[0])
                break
            if len(group_b) + slack == self.min_entries:
                group_b.extend(remaining)
                for e in remaining:
                    box_b = box_b.enlarged(e[0])
                break
            # Assign the entry with the strongest preference first.
            def preference(e) -> float:
                return abs(box_a.enlargement(e[0]) - box_b.enlargement(e[0]))

            chosen = max(remaining, key=preference)
            remaining.remove(chosen)
            if box_a.enlargement(chosen[0]) <= box_b.enlargement(chosen[0]):
                group_a.append(chosen)
                box_a = box_a.enlarged(chosen[0])
            else:
                group_b.append(chosen)
                box_b = box_b.enlarged(chosen[0])
        node.entries = group_a
        node.recompute_bbox()
        sibling = _Node(is_leaf=node.is_leaf)
        sibling.entries = group_b
        sibling.recompute_bbox()
        return sibling

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, lower, upper) -> List[object]:
        lo = self._check_vector(lower)
        hi = self._check_vector(upper)
        results: List[object] = []
        if self._count == 0:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            if node.is_leaf:
                for box, object_id, vector in node.entries:
                    self.stats.distance_evaluations += 1
                    if np.all(vector >= lo) and np.all(vector <= hi):
                        results.append(object_id)
            else:
                for box, child in node.entries:
                    if box.intersects_box(lo, hi):
                        stack.append(child)
        return results

    def knn(self, target, k: int) -> List[Neighbor]:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        point = self._check_vector(target)
        if self._count == 0:
            return []
        results: List[Neighbor] = []
        counter = itertools.count()  # tie-breaker for the heap
        heap: List[tuple] = [(0.0, next(counter), False, self._root)]
        while heap and len(results) < k:
            distance, _, is_object, payload = heapq.heappop(heap)
            if is_object:
                results.append((payload, distance))
                continue
            node: _Node = payload
            self.stats.node_accesses += 1
            if node.is_leaf:
                for box, object_id, vector in node.entries:
                    self.stats.distance_evaluations += 1
                    d = float(np.linalg.norm(vector - point))
                    heapq.heappush(heap, (d, next(counter), True, object_id))
            else:
                for box, child in node.entries:
                    heapq.heappush(
                        heap, (box.mindist(point), next(counter), False, child)
                    )
        return results

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    def height(self) -> int:
        """Tree height (1 for a single leaf)."""
        node = self._root
        levels = 1
        while not node.is_leaf:
            node = node.entries[0][1]
            levels += 1
        return levels

    def check_invariants(self) -> None:
        """Validate bounding-box containment and fill factors (tests)."""

        def visit(node: _Node, is_root: bool) -> _BBox:
            if not is_root and not node.is_leaf:
                if not self.min_entries <= len(node.entries) <= self.max_entries:
                    raise IndexError_(
                        f"node fill {len(node.entries)} violates "
                        f"[{self.min_entries}, {self.max_entries}]"
                    )
            boxes = []
            for entry in node.entries:
                if node.is_leaf:
                    boxes.append(entry[0])
                else:
                    child_box = visit(entry[1], False)
                    stored: _BBox = entry[0]
                    if not (
                        np.all(stored.lower <= child_box.lower + 1e-9)
                        and np.all(stored.upper >= child_box.upper - 1e-9)
                    ):
                        raise IndexError_("stored child bbox does not contain child")
                    boxes.append(child_box)
            lower = np.minimum.reduce([b.lower for b in boxes])
            upper = np.maximum.reduce([b.upper for b in boxes])
            return _BBox(lower, upper)

        if self._count:
            visit(self._root, True)
