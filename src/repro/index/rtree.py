"""An R-tree with quadratic split and STR bulk loading (section 2.1).

"Another popular multidimensional indexing method is R-trees.  These
tend to be more robust for higher dimensions, at least for dimensions up
to around 20."  [BKSS90, Ot92]

The implementation follows Guttman's original design with the quadratic
split heuristic, plus Sort-Tile-Recursive (STR) bulk loading for
building from a batch.  k-NN uses the standard best-first traversal on
MINDIST, which visits exactly the nodes whose bounding boxes could still
contain a result — so the node-access counter directly measures how much
of the tree a query actually needed (the E13 comparison quantity).

Leaves are columnar: each leaf holds its ids plus one ``[c, d]`` point
matrix, so scoring a visited leaf is a single vectorized distance pass.
:meth:`RTree.bulk_load_arrays` builds the whole tree from one ``[n, d]``
matrix with argsort-based STR tiling over index arrays (no per-entry
Python objects at the leaf level); per-item :meth:`RTree.insert` with
quadratic splits remains as the incremental path.
:meth:`RTree.knn_stream` exposes the best-first traversal as a lazy
resumable stream in canonical ``(distance, str(id))`` order — at equal
distance, nodes expand before objects emit, so every tied object is in
the frontier before the tie breaks on ``str(id)``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_, UnknownObjectError
from repro.index.base import (
    KnnStream,
    Neighbor,
    VectorIndex,
    euclidean_distances,
)


class _BBox:
    """An axis-aligned bounding box with the usual R-tree operations."""

    __slots__ = ("lower", "upper")

    def __init__(self, lower: np.ndarray, upper: np.ndarray) -> None:
        self.lower = lower
        self.upper = upper

    @classmethod
    def of_point(cls, point: np.ndarray) -> "_BBox":
        return cls(point.copy(), point.copy())

    def volume(self) -> float:
        return float(np.prod(self.upper - self.lower))

    def enlarged(self, other: "_BBox") -> "_BBox":
        return _BBox(
            np.minimum(self.lower, other.lower),
            np.maximum(self.upper, other.upper),
        )

    def enlargement(self, other: "_BBox") -> float:
        return self.enlarged(other).volume() - self.volume()

    def intersects_box(self, lower: np.ndarray, upper: np.ndarray) -> bool:
        return bool(np.all(self.upper >= lower) and np.all(self.lower <= upper))

    def mindist(self, point: np.ndarray) -> float:
        """Distance from a point to the nearest point of the box."""
        below = np.clip(self.lower - point, 0.0, None)
        above = np.clip(point - self.upper, 0.0, None)
        return float(np.sqrt(np.sum(below**2) + np.sum(above**2)))


class _Node:
    __slots__ = ("is_leaf", "entries", "ids", "matrix", "bbox")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        #: inner entries: (bbox, child); leaves keep ids + matrix instead
        self.entries: List[tuple] = []
        #: leaf payload: parallel ids and a [c, d] point matrix
        self.ids: List[object] = []
        self.matrix: Optional[np.ndarray] = None
        self.bbox: Optional[_BBox] = None

    def size(self) -> int:
        return len(self.ids) if self.is_leaf else len(self.entries)

    def recompute_bbox(self) -> None:
        if self.is_leaf:
            self.bbox = _BBox(self.matrix.min(axis=0), self.matrix.max(axis=0))
        else:
            boxes = [entry[0] for entry in self.entries]
            lower = np.minimum.reduce([b.lower for b in boxes])
            upper = np.maximum.reduce([b.upper for b in boxes])
            self.bbox = _BBox(lower, upper)


class _RTreeStream(KnnStream):
    """Best-first MINDIST traversal as a lazy resumable stream.

    Heap entries are ``(distance, kind, tie, seq, payload)`` with kind 0
    for nodes and 1 for objects: at equal distance every node expands
    before any object emits, so all tied objects are in the heap when
    the canonical ``str(id)`` tie key decides the emission order.
    """

    def __init__(self, tree: "RTree", point: np.ndarray) -> None:
        super().__init__()
        self._tree = tree
        self._point = point
        self._heap: Optional[List[tuple]] = None
        self._counter = itertools.count()

    def _advance(self) -> Optional[Neighbor]:
        if self._heap is None:
            self._heap = []
            if len(self._tree):
                root = self._tree._root
                heapq.heappush(
                    self._heap,
                    (root.bbox.mindist(self._point), 0, "", next(self._counter), root),
                )
        while self._heap:
            distance, kind, _, _, payload = heapq.heappop(self._heap)
            if kind == 1:
                return (payload, distance)
            node: _Node = payload
            self._tree.stats.record_nodes()
            if node.is_leaf:
                distances = euclidean_distances(node.matrix, self._point)
                self._tree.stats.record_distances(len(node.ids))
                for object_id, d in zip(node.ids, distances):
                    heapq.heappush(
                        self._heap,
                        (float(d), 1, str(object_id), next(self._counter), object_id),
                    )
            else:
                for box, child in node.entries:
                    heapq.heappush(
                        self._heap,
                        (box.mindist(self._point), 0, "", next(self._counter), child),
                    )
        return None


class RTree(VectorIndex):
    """Guttman R-tree over points, with STR bulk load and best-first k-NN."""

    def __init__(
        self, dimension: int, *, max_entries: int = 16, min_entries: Optional[int] = None
    ) -> None:
        super().__init__(dimension)
        if max_entries < 4:
            raise IndexError_(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max(2, max_entries // 3)
        )
        if not 2 <= self.min_entries <= self.max_entries // 2:
            raise IndexError_(
                f"min_entries must lie in [2, {self.max_entries // 2}], "
                f"got {self.min_entries}"
            )
        self._root = _Node(is_leaf=True)
        self._root.matrix = np.empty((0, dimension))
        self._count = 0
        #: bulk-loaded vectors: one shared matrix + id -> row map
        self._bulk_matrix: Optional[np.ndarray] = None
        self._bulk_positions: Dict[object, int] = {}
        #: incrementally inserted vectors, by id
        self._inserted: Dict[object, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Sequence[Tuple[object, Sequence[float]]],
        dimension: int,
        *,
        max_entries: int = 16,
    ) -> "RTree":
        """Sort-Tile-Recursive bulk load: packed leaves, short tree."""
        if not items:
            return cls(dimension, max_entries=max_entries)
        ids = [object_id for object_id, _ in items]
        matrix = np.asarray([vector for _, vector in items], dtype=float)
        return cls.bulk_load_arrays(
            ids, matrix, dimension=dimension, max_entries=max_entries
        )

    @classmethod
    def bulk_load_arrays(
        cls,
        object_ids,
        vectors,
        *,
        dimension: Optional[int] = None,
        max_entries: int = 16,
    ) -> "RTree":
        """Vectorized STR bulk load from one ``[n, d]`` matrix.

        The tiling recursion argsorts index arrays instead of sorting
        Python entry tuples, and leaves adopt contiguous row blocks —
        no per-entry objects exist below the inner levels."""
        matrix = np.asarray(vectors, dtype=float)
        if matrix.ndim != 2:
            raise IndexError_(f"expected an [n, d] matrix, got shape {matrix.shape}")
        if dimension is not None and matrix.shape[1] != dimension:
            raise IndexError_(
                f"expected {dimension}-vectors, got {matrix.shape[1]}"
            )
        ids = list(object_ids)
        if len(ids) != len(matrix):
            raise IndexError_(f"{len(ids)} ids for {len(matrix)} vectors")
        tree = cls(matrix.shape[1], max_entries=max_entries)
        size = len(ids)
        if size == 0:
            return tree
        groups = tree._str_tile(np.arange(size), matrix, 0)
        nodes: List[_Node] = []
        for rows in groups:
            leaf = _Node(is_leaf=True)
            leaf.ids = [ids[row] for row in rows]
            leaf.matrix = np.ascontiguousarray(matrix[rows])
            leaf.recompute_bbox()
            nodes.append(leaf)
        while len(nodes) > 1:
            lowers = np.stack([node.bbox.lower for node in nodes])
            uppers = np.stack([node.bbox.upper for node in nodes])
            centers = (lowers + uppers) / 2.0
            groups = tree._str_tile(np.arange(len(nodes)), centers, 0)
            parents: List[_Node] = []
            for rows in groups:
                parent = _Node(is_leaf=False)
                parent.entries = [(nodes[row].bbox, nodes[row]) for row in rows]
                parent.recompute_bbox()
                parents.append(parent)
            nodes = parents
        tree._root = nodes[0]
        tree._count = size
        tree._bulk_matrix = matrix
        tree._bulk_positions = {object_id: row for row, object_id in enumerate(ids)}
        return tree

    def _str_tile(
        self, index: np.ndarray, centers: np.ndarray, axis: int
    ) -> List[np.ndarray]:
        """Recursive sort-tile slabs over an index array (argsort-based)."""
        capacity = self.max_entries
        if axis >= self.dimension or len(index) <= capacity:
            return [
                index[start : start + capacity]
                for start in range(0, len(index), capacity)
            ]
        order = np.argsort(centers[index, axis], kind="stable")
        index = index[order]
        leaves_needed = math.ceil(len(index) / capacity)
        remaining_axes = self.dimension - axis
        slabs = math.ceil(leaves_needed ** (1.0 / remaining_axes))
        slab_size = math.ceil(len(index) / slabs)
        groups: List[np.ndarray] = []
        for start in range(0, len(index), slab_size):
            groups.extend(
                self._str_tile(index[start : start + slab_size], centers, axis + 1)
            )
        return groups

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, object_id: object, vector) -> None:
        point = self._check_vector(vector)
        self._inserted[object_id] = point
        split = self._insert_point(self._root, object_id, point)
        if split is not None:
            old_root = self._root
            self._root = _Node(is_leaf=False)
            self._root.entries = [(old_root.bbox, old_root), (split.bbox, split)]
            self._root.recompute_bbox()
        self._count += 1

    def _insert_point(
        self, node: _Node, object_id: object, point: np.ndarray
    ) -> Optional[_Node]:
        """Insert into the subtree; return the new sibling on a split."""
        if node.is_leaf:
            node.ids.append(object_id)
            node.matrix = (
                point[None, :].copy()
                if node.matrix is None or not len(node.matrix)
                else np.vstack([node.matrix, point])
            )
        else:
            point_box = _BBox.of_point(point)
            best_index = min(
                range(len(node.entries)),
                key=lambda i: (
                    node.entries[i][0].enlargement(point_box),
                    node.entries[i][0].volume(),
                ),
            )
            child: _Node = node.entries[best_index][1]
            split = self._insert_point(child, object_id, point)
            node.entries[best_index] = (child.bbox, child)
            if split is not None:
                node.entries.append((split.bbox, split))
        if node.size() > self.max_entries:
            return self._split_node(node)
        node.recompute_bbox()
        return None

    def _quadratic_partition(
        self, boxes: List[_BBox]
    ) -> Tuple[List[int], List[int]]:
        """Guttman's quadratic split over indices into ``boxes``."""
        count = len(boxes)
        seed_a, seed_b = max(
            itertools.combinations(range(count), 2),
            key=lambda pair: boxes[pair[0]].enlarged(boxes[pair[1]]).volume()
            - boxes[pair[0]].volume()
            - boxes[pair[1]].volume(),
        )
        group_a = [seed_a]
        group_b = [seed_b]
        box_a = boxes[seed_a]
        box_b = boxes[seed_b]
        remaining = [i for i in range(count) if i not in (seed_a, seed_b)]
        while remaining:
            # Honor minimum fill if one group is running out of slack.
            slack = len(remaining)
            if len(group_a) + slack == self.min_entries:
                group_a.extend(remaining)
                break
            if len(group_b) + slack == self.min_entries:
                group_b.extend(remaining)
                break
            # Assign the entry with the strongest preference first.
            def preference(i: int) -> float:
                return abs(
                    box_a.enlargement(boxes[i]) - box_b.enlargement(boxes[i])
                )

            chosen = max(remaining, key=preference)
            remaining.remove(chosen)
            if box_a.enlargement(boxes[chosen]) <= box_b.enlargement(boxes[chosen]):
                group_a.append(chosen)
                box_a = box_a.enlarged(boxes[chosen])
            else:
                group_b.append(chosen)
                box_b = box_b.enlarged(boxes[chosen])
        return group_a, group_b

    def _split_node(self, node: _Node) -> _Node:
        """Quadratic split; mutates ``node``, returns the new sibling."""
        if node.is_leaf:
            matrix = node.matrix
            boxes = [_BBox(matrix[i], matrix[i]) for i in range(len(node.ids))]
            group_a, group_b = self._quadratic_partition(boxes)
            sibling = _Node(is_leaf=True)
            sibling.ids = [node.ids[i] for i in group_b]
            sibling.matrix = np.ascontiguousarray(matrix[np.asarray(group_b)])
            node.ids = [node.ids[i] for i in group_a]
            node.matrix = np.ascontiguousarray(matrix[np.asarray(group_a)])
        else:
            boxes = [entry[0] for entry in node.entries]
            group_a, group_b = self._quadratic_partition(boxes)
            sibling = _Node(is_leaf=False)
            sibling.entries = [node.entries[i] for i in group_b]
            node.entries = [node.entries[i] for i in group_a]
        node.recompute_bbox()
        sibling.recompute_bbox()
        return sibling

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, lower, upper) -> List[object]:
        lo = self._check_vector(lower)
        hi = self._check_vector(upper)
        results: List[object] = []
        if self._count == 0:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.record_nodes()
            if node.is_leaf:
                self.stats.record_distances(len(node.ids))
                inside = np.all(
                    (node.matrix >= lo) & (node.matrix <= hi), axis=1
                )
                results.extend(
                    node.ids[row] for row in np.nonzero(inside)[0]
                )
            else:
                for box, child in node.entries:
                    if box.intersects_box(lo, hi):
                        stack.append(child)
        return results

    def knn(self, target, k: int) -> List[Neighbor]:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        return self.knn_stream(target).next_batch(k)

    def knn_stream(self, target) -> KnnStream:
        return _RTreeStream(self, self._check_vector(target))

    def vector_of(self, object_id: object) -> np.ndarray:
        vector = self._inserted.get(object_id)
        if vector is not None:
            return vector
        row = self._bulk_positions.get(object_id)
        if row is None:
            raise UnknownObjectError(f"unknown object: {object_id!r}")
        return np.asarray(self._bulk_matrix[row], dtype=float)

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    def height(self) -> int:
        """Tree height (1 for a single leaf)."""
        node = self._root
        levels = 1
        while not node.is_leaf:
            node = node.entries[0][1]
            levels += 1
        return levels

    def check_invariants(self) -> None:
        """Validate bounding-box containment and fill factors (tests)."""

        def visit(node: _Node, is_root: bool) -> _BBox:
            if not is_root and not node.is_leaf:
                if not self.min_entries <= len(node.entries) <= self.max_entries:
                    raise IndexError_(
                        f"node fill {len(node.entries)} violates "
                        f"[{self.min_entries}, {self.max_entries}]"
                    )
            if node.is_leaf:
                return _BBox(node.matrix.min(axis=0), node.matrix.max(axis=0))
            boxes = []
            for entry in node.entries:
                child_box = visit(entry[1], False)
                stored: _BBox = entry[0]
                if not (
                    np.all(stored.lower <= child_box.lower + 1e-9)
                    and np.all(stored.upper >= child_box.upper - 1e-9)
                ):
                    raise IndexError_("stored child bbox does not contain child")
                boxes.append(child_box)
            lower = np.minimum.reduce([b.lower for b in boxes])
            upper = np.maximum.reduce([b.upper for b in boxes])
            return _BBox(lower, upper)

        if self._count:
            visit(self._root, True)
