"""Uniform k-NN driver over any index, with work accounting (section 2.1).

Experiments compare several indexes on identical workloads; this module
provides the shared harness: build each index over the same labeled
vectors, run the same queries, and report per-index work counters.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import IndexError_
from repro.index.base import LinearScanIndex, Neighbor, VectorIndex
from repro.index.gridfile import GridFile
from repro.index.quadtree import LinearQuadtree
from repro.index.rtree import RTree
from repro.index.vafile import VAFile

logger = logging.getLogger(__name__)


@dataclass
class KnnRun:
    """Aggregated work of one index over a batch of k-NN queries."""

    index_name: str
    node_accesses: int
    distance_evaluations: int
    results: List[List[Neighbor]]


def build_default_indexes(
    items: Sequence[Tuple[object, Sequence[float]]],
    dimension: int,
    *,
    grid_cells: int = 4,
    quadtree_depth: int = 3,
) -> Dict[str, VectorIndex]:
    """All four index types over the same data (grid/quadtree included
    only when their directories stay tractable at this dimension)."""
    indexes: Dict[str, VectorIndex] = {}
    scan = LinearScanIndex(dimension)
    for object_id, vector in items:
        scan.insert(object_id, vector)
    indexes["linear-scan"] = scan
    indexes["rtree"] = RTree.bulk_load(items, dimension)
    va = VAFile(dimension, bits=6)
    for object_id, vector in items:
        va.insert(object_id, vector)
    indexes["vafile"] = va
    try:
        grid = GridFile(dimension, cells_per_dim=grid_cells)
        for object_id, vector in items:
            grid.insert(object_id, vector)
        indexes["gridfile"] = grid
    except IndexError_ as error:
        # Directory too large: the curse itself.  Anything else is a bug
        # and must propagate.
        logger.info("skipping gridfile at dimension %d: %s", dimension, error)
    try:
        quadtree = LinearQuadtree(dimension, depth=quadtree_depth)
        for object_id, vector in items:
            quadtree.insert(object_id, vector)
        indexes["quadtree"] = quadtree
    except IndexError_ as error:
        logger.info("skipping quadtree at dimension %d: %s", dimension, error)
    return indexes


def run_knn_batch(
    index: VectorIndex, name: str, queries: Sequence[Sequence[float]], k: int
) -> KnnRun:
    """Run a batch of k-NN queries and collect the work counters."""
    index.stats.reset()
    results = [index.knn(q, k) for q in queries]
    return KnnRun(
        index_name=name,
        node_accesses=index.stats.node_accesses,
        distance_evaluations=index.stats.distance_evaluations,
        results=results,
    )


def verify_against_scan(
    run: KnnRun, reference: KnnRun, tol: float = 1e-9
) -> bool:
    """True when a run's distance multisets match the scan's on every query."""
    for mine, theirs in zip(run.results, reference.results):
        my_distances = sorted(d for _, d in mine)
        ref_distances = sorted(d for _, d in theirs)
        if len(my_distances) != len(ref_distances):
            return False
        if any(abs(a - b) > tol for a, b in zip(my_distances, ref_distances)):
            return False
    return True
