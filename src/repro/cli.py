"""Command-line interface: ``python -m repro <command>``.

The closest thing a library gets to the paper's "user interface"
concern (section 6): an SQL shell over a demo database, a guided demo,
and the experiment reproduction suite.

Commands
--------
``demo``
    A compact tour: build the CD store, run the Beatles query, show the
    plan and the costs.
``sql [--database {cds,images}] [--size N] [QUERY]``
    Execute one SQL statement (or start an interactive shell when no
    query is given) against a generated demo database.
``experiments [--quick]``
    Regenerate the E1–E18 tables (EXPERIMENTS.md's numbers).
``serve-demo``
    Run a multi-tenant :class:`~repro.service.QueryService` workload
    over the CD store and print the admission/latency summary — the
    serving-layer tour (deadlines, quotas, shedding).

``demo`` and ``sql`` accept ``--fault-profile`` (inject subsystem
failures: a preset like ``flaky`` or ``key=value`` pairs, see
:mod:`repro.middleware.faults`) and ``--retry-policy`` (retry/breaker
settings, see :mod:`repro.middleware.resilience`).  Giving a fault
profile turns the default resilience policy on, so the demo survives
its own chaos; add ``--retry-policy`` to tune it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.query import Atomic
from repro.errors import ReproError
from repro.index.source import INDEX_KINDS
from repro.middleware.engine import MiddlewareEngine
from repro.sql.compiler import execute as execute_sql


def _build_database(
    kind: str, size: int, knn_index: Optional[str] = None
) -> MiddlewareEngine:
    if kind == "cds":
        if knn_index is not None:
            raise ReproError(
                "--index needs the feature-vector corpus; use it with "
                "'--database images'"
            )
        from repro.workloads.cd_store import build_store, generate_catalog

        return build_store(generate_catalog(size, seed=0))
    if kind == "images":
        from repro.workloads.image_corpus import build_image_database

        return build_image_database(size, seed=0, knn_index=knn_index)
    raise ReproError(f"unknown demo database {kind!r}; use 'cds' or 'images'")


def _apply_observability(engine: MiddlewareEngine, args: argparse.Namespace):
    """Install a session tracer when --explain / --trace-out asked for one."""
    if not getattr(args, "explain", False) and not getattr(args, "trace_out", None):
        return None
    from repro.observability import MetricsRegistry, QueryTracer

    return engine.configure_observability(QueryTracer(metrics=MetricsRegistry()))


def _finish_observability(tracer, args: argparse.Namespace) -> None:
    """Print the EXPLAIN view and/or write the trace file after a run."""
    if tracer is None:
        return
    from repro.observability import render_trace_explain, validate_trace

    if getattr(args, "explain", False):
        print(render_trace_explain(tracer))
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        validate_trace(tracer.as_dict())
        with open(trace_out, "w", encoding="utf-8") as handle:
            handle.write(tracer.to_json())
        print(f"trace written: {trace_out} ({len(tracer.events)} events)")


def _apply_parallelism(engine: MiddlewareEngine, args: argparse.Namespace) -> None:
    """Wire --max-workers into the engine, if given."""
    max_workers = getattr(args, "max_workers", None)
    if max_workers is not None:
        engine.configure_parallelism(max_workers)


def _apply_kernel(engine: MiddlewareEngine, args: argparse.Namespace) -> None:
    """Wire --kernel into the engine, if given."""
    kernel = getattr(args, "kernel", None)
    if kernel is not None:
        engine.configure_kernel(kernel)


def _apply_storage(engine: MiddlewareEngine, args: argparse.Namespace) -> None:
    """Wire --backend / --shards / --storage-dir into the engine."""
    backend = getattr(args, "backend", None)
    shards = getattr(args, "shards", None)
    directory = getattr(args, "storage_dir", None)
    if backend is None and (shards is None or shards <= 1):
        return
    engine.configure_storage(
        backend, shards=shards if shards else 1, directory=directory
    )


def _apply_cache(engine: MiddlewareEngine, args: argparse.Namespace) -> None:
    """Wire --cache into the engine, if given."""
    if getattr(args, "cache", False):
        engine.configure_cache()


def _apply_theta(engine: MiddlewareEngine, args: argparse.Namespace) -> None:
    """Wire --theta into the engine, if given."""
    theta = getattr(args, "theta", None)
    if theta is not None:
        engine.configure_approximation(theta)


def _apply_resilience(engine: MiddlewareEngine, args: argparse.Namespace) -> None:
    """Wire --fault-profile / --retry-policy into the engine, if given."""
    fault_spec = getattr(args, "fault_profile", None)
    retry_spec = getattr(args, "retry_policy", None)
    if not fault_spec and not retry_spec:
        return
    from repro.middleware.faults import FaultProfile
    from repro.middleware.resilience import ResiliencePolicy

    profile = FaultProfile.parse(fault_spec) if fault_spec else None
    if retry_spec:
        policy = ResiliencePolicy.parse(retry_spec)
    else:
        # Injecting faults without any resilience would just crash the
        # demo; default the policy on so degradation can be watched.
        policy = ResiliencePolicy() if profile is not None else None
    engine.configure_resilience(policy, fault_profile=profile)


def _print_result(result) -> None:
    print(f"algorithm: {result.algorithm}   "
          f"cost: {result.database_access_cost} accesses "
          f"(sorted {result.cost.sorted_access_cost}, "
          f"random {result.cost.random_access_cost})")
    degraded = getattr(result, "degraded", None)
    if degraded is not None:
        failed = "; ".join(
            f"{name}: {reason}"
            for name, reason in sorted(degraded.failed_sources.items())
        )
        status = "answers still exact" if degraded.complete else "partial answers"
        print(f"degraded: fell back to {degraded.fallback} ({status})")
        print(f"  failures: {failed}")
    certificate = getattr(result, "approximation", None)
    if certificate is not None:
        kind = "anytime" if certificate.anytime else "theta-stop"
        achieved = (
            "unbounded" if certificate.achieved == float("inf")
            else f"{certificate.achieved:.4f}"
        )
        print(f"approximation: {kind} certificate — requested "
              f"theta={certificate.theta:g}, certified ratio {achieved}")
    cache_info = result.extras.get("cache")
    if cache_info:
        line = (f"cache: {cache_info['tier']} "
                f"(k'={cache_info['k_cached']}")
        if cache_info["tier"] == "warm":
            line += (f", marginal sorted {cache_info['marginal_sorted']} "
                     f"random {cache_info['marginal_random']}")
        else:
            line += f", tau={cache_info['tau']:.4f}"
        print(line + ")")
    resilience = result.extras.get("resilience")
    if resilience:
        for name, entry in sorted(resilience.items()):
            parts = [f"retries={entry.get('retries', 0)}"]
            if "sorted_circuit" in entry:
                parts.append(
                    f"circuits sorted={entry['sorted_circuit']} "
                    f"random={entry['random_circuit']}"
                )
            injected = entry.get("injected")
            if injected:
                shaped = ", ".join(f"{kind}={n}" for kind, n in injected.items() if n)
                parts.append(f"injected [{shaped or 'none'}]")
            print(f"  resilience {name}: " + "  ".join(parts))
    rows = result.extras.get("rows")
    if rows:
        for row in rows:
            attributes = ", ".join(
                f"{name}={value!r}"
                for name, value in row.items()
                if name not in ("object_id", "grade")
            )
            print(f"  {row['object_id']}: {row['grade']:.4f}  {attributes}")
        return
    for item in result.answers:
        print(f"  {item.object_id}: {item.grade:.4f}")


def cmd_demo(args: argparse.Namespace) -> int:
    """The guided tour: the Beatles query with plan and costs."""
    engine = _build_database("cds", 2000)
    try:
        _apply_resilience(engine, args)
        _apply_storage(engine, args)
        _apply_parallelism(engine, args)
        _apply_kernel(engine, args)
        _apply_cache(engine, args)
        _apply_theta(engine, args)
        tracer = _apply_observability(engine, args)
        query = Atomic("Artist", "Beatles") & Atomic("AlbumColor", "red")
        print(f"query: {query}")
        plan = engine.explain(query, args.k)
        print(f"plan:  {plan.strategy.value} — {plan.reason} "
              f"(estimated cost {plan.estimated_cost:.0f})")
        _print_result(engine.top_k(query, args.k))
        _finish_observability(tracer, args)
        print("\ntry the SQL shell:  python -m repro sql")
        return 0
    finally:
        engine.close()


def cmd_sql(args: argparse.Namespace) -> int:
    """One-shot statement or interactive shell over a demo database."""
    engine = _build_database(
        args.database, args.size, knn_index=getattr(args, "index", None)
    )
    try:
        _apply_resilience(engine, args)
        _apply_storage(engine, args)
        _apply_parallelism(engine, args)
        _apply_kernel(engine, args)
        _apply_cache(engine, args)
        _apply_theta(engine, args)
        tracer = _apply_observability(engine, args)
        if args.query:
            code = _run_statement(engine, " ".join(args.query), args.k)
            _finish_observability(tracer, args)
            return code
        print(f"repro SQL shell over the {args.database!r} demo database "
              f"({args.size} objects).")
        print("example: SELECT * FROM albums WHERE Artist = 'Beatles' "
              "AND AlbumColor = 'red' STOP AFTER 5")
        print("empty line or Ctrl-D exits.")
        while True:
            try:
                line = input("fuzzy> ").strip()
            except EOFError:
                print()
                _finish_observability(tracer, args)
                return 0
            if not line:
                _finish_observability(tracer, args)
                return 0
            _run_statement(engine, line, args.k)
    finally:
        engine.close()


def cmd_serve(args: argparse.Namespace) -> int:
    """Drive a QueryService workload and print the serving summary."""
    from repro.middleware.resilience import MonotonicClock
    from repro.service import (
        AdmissionError,
        QueryService,
        ServiceConfig,
        TenantPolicy,
    )

    engine = _build_database("cds", args.size)
    try:
        _apply_resilience(engine, args)
        _apply_storage(engine, args)
        _apply_kernel(engine, args)
        _apply_cache(engine, args)
        query = Atomic("Artist", "Beatles") & Atomic("AlbumColor", "red")
        config = ServiceConfig(
            workers=args.workers,
            queue_depth=args.queue_depth,
            default_deadline=args.deadline,
            access_workers=args.max_workers or 1,
            default_theta=getattr(args, "theta", None) or 1.0,
            tenants={
                "bronze": TenantPolicy(rate=50.0, burst=8.0, max_inflight=8),
            },
        )
        print(f"serving {args.requests} requests across 2 tenants "
              f"({config.workers} workers, queue depth "
              f"{config.queue_depth}, deadline {args.deadline}s)")
        with QueryService(engine, config, clock=MonotonicClock()) as service:
            tickets = []
            for index in range(args.requests):
                tenant = "gold" if index % 3 == 0 else "bronze"
                priority = 1 if tenant == "gold" else 0
                try:
                    tickets.append(
                        service.submit(query, args.k, tenant=tenant,
                                       priority=priority)
                    )
                except AdmissionError as error:
                    print(f"  rejected ({error.reason}): request {index} "
                          f"from {tenant}")
            for ticket in tickets:
                try:
                    ticket.result(timeout=30)
                except AdmissionError:
                    pass
            stats = service.stats()
        print("summary: " + "  ".join(
            f"{name}={value}" for name, value in stats.items()))
        latency = service.metrics.histogram(
            "service.latency_seconds", tenant="gold").as_dict()
        if latency["count"]:
            print(f"gold latency: mean "
                  f"{latency['sum'] / latency['count'] * 1e3:.2f}ms over "
                  f"{latency['count']} queries")
        return 0
    finally:
        engine.close()


def _run_statement(engine: MiddlewareEngine, text: str, default_k: int) -> int:
    try:
        result = execute_sql(text, engine, default_k=default_k)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _print_result(result)
    return 0


def _experiments_inline(quick: bool) -> int:
    """A fast subset of the experiment suite (the full sweep lives in
    examples/reproduce_paper.py)."""
    from repro.harness import (
        e1_cost_vs_n,
        e4_disjunction,
        e9_adversary,
        e10_uniqueness,
    )
    from repro.harness.reporting import format_table

    suite = (
        ("E1", lambda: e1_cost_vs_n(ns=(1000, 2000, 4000), seeds=(0,))),
        ("E4", lambda: e4_disjunction(ns=(1000, 4000), ms=(2,))),
        ("E9", lambda: e9_adversary(ns=(1000, 2000, 4000))),
        ("E10", lambda: e10_uniqueness()),
    )
    for title, runner in suite:
        result = runner()
        print(f"\n== {title} ==")
        print(format_table(result.headers, result.rows))
        for note in result.notes:
            print(f"  * {note}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fuzzy top-k queries for multimedia middleware "
        "(Fagin, PODS 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_resilience_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--fault-profile", metavar="SPEC", default=None,
            help="inject subsystem faults: preset (none, flaky, slow, "
            "no-random, dying) and/or key=value pairs, e.g. "
            "'flaky,seed=7' or 'transient=0.3,kill-after=500'",
        )
        command.add_argument(
            "--retry-policy", metavar="SPEC", default=None,
            help="resilience settings as key=value pairs, e.g. "
            "'attempts=6,base=0.01,threshold=3,recovery=10'",
        )
        command.add_argument(
            "--explain", action="store_true",
            help="after executing, print the EXPLAIN view derived from "
            "the access trace (plan, per-source and per-phase accesses)",
        )
        command.add_argument(
            "--trace-out", metavar="FILE", default=None,
            help="write the query's access timeline as deterministic "
            "JSON to FILE (validated against the trace schema)",
        )
        command.add_argument(
            "--max-workers", metavar="N", type=int, default=None,
            help="fan each algorithm round's subsystem accesses across "
            "N threads (1 = serial; answers, costs, and traces are "
            "identical either way)",
        )
        command.add_argument(
            "--kernel", choices=("auto", "vector", "scalar"), default=None,
            help="scoring kernel: 'vector' forces the columnar numpy "
            "fast path, 'scalar' the classic per-object loops, 'auto' "
            "picks vector whenever it is provably byte-identical "
            "(default: auto)",
        )
        command.add_argument(
            "--backend", choices=("list", "array", "memmap"), default=None,
            help="physical storage for every ranked list: in-RAM "
            "'list'/'array' or out-of-core 'memmap' columns; answers, "
            "costs, and traces are identical across backends",
        )
        command.add_argument(
            "--shards", metavar="K", type=int, default=None,
            help="hash-partition every ranked list into K shards of the "
            "chosen backend behind an exact merged cursor (default: "
            "unsharded; results are identical for any K)",
        )
        command.add_argument(
            "--storage-dir", metavar="DIR", default=None,
            help="directory for on-disk backends (default: a temporary "
            "directory owned by the session)",
        )
        command.add_argument(
            "--cache", action="store_true",
            help="enable the semantic result cache: repeated or "
            "contained (smaller-k) queries are served from certified "
            "cached answers with zero repository accesses, and "
            "deeper-k NRA queries warm-start from the cached run",
        )
        command.add_argument(
            "--theta", metavar="T", type=float, default=None,
            help="Fagin-Lotem-Naor approximation factor (>= 1.0): TA "
            "and NRA may stop early once every answer is provably "
            "within a factor T of optimal, and the result carries a "
            "certified achieved ratio (default: 1.0, exact; with "
            "--theta 1.0 answers, costs, and traces are byte-identical "
            "to omitting the flag)",
        )

    demo = sub.add_parser("demo", help="guided tour of the Beatles query")
    demo.add_argument("-k", type=int, default=5, help="answers to return")
    add_resilience_options(demo)
    demo.set_defaults(func=cmd_demo)

    sql = sub.add_parser("sql", help="SQL shell / one-shot statement")
    sql.add_argument("query", nargs="*", help="statement (omit for a shell)")
    sql.add_argument(
        "--database", choices=("cds", "images"), default="cds",
        help="demo database to query",
    )
    sql.add_argument("--size", type=int, default=1000, help="database size")
    sql.add_argument(
        "--index", choices=INDEX_KINDS, default=None,
        help="register a kNN subsystem over the images feature corpus "
        "('Near' atoms stream neighbors from the chosen index: linear "
        "scan, VA-file, or R-tree; answers are byte-identical across "
        "kinds, only the physical work differs)",
    )
    sql.add_argument("-k", type=int, default=10, help="default STOP AFTER")
    add_resilience_options(sql)
    sql.set_defaults(func=cmd_sql)

    experiments = sub.add_parser(
        "experiments", help="regenerate the experiment tables"
    )
    experiments.add_argument("--quick", action="store_true")
    experiments.set_defaults(func=lambda args: _experiments_inline(args.quick))

    serve = sub.add_parser(
        "serve-demo",
        help="run a multi-tenant QueryService workload over the CD store",
    )
    serve.add_argument("-k", type=int, default=5, help="answers per query")
    serve.add_argument("--size", type=int, default=1000, help="database size")
    serve.add_argument(
        "--requests", type=int, default=60, help="requests to submit"
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="query worker threads"
    )
    serve.add_argument(
        "--queue-depth", type=int, default=32, help="admission queue bound"
    )
    serve.add_argument(
        "--deadline", type=float, default=5.0,
        help="end-to-end deadline per request in seconds",
    )
    add_resilience_options(serve)
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
