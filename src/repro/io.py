"""Persistence: JSON round trips for the library's data artifacts.

Multimedia catalogs are precisely the "updates are done rarely, if at
all" data of section 2.1 — which makes building them once and loading
them from disk the normal workflow.  This module serializes the
artifacts a deployment stores:

* graded sets (precomputed answer lists for a :class:`ListSubsystem`);
* grade tables (the workloads' object -> grade-vector form);
* CD-store catalogs (:class:`~repro.workloads.cd_store.Album` rows);
* catalog statistics (:class:`~repro.middleware.statistics.GradeHistogram`).

Everything is plain JSON: stable, diffable, and loadable without this
library.  Floats round-trip exactly (json preserves doubles).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.core.graded import GradedSet
from repro.errors import ReproError
from repro.middleware.statistics import GradeHistogram
from repro.workloads.cd_store import Album

PathLike = Union[str, Path]

#: Format tag written into every file, checked on load.
_FORMATS = {
    "graded-set": 1,
    "grade-table": 1,
    "album-catalog": 1,
    "grade-histogram": 1,
}


def _dump(path: PathLike, kind: str, payload) -> None:
    document = {"format": kind, "version": _FORMATS[kind], "data": payload}
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def _load(path: PathLike, kind: str):
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot read {kind} from {path}: {error}") from error
    if not isinstance(document, dict) or document.get("format") != kind:
        raise ReproError(
            f"{path} does not hold a {kind!r} "
            f"(found {document.get('format') if isinstance(document, dict) else type(document).__name__!r})"
        )
    if document.get("version") != _FORMATS[kind]:
        raise ReproError(
            f"{path}: unsupported {kind} version {document.get('version')}"
        )
    return document["data"]


# ----------------------------------------------------------------------
# Graded sets
# ----------------------------------------------------------------------
def save_graded_set(graded: GradedSet, path: PathLike) -> None:
    """Write a graded set; object ids are stringified (JSON keys)."""
    _dump(path, "graded-set", {str(obj): g for obj, g in graded.as_dict().items()})


def load_graded_set(path: PathLike) -> GradedSet:
    return GradedSet(_load(path, "graded-set"))


# ----------------------------------------------------------------------
# Grade tables (workload form: object -> (g_1, ..., g_m))
# ----------------------------------------------------------------------
def save_grade_table(table: Dict[str, Sequence[float]], path: PathLike) -> None:
    _dump(path, "grade-table", {str(k): list(v) for k, v in table.items()})


def load_grade_table(path: PathLike) -> Dict[str, tuple]:
    return {k: tuple(v) for k, v in _load(path, "grade-table").items()}


# ----------------------------------------------------------------------
# CD-store catalogs
# ----------------------------------------------------------------------
def save_catalog(catalog: Sequence[Album], path: PathLike) -> None:
    _dump(
        path,
        "album-catalog",
        [
            {
                "album_id": album.album_id,
                "artist": album.artist,
                "title": album.title,
                "year": album.year,
                "price": album.price,
                "cover_color": list(album.cover_color),
            }
            for album in catalog
        ],
    )


def load_catalog(path: PathLike) -> List[Album]:
    rows = _load(path, "album-catalog")
    try:
        return [
            Album(
                album_id=row["album_id"],
                artist=row["artist"],
                title=row["title"],
                year=int(row["year"]),
                price=float(row["price"]),
                cover_color=tuple(row["cover_color"]),
            )
            for row in rows
        ]
    except (KeyError, TypeError, ValueError) as error:
        raise ReproError(f"malformed album catalog in {path}: {error}") from error


# ----------------------------------------------------------------------
# Catalog statistics
# ----------------------------------------------------------------------
def save_histogram(histogram: GradeHistogram, path: PathLike) -> None:
    _dump(path, "grade-histogram", [int(c) for c in histogram.counts])


def load_histogram(path: PathLike) -> GradeHistogram:
    return GradeHistogram(_load(path, "grade-histogram"))
