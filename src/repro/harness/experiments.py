"""The paper's experiments E1–E19, as callable functions.

Each function stages one experiment from DESIGN.md's index, runs it, and
returns a structured result (records, fits, comparisons).  The benchmark
suite under ``benchmarks/`` calls these and prints the tables recorded in
EXPERIMENTS.md; keeping the logic here means the experiments are library
code — importable, testable, and reusable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.adversary import hard_instance
from repro.core.cost import RANDOM_EXPENSIVE, SORTED_EXPENSIVE, UNIFORM
from repro.core.disjunction import disjunction_top_k
from repro.core.fagin import fagin_top_k
from repro.core.filter_condition import filter_condition_top_k
from repro.core.naive import grade_everything, naive_top_k
from repro.core.query import Atomic
from repro.core.sources import sources_from_columns
from repro.core.threshold import nra_top_k, threshold_top_k
from repro.harness.fitting import PowerLawFit, fit_power_law, theorem_exponent
from repro.harness.runner import average_over_seeds
from repro.scoring import conorms, means, tnorms
from repro.scoring.weighted import WeightedScoring, weighted_score
from repro.workloads.graded_lists import independent, workload


@dataclass
class ExperimentResult:
    """Uniform container for one experiment's output."""

    experiment: str
    headers: Tuple[str, ...]
    rows: List[tuple]
    fits: Dict[str, PowerLawFit] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)


# ----------------------------------------------------------------------
# E1: A0 cost vs N (the square-root law, m = 2)
# ----------------------------------------------------------------------
def _fagin_cost(n: int, m: int, k: int, seed: int) -> Dict[str, float]:
    sources = sources_from_columns(independent(n, m, seed=seed))
    result = fagin_top_k(sources, tnorms.MIN, k)
    return {
        "fagin_cost": result.database_access_cost,
        "fagin_depth": result.sorted_depth,
    }


def _naive_cost(n: int, m: int, k: int, seed: int) -> Dict[str, float]:
    sources = sources_from_columns(independent(n, m, seed=seed))
    return {"naive_cost": naive_top_k(sources, tnorms.MIN, k).database_access_cost}


def e1_cost_vs_n(
    ns: Sequence[int] = (1000, 2000, 4000, 8000, 16000),
    k: int = 10,
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """E1: A0 vs naive cost over database size N (the sqrt law)."""
    rows = []
    fagin_costs, naive_costs = [], []
    for n in ns:
        fagin = average_over_seeds(_fagin_cost, seeds, n=n, m=2, k=k)
        naive = average_over_seeds(_naive_cost, seeds, n=n, m=2, k=k)
        fagin_costs.append(fagin["fagin_cost"])
        naive_costs.append(naive["naive_cost"])
        rows.append(
            (
                n,
                round(fagin["fagin_cost"], 1),
                int(naive["naive_cost"]),
                round(naive["naive_cost"] / fagin["fagin_cost"], 2),
            )
        )
    fits = {
        "fagin": fit_power_law(ns, fagin_costs),
        "naive": fit_power_law(ns, naive_costs),
    }
    return ExperimentResult(
        "E1",
        ("N", "A0 cost", "naive cost", "speedup"),
        rows,
        fits,
        notes=[
            f"A0 slope {fits['fagin'].slope:.3f} (theory 0.5)",
            f"naive slope {fits['naive'].slope:.3f} (theory 1.0)",
        ],
    )


# ----------------------------------------------------------------------
# E2: cost scaling exponent vs m
# ----------------------------------------------------------------------
def e2_cost_vs_m(
    ms: Sequence[int] = (2, 3, 4),
    ns: Sequence[int] = (1000, 2000, 4000, 8000),
    k: int = 10,
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """E2: measured N-exponent per arity m vs the (m-1)/m law."""
    rows = []
    fits = {}
    for m in ms:
        costs = [
            average_over_seeds(_fagin_cost, seeds, n=n, m=m, k=k)["fagin_cost"]
            for n in ns
        ]
        fit = fit_power_law(ns, costs)
        fits[f"m={m}"] = fit
        rows.append((m, round(fit.slope, 3), round(theorem_exponent(m), 3)))
    return ExperimentResult(
        "E2", ("m", "measured N-exponent", "(m-1)/m"), rows, fits
    )


# ----------------------------------------------------------------------
# E3: cost scaling vs k
# ----------------------------------------------------------------------
def e3_cost_vs_k(
    ks: Sequence[int] = (1, 4, 16, 64, 256),
    n: int = 8000,
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """E3: A0 cost over the answer count k (the k^(1/m) law)."""
    costs = [
        average_over_seeds(_fagin_cost, seeds, n=n, m=2, k=k)["fagin_cost"]
        for k in ks
    ]
    fit = fit_power_law(ks, costs)
    rows = [(k, round(c, 1)) for k, c in zip(ks, costs)]
    return ExperimentResult(
        "E3",
        ("k", "A0 cost"),
        rows,
        {"k": fit},
        notes=[f"k-exponent {fit.slope:.3f} (theory 1/m = 0.5)"],
    )


# ----------------------------------------------------------------------
# E4: the m*k disjunction algorithm is flat in N
# ----------------------------------------------------------------------
def e4_disjunction(
    ns: Sequence[int] = (1000, 4000, 16000, 64000),
    ms: Sequence[int] = (2, 3),
    k: int = 10,
) -> ExperimentResult:
    """E4: the max algorithm costs exactly m*k at every N."""
    rows = []
    for m in ms:
        for n in ns:
            sources = sources_from_columns(independent(n, m, seed=n + m))
            result = disjunction_top_k(sources, k)
            correct = result.answers.same_grade_multiset(
                grade_everything(sources, conorms.MAX).top(k)
            )
            rows.append((m, n, result.database_access_cost, m * k, correct))
    return ExperimentResult(
        "E4", ("m", "N", "measured cost", "m*k", "correct"), rows
    )


# ----------------------------------------------------------------------
# E5: A0 under the scoring-function catalog
# ----------------------------------------------------------------------
def e5_scoring_functions(
    n: int = 8000, k: int = 10, seed: int = 7
) -> ExperimentResult:
    """E5: A0 correctness and cost across the scoring catalog."""
    rules = (
        tnorms.MIN,
        tnorms.PRODUCT,
        tnorms.LUKASIEWICZ,
        means.MEAN,
        means.GEOMETRIC_MEAN,
        WeightedScoring(tnorms.MIN, (0.7, 0.3)),
    )
    table = independent(n, 2, seed=seed)
    rows = []
    for rule in rules:
        sources = sources_from_columns(table)
        result = fagin_top_k(sources, rule, k)
        oracle = grade_everything(sources, rule).top(k)
        rows.append(
            (
                rule.name,
                result.database_access_cost,
                result.answers.same_grade_multiset(oracle),
            )
        )
    return ExperimentResult("E5", ("scoring", "A0 cost", "correct"), rows)


# ----------------------------------------------------------------------
# E6: Boolean-conjunct-first on the CD store
# ----------------------------------------------------------------------
def e6_beatles(
    ns: Sequence[int] = (1000, 4000, 16000),
    selectivities: Sequence[float] = (0.001, 0.01, 0.1),
    k: int = 10,
) -> ExperimentResult:
    """E6: Boolean-conjunct-first cost over size and selectivity."""
    from repro.workloads.cd_store import build_store, generate_catalog

    rows = []
    for n in ns:
        for selectivity in selectivities:
            catalog = generate_catalog(n, seed=n, beatles_fraction=selectivity)
            engine = build_store(catalog)
            query = Atomic("Artist", "Beatles") & Atomic("AlbumColor", "red")
            result = engine.top_k(query, k)
            selected = sum(1 for a in catalog if a.artist == "Beatles")
            rows.append(
                (
                    n,
                    selectivity,
                    selected,
                    result.algorithm,
                    result.database_access_cost,
                    2 * n,
                )
            )
    return ExperimentResult(
        "E6",
        ("N", "selectivity", "|S|", "strategy", "cost", "naive 2N"),
        rows,
    )


# ----------------------------------------------------------------------
# E7: distance-bounding filter
# ----------------------------------------------------------------------
def e7_filter(
    ns: Sequence[int] = (250, 500, 1000, 2000),
    k: int = 10,
    seed: int = 5,
) -> ExperimentResult:
    """E7: Eq. 2 filter pruning rates with zero false dismissals."""
    import numpy as np

    from repro.multimedia.filter import DistanceBoundingFilter, linear_scan_knn
    from repro.multimedia.histogram import (
        Palette,
        QuadraticFormDistance,
        solid_color_histogram,
    )
    from repro.multimedia.similarity import laplacian_similarity
    from repro.workloads.image_corpus import corpus_histograms, mixed_corpus

    palette = Palette.rgb_cube(4)  # the paper's typical k = 64
    distance = QuadraticFormDistance(laplacian_similarity(palette))
    filt = DistanceBoundingFilter(palette, distance)
    target = solid_color_histogram((0.9, 0.1, 0.1), palette)
    rows = []
    for n in ns:
        histograms = corpus_histograms(
            mixed_corpus(n, seed=seed, themed_fraction=0.2), palette
        )
        result = filt.search(histograms, target, k)
        reference = linear_scan_knn(histograms, target, k, distance)
        no_false_dismissals = sorted(
            round(d, 9) for _, d in result.neighbors
        ) == sorted(round(d, 9) for _, d in reference)
        rows.append(
            (
                n,
                result.full_evaluations,
                result.pruned,
                round(result.pruning_rate, 3),
                no_false_dismissals,
            )
        )
    return ExperimentResult(
        "E7", ("N", "Eq.1 evals", "pruned", "pruning rate", "exact"), rows
    )


# ----------------------------------------------------------------------
# E8: weighted queries keep A0 correct and cheap
# ----------------------------------------------------------------------
def e8_weighted(
    n: int = 4000,
    k: int = 10,
    seed: int = 11,
    weightings: Sequence[Tuple[float, ...]] = (
        (0.5, 0.5),
        (2 / 3, 1 / 3),
        (0.9, 0.1),
        (0.5, 0.3, 0.2),
        (0.8, 0.15, 0.05),
    ),
) -> ExperimentResult:
    """E8: A0 under Fagin-Wimmers weightings (correct, same cost)."""
    rows = []
    for theta in weightings:
        m = len(theta)
        table = independent(n, m, seed=seed)
        rule = WeightedScoring(tnorms.MIN, theta)
        sources = sources_from_columns(table)
        result = fagin_top_k(sources, rule, k)
        oracle = grade_everything(sources, rule).top(k)
        baseline = fagin_top_k(
            sources_from_columns(table), tnorms.MIN, k
        ).database_access_cost
        rows.append(
            (
                "/".join(f"{w:.2f}" for w in theta),
                result.database_access_cost,
                baseline,
                result.answers.same_grade_multiset(oracle),
            )
        )
    # D1 spot check at uniform weights
    d1_holds = weighted_score(tnorms.MIN, (0.5, 0.5), (0.7, 0.4)) == min(0.7, 0.4)
    return ExperimentResult(
        "E8",
        ("weights", "A0 cost (weighted)", "A0 cost (min)", "correct"),
        rows,
        notes=[f"D1 (equal weights = unweighted): {d1_holds}"],
    )


# ----------------------------------------------------------------------
# E9: the adversarial linear lower bound
# ----------------------------------------------------------------------
def e9_adversary(
    ns: Sequence[int] = (1000, 2000, 4000, 8000, 16000), k: int = 1
) -> ExperimentResult:
    """E9: linear cost growth on the reversed-lists instance."""
    costs = []
    rows = []
    for n in ns:
        result = fagin_top_k(hard_instance(n), tnorms.MIN, k)
        costs.append(result.database_access_cost)
        rows.append((n, result.database_access_cost, result.sorted_depth))
    fit = fit_power_law(ns, costs)
    return ExperimentResult(
        "E9",
        ("N", "A0 cost", "sorted depth"),
        rows,
        {"adversary": fit},
        notes=[f"slope {fit.slope:.3f} (theory 1.0 — the lower bound is real)"],
    )


# ----------------------------------------------------------------------
# E10: Theorem 3.1 uniqueness of min/max
# ----------------------------------------------------------------------
def e10_uniqueness() -> ExperimentResult:
    """E10: only min/max preserve the positive-query equivalences."""
    from repro.scoring.properties import check_equivalence_preservation

    pairs = (
        ("min/max", tnorms.MIN, conorms.MAX),
        ("product/prob-sum", tnorms.PRODUCT, conorms.PROBABILISTIC_SUM),
        ("lukasiewicz/bounded-sum", tnorms.LUKASIEWICZ, conorms.BOUNDED_SUM),
        ("einstein/dual", tnorms.EINSTEIN, conorms.DualConorm(tnorms.EINSTEIN)),
        ("drastic/drastic", tnorms.DRASTIC, conorms.DRASTIC_CONORM),
        ("hamacher(0.5)/dual", tnorms.HamacherTNorm(0.5),
         conorms.DualConorm(tnorms.HamacherTNorm(0.5))),
    )
    rows = []
    for name, tnorm, conorm in pairs:
        report = check_equivalence_preservation(tnorm, conorm)
        rows.append(
            (name, bool(report), "" if report else report.detail[:60])
        )
    return ExperimentResult(
        "E10", ("pair", "preserves equivalence", "first violated identity"), rows
    )


# ----------------------------------------------------------------------
# E11: precomputed pairwise distances
# ----------------------------------------------------------------------
def e11_precompute(
    ns: Sequence[int] = (250, 500, 1000),
    bins_per_channel: int = 4,
    k: int = 10,
    seed: int = 3,
) -> ExperimentResult:
    """E11: build vs query Eq. 1 evaluation counts with the cache."""
    from repro.multimedia.histogram import Palette, QuadraticFormDistance
    from repro.multimedia.precompute import PairwiseDistanceCache
    from repro.multimedia.similarity import laplacian_similarity
    from repro.workloads.image_corpus import corpus_histograms, mixed_corpus

    palette = Palette.rgb_cube(bins_per_channel)
    distance = QuadraticFormDistance(laplacian_similarity(palette))
    rows = []
    for n in ns:
        histograms = corpus_histograms(mixed_corpus(n, seed=seed), palette)
        cache = PairwiseDistanceCache(histograms, distance)
        anchor = next(iter(histograms))
        cache.neighbors(anchor, k)
        # on-demand evaluation would run Eq. 1 once per object per query
        rows.append(
            (
                n,
                palette.k,
                cache.build_evaluations,
                cache.query_evaluations,
                n,  # per-query Eq. 1 evals without the cache
            )
        )
    return ExperimentResult(
        "E11",
        ("N", "k bins", "build evals", "query evals (cached)", "query evals (live)"),
        rows,
    )


# ----------------------------------------------------------------------
# E12: TA / NRA ablation over A0
# ----------------------------------------------------------------------
def e12_ta_ablation(
    ns: Sequence[int] = (1000, 4000, 16000),
    kinds: Sequence[str] = ("independent", "correlated", "anti-correlated"),
    k: int = 10,
    seed: int = 13,
) -> ExperimentResult:
    """E12: A0 vs TA vs NRA accesses and depths per workload."""
    rows = []
    for kind in kinds:
        for n in ns:
            fa = fagin_top_k(workload(kind, n, 2, seed), tnorms.MIN, k)
            ta = threshold_top_k(workload(kind, n, 2, seed), tnorms.MIN, k)
            nra = nra_top_k(workload(kind, n, 2, seed), tnorms.MIN, k)
            agree = fa.answers.same_grade_multiset(
                ta.answers
            ) and fa.answers.same_grade_multiset(nra.answers)
            rows.append(
                (
                    kind,
                    n,
                    fa.database_access_cost,
                    ta.database_access_cost,
                    nra.database_access_cost,
                    fa.sorted_depth,
                    ta.sorted_depth,
                    agree,
                )
            )
    return ExperimentResult(
        "E12",
        ("workload", "N", "A0", "TA", "NRA", "A0 depth", "TA depth", "agree"),
        rows,
    )


def e12_cost_model_ablation(
    n: int = 8000, k: int = 10, seed: int = 17
) -> ExperimentResult:
    """Robustness of the A0-vs-naive ranking under skewed charges.

    Also charges CA (the cost-ratio-aware hybrid) to show how an
    algorithm tuned to the measure exploits it without changing who
    beats the naive scan.
    """
    from repro.core.threshold import combined_top_k

    fa = fagin_top_k(workload("independent", n, 2, seed), tnorms.MIN, k)
    naive = naive_top_k(workload("independent", n, 2, seed), tnorms.MIN, k)
    ca = combined_top_k(
        workload("independent", n, 2, seed), tnorms.MIN, k, ratio=10
    )
    rows = []
    for model in (UNIFORM, SORTED_EXPENSIVE, RANDOM_EXPENSIVE):
        rows.append(
            (
                model.name,
                round(fa.cost.cost(model), 1),
                round(ca.cost.cost(model), 1),
                round(naive.cost.cost(model), 1),
                fa.cost.cost(model) < naive.cost.cost(model),
            )
        )
    return ExperimentResult(
        "E12b",
        ("cost model", "A0 charge", "CA charge", "naive charge", "A0 wins"),
        rows,
    )


# ----------------------------------------------------------------------
# E13: the dimensionality curse
# ----------------------------------------------------------------------
def e13_curse(
    dims: Sequence[int] = (2, 4, 8, 16, 32),
    n: int = 2000,
    k: int = 10,
    queries: int = 5,
    seed: int = 19,
) -> ExperimentResult:
    """E13: R-tree and VA-file vs linear scan across dimensions."""
    import numpy as np

    from repro.index.gridfile import GridFile
    from repro.index.knn import build_default_indexes, run_knn_batch, verify_against_scan

    rng = np.random.default_rng(seed)
    rows = []
    for dim in dims:
        points = rng.random((n, dim))
        items = [(i, points[i]) for i in range(n)]
        indexes = build_default_indexes(items, dim)
        query_points = rng.random((queries, dim))
        scan = run_knn_batch(indexes["linear-scan"], "scan", query_points, k)
        rtree = run_knn_batch(indexes["rtree"], "rtree", query_points, k)
        vafile = run_knn_batch(indexes["vafile"], "vafile", query_points, k)
        assert verify_against_scan(rtree, scan)
        assert verify_against_scan(vafile, scan)
        try:
            directory = GridFile(dim, cells_per_dim=4).directory_size
        except Exception:
            directory = -1  # refused: too large
        rows.append(
            (
                dim,
                rtree.distance_evaluations,
                vafile.distance_evaluations,
                scan.distance_evaluations,
                round(rtree.distance_evaluations / scan.distance_evaluations, 3),
                round(vafile.distance_evaluations / scan.distance_evaluations, 3),
                directory,
            )
        )
    return ExperimentResult(
        "E13",
        (
            "dim",
            "rtree evals",
            "vafile evals",
            "scan evals",
            "rtree share",
            "vafile share",
            "grid dir size",
        ),
        rows,
    )


# ----------------------------------------------------------------------
# E14: filter-condition simulation
# ----------------------------------------------------------------------
def e14_filter_condition(
    n: int = 4000,
    k: int = 10,
    taus: Sequence[float] = (0.99, 0.9, 0.7, 0.5, 0.3),
    seed: int = 23,
) -> ExperimentResult:
    """E14: filter-condition restarts/cost over the threshold sweep,
    plus the statistics-suggested threshold."""
    from repro.middleware.statistics import (
        collect_statistics,
        suggest_filter_threshold,
    )

    reference = threshold_top_k(
        workload("independent", n, 2, seed), tnorms.MIN, k
    )
    histograms = collect_statistics(workload("independent", n, 2, seed))
    suggested = suggest_filter_threshold(histograms, k, n, safety=3.0)
    rows = []
    for label, tau in [(f"{t:g}", t) for t in taus] + [
        (f"suggested ({suggested:.3f})", max(suggested, 1e-6))
    ]:
        result = filter_condition_top_k(
            workload("independent", n, 2, seed), k, initial_tau=tau
        )
        rows.append(
            (
                label,
                result.restarts,
                result.database_access_cost,
                reference.database_access_cost,
                result.answers.same_grade_multiset(reference.answers),
            )
        )
    return ExperimentResult(
        "E14",
        ("initial tau", "restarts", "filter cost", "TA cost", "correct"),
        rows,
        notes=[
            "last row: threshold from catalog grade statistics "
            "(middleware.statistics), safety factor 3",
        ],
    )


# ----------------------------------------------------------------------
# E15: batched sorted access under item vs latency cost measures
# ----------------------------------------------------------------------
def e15_batching(
    batch_sizes: Sequence[int] = (1, 10, 100, 1000),
    n: int = 8000,
    k: int = 10,
    seed: int = 29,
    request_charge: float = 50.0,
) -> ExperimentResult:
    """E15: A0 over batched sorted access, priced per item vs per trip."""
    from repro.core.batching import LatencyModel, batched

    model = LatencyModel(request_charge=request_charge, item_charge=1.0)
    rows = []
    for batch_size in batch_sizes:
        sources = batched(workload("independent", n, 2, seed), batch_size)
        result = fagin_top_k(sources, tnorms.MIN, k)
        requests = sum(s.requests for s in sources)
        fetched = sum(s.fetched for s in sources)
        latency = sum(model.cost_of(s) for s in sources)
        rows.append(
            (
                batch_size,
                fetched,
                requests,
                result.database_access_cost,
                round(latency, 1),
            )
        )
    return ExperimentResult(
        "E15",
        ("batch", "items fetched", "requests", "uniform cost", "latency cost"),
        rows,
        notes=[f"latency model: {request_charge:g} per round trip + 1 per item"],
    )


# ----------------------------------------------------------------------
# E16: the random-access pruning improvement to A0 (§4.1 remark)
# ----------------------------------------------------------------------
def e16_pruning(
    ns: Sequence[int] = (1000, 4000, 16000),
    kinds: Sequence[str] = ("independent", "anti-correlated"),
    k: int = 10,
    seed: int = 31,
) -> ExperimentResult:
    """E16: A0 with vs without random-access pruning per workload."""
    rows = []
    for kind in kinds:
        for n in ns:
            plain = fagin_top_k(workload(kind, n, 2, seed), tnorms.MIN, k)
            pruned = fagin_top_k(
                workload(kind, n, 2, seed), tnorms.MIN, k,
                prune_random_access=True,
            )
            agree = plain.answers.same_grade_multiset(pruned.answers)
            rows.append(
                (
                    kind,
                    n,
                    plain.database_access_cost,
                    pruned.database_access_cost,
                    plain.cost.random_access_cost,
                    pruned.cost.random_access_cost,
                    agree,
                )
            )
    return ExperimentResult(
        "E16",
        ("workload", "N", "A0", "A0+prune", "A0 random", "pruned random", "agree"),
        rows,
    )


# ----------------------------------------------------------------------
# E17: the "with arbitrarily high probability" claim of Theorem 4.1
# ----------------------------------------------------------------------
def e17_concentration(
    n: int = 4000,
    k: int = 10,
    m: int = 2,
    trials: int = 100,
) -> ExperimentResult:
    """Cost distribution of A0 over many random independent instances.

    Theorem 4.1 is probabilistic: cost O(N^{(m-1)/m} k^{1/m}) "with
    arbitrarily high probability" — for every epsilon there is a c with
    P(cost > c * N^{(m-1)/m} k^{1/m}) < epsilon.  Empirically that means
    the cost, normalized by the law, concentrates: the far tail sits at
    a small constant multiple of the median.
    """
    law = n ** ((m - 1) / m) * k ** (1 / m)
    normalized = []
    for seed in range(trials):
        sources = sources_from_columns(independent(n, m, seed=seed))
        cost = fagin_top_k(sources, tnorms.MIN, k).database_access_cost
        normalized.append(cost / law)
    normalized.sort()

    def quantile(q: float) -> float:
        index = min(len(normalized) - 1, int(q * len(normalized)))
        return normalized[index]

    rows = [
        ("median", round(quantile(0.5), 3)),
        ("p90", round(quantile(0.9), 3)),
        ("p99", round(quantile(0.99), 3)),
        ("max", round(normalized[-1], 3)),
    ]
    spread = normalized[-1] / quantile(0.5)
    return ExperimentResult(
        "E17",
        ("quantile of cost / (N^((m-1)/m) k^(1/m))", "value"),
        rows,
        notes=[
            f"{trials} instances at N={n}, m={m}, k={k}; "
            f"max/median = {spread:.2f} — the cost concentrates at a "
            "constant multiple of the law, as 'arbitrarily high "
            "probability' predicts",
        ],
    )


# ----------------------------------------------------------------------
# E18: resumption amortization ("continue where we left off", §4.1)
# ----------------------------------------------------------------------
def e18_resumption(
    n: int = 8000,
    k: int = 10,
    batches: int = 5,
    seed: int = 37,
) -> ExperimentResult:
    """E18: cost of paging through answers via resume vs from scratch.

    "The algorithm has the nice feature that after finding the top k
    answers, in order to find the next k best answers we can continue
    where we left off."  This measures that feature: fetch ``batches``
    successive pages of k answers from one resumable A0 instance, and
    compare the cumulative cost against re-running A0 from scratch with
    k, 2k, ..., batches*k.
    """
    from repro.core.fagin import FaginAlgorithm

    algorithm = FaginAlgorithm(
        sources_from_columns(independent(n, 2, seed=seed)), tnorms.MIN
    )
    rows = []
    cumulative_resumed = 0
    for page in range(1, batches + 1):
        batch_cost = algorithm.next_k(k).database_access_cost
        cumulative_resumed += batch_cost
        scratch = fagin_top_k(
            sources_from_columns(independent(n, 2, seed=seed)),
            tnorms.MIN,
            page * k,
        ).database_access_cost
        rows.append((page, batch_cost, cumulative_resumed, scratch))
    return ExperimentResult(
        "E18",
        ("page", "batch cost", "cumulative (resumed)", "from-scratch top-(page*k)"),
        rows,
        notes=[
            "cumulative resumed cost equals the one-shot cost of the "
            "same depth: resuming never re-pays for sorted access",
        ],
    )


# ----------------------------------------------------------------------
# E19: bulk access — ArraySource vs ListSource wall clock at scale
# ----------------------------------------------------------------------
def e19_bulk_access(
    n: int = 20000,
    m: int = 4,
    k: int = 10,
    seed: int = 41,
    repeats: int = 3,
) -> ExperimentResult:
    """E19: wall-clock cost of TA over columnar vs per-item sources.

    The paper's cost measure charges 1 per access regardless of backend,
    so the access counts must be *identical* between :class:`ListSource`
    and :class:`ArraySource`; what changes is constant-factor wall-clock
    work.  The columnar backend builds each ranked list with one
    vectorized validate + argsort instead of N Python-level calls, and
    serves ``next_batch``/``random_access_many`` without per-item
    dispatch.  Rows report build time, query time, and total speedup.
    """
    import time

    table = independent(n, m, seed=seed)
    rows = []
    timings: Dict[str, Tuple[float, float]] = {}
    results = {}
    for backend in ("list", "array"):
        best_build = best_query = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            sources = sources_from_columns(table, backend=backend)
            built = time.perf_counter()
            result = threshold_top_k(sources, tnorms.MIN, k)
            done = time.perf_counter()
            best_build = min(best_build, built - start)
            best_query = min(best_query, done - built)
            results[backend] = result
        timings[backend] = (best_build, best_query)
        rows.append(
            (
                backend,
                round(best_build * 1000, 2),
                round(best_query * 1000, 2),
                round((best_build + best_query) * 1000, 2),
                results[backend].database_access_cost,
            )
        )
    agree = results["list"].answers.same_grade_multiset(results["array"].answers)
    same_cost = (
        results["list"].database_access_cost
        == results["array"].database_access_cost
    )
    list_total = sum(timings["list"])
    array_total = sum(timings["array"])
    speedup = list_total / array_total if array_total > 0 else float("inf")
    return ExperimentResult(
        "E19",
        ("backend", "build ms", "query ms", "total ms", "uniform cost"),
        rows,
        notes=[
            f"answers agree: {agree}; access costs identical: {same_cost}",
            f"total speedup (list/array): {speedup:.2f}x at N={n}, m={m}, k={k}",
        ],
    )


# ----------------------------------------------------------------------
# E20: resilience — retries keep answers exact, NRA fallback keeps
# queries alive (ablation: degradation on vs off)
# ----------------------------------------------------------------------
def e20_resilience(
    n: int = 2000,
    m: int = 3,
    k: int = 10,
    seed: int = 43,
    fault_seed: int = 7,
    rates: Sequence[float] = (0.0, 0.1, 0.3, 0.5),
) -> ExperimentResult:
    """E20: cost and quality of TA under injected subsystem faults.

    Part one sweeps transient-fault rates with the resilience wrapper
    (retry with backoff) enabled: at every rate the answers must equal
    the fault-free answers, and — because a failed access charges
    nothing — at exactly the fault-free access cost; only retries grow.
    Part two permanently breaks one subsystem's random access mid-query
    and ablates graceful degradation: with the NRA fallback on, TA
    finishes with exact answers from sorted access alone; with it off,
    the query dies with the access error.
    """
    from repro.middleware.faults import FaultInjectingSource, FaultProfile
    from repro.middleware.resilience import (
        ResiliencePolicy,
        ResilientSource,
        VirtualClock,
    )

    table = independent(n, m, seed=seed)
    baseline = threshold_top_k(sources_from_columns(table), tnorms.MIN, k)
    truth = {item.object_id for item in baseline.answers}

    def recall(result) -> float:
        return len(truth & {item.object_id for item in result.answers}) / k

    def wrap(profile, only=None):
        clock = VirtualClock()
        wrapped = []
        for j, source in enumerate(sources_from_columns(table)):
            if only is None or j in only:
                source = FaultInjectingSource(source, profile, clock=clock)
                source = ResilientSource(source, ResiliencePolicy(), clock=clock)
            wrapped.append(source)
        return wrapped

    rows: List[tuple] = []
    exact_everywhere = True
    cost_neutral = True
    for rate in rates:
        profile = FaultProfile(transient_rate=rate, seed=fault_seed)
        sources = wrap(profile)
        result = threshold_top_k(sources, tnorms.MIN, k)
        retries = sum(
            s.stats.retries for s in sources if hasattr(s, "stats")
        )
        injected = sum(
            s._inner.injected.transients for s in sources if hasattr(s, "stats")
        )
        exact = [
            (i.object_id, i.grade) for i in result.answers
        ] == [(i.object_id, i.grade) for i in baseline.answers]
        exact_everywhere &= exact
        cost_neutral &= (
            result.database_access_cost == baseline.database_access_cost
        )
        rows.append(
            (
                "retry",
                rate,
                result.algorithm,
                result.database_access_cost,
                retries,
                injected,
                round(recall(result), 3),
                exact,
            )
        )

    broken = FaultProfile(break_random_after=5, seed=fault_seed)
    fallback = threshold_top_k(wrap(broken, only={m - 1}), tnorms.MIN, k)
    degraded_ok = fallback.degraded is not None and fallback.degraded.complete
    rows.append(
        (
            "fallback-on",
            "random dead",
            fallback.algorithm,
            fallback.database_access_cost,
            0,
            "-",
            round(recall(fallback), 3),
            degraded_ok,
        )
    )
    try:
        threshold_top_k(wrap(broken, only={m - 1}), tnorms.MIN, k, degrade=False)
        aborted = False
    except Exception:  # the injected access error, by design
        aborted = True
    rows.append(
        ("fallback-off", "random dead", "aborted" if aborted else "completed",
         "-", "-", "-", 0.0, False)
    )

    return ExperimentResult(
        "E20",
        ("scenario", "fault rate", "algorithm", "cost", "retries",
         "injected", "recall@k", "exact"),
        rows,
        notes=[
            f"retried runs exact at every rate: {exact_everywhere}; "
            f"cost equals fault-free cost: {cost_neutral}",
            f"NRA fallback recall {recall(fallback):.3f} "
            f"(complete={degraded_ok}); ablated run aborted: {aborted}",
        ],
    )


# ----------------------------------------------------------------------
# E21: the TA threshold's descent, observed through the tracer
# ----------------------------------------------------------------------
def e21_tau_trajectory(
    n: int = 2000,
    m: int = 3,
    k: int = 10,
    seed: int = 45,
    points: int = 12,
) -> ExperimentResult:
    """E21: tau and the kth buffered grade, round by round, under TA.

    Runs TA once with a :class:`~repro.observability.QueryTracer` and
    reads back the ``ta.tau`` / ``ta.kth_grade`` series the algorithm
    samples each round: tau (the threshold rule applied to the bottom
    grades) descends, the kth best buffered overall grade climbs, and
    the run stops at the first crossing — the correctness argument of
    Theorem 4.4 rendered as data.  Rows are the trajectory downsampled
    to about ``points`` rounds (always keeping the first and the last);
    the notes assert the invariants the observability layer guarantees:
    tau nonincreasing and traced accesses equal to the reported cost.
    """
    from repro.observability import MetricsRegistry, QueryTracer

    sources = sources_from_columns(independent(n, m, seed=seed))
    tracer = QueryTracer(metrics=MetricsRegistry())
    result = threshold_top_k(sources, tnorms.MIN, k, tracer=tracer)

    taus = tracer.samples("ta.tau")
    kths = tracer.samples("ta.kth_grade")
    rounds = len(taus)
    # ta.kth_grade starts once the buffer is nonempty and is then
    # sampled every round: align it to the trailing tau samples.
    offset = rounds - len(kths)
    rows: List[tuple] = []
    stride = max(1, rounds // max(1, points))
    picked = sorted(set(range(0, rounds, stride)) | {rounds - 1})
    for index in picked:
        step, tau = taus[index]
        kth = kths[index - offset][1] if index >= offset else None
        rows.append(
            (
                index + 1,
                step,
                round(tau, 4),
                round(kth, 4) if kth is not None else "-",
            )
        )

    tau_values = [tau for _, tau in taus]
    monotone = all(a >= b for a, b in zip(tau_values, tau_values[1:]))
    traced = sum(s + r for s, r in tracer.access_counts().values())
    final_tau = tau_values[-1]
    final_kth = kths[-1][1] if kths else float("nan")
    return ExperimentResult(
        "E21",
        ("round", "step", "tau", "kth grade"),
        rows,
        notes=[
            f"tau nonincreasing: {monotone}; rounds: {rounds}",
            f"stopped with kth grade {final_kth:.4f} >= tau {final_tau:.4f}: "
            f"{final_kth >= final_tau}",
            f"traced accesses {traced} == reported cost "
            f"{result.database_access_cost}: "
            f"{traced == result.database_access_cost}",
        ],
    )
