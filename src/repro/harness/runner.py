"""Parameter sweeps and seed averaging for the experiments.

Each experiment in EXPERIMENTS.md is a sweep: vary one or two parameters
(database size N, arity m, answer count k, selectivity, dimension), run
the algorithms, and collect access-cost metrics.  This module is the
shared loop so benchmarks stay declarative.
"""

from __future__ import annotations

import itertools
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence


@dataclass
class Record:
    """One sweep point: the parameters used and the metrics measured."""

    params: Dict[str, object]
    metrics: Dict[str, float]

    def value(self, name: str) -> float:
        if name in self.metrics:
            return float(self.metrics[name])
        return float(self.params[name])  # type: ignore[arg-type]


def sweep(
    grid: Mapping[str, Sequence],
    experiment: Callable[..., Mapping[str, float]],
) -> List[Record]:
    """Run ``experiment(**point)`` on the full cross product of ``grid``.

    The experiment returns a metric mapping; each grid point yields one
    :class:`Record`.
    """
    names = list(grid)
    records = []
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        metrics = dict(experiment(**params))
        records.append(Record(params=params, metrics=metrics))
    return records


def average_over_seeds(
    experiment: Callable[..., Mapping[str, float]],
    seeds: Sequence[int],
    **params,
) -> Dict[str, float]:
    """Mean of each metric over several seeded runs (reduces workload noise)."""
    if not seeds:
        raise ValueError("at least one seed is required")
    collected: Dict[str, List[float]] = {}
    for seed in seeds:
        metrics = experiment(seed=seed, **params)
        for name, value in metrics.items():
            collected.setdefault(name, []).append(float(value))
    return {name: statistics.fmean(values) for name, values in collected.items()}


def series(records: Sequence[Record], x: str, y: str) -> tuple:
    """Extract an (xs, ys) pair of tuples from sweep records."""
    xs = tuple(r.value(x) for r in records)
    ys = tuple(r.value(y) for r in records)
    return xs, ys
