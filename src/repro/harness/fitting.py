"""Log-log power-law fitting for the cost-scaling experiments.

Theorem 4.2 predicts cost ``Theta(N^{(m-1)/m} * k^{1/m})``.  On a log-log
plot that is a straight line whose slope is the exponent; fitting the
measured costs and comparing the slope to the prediction is how E1–E3
and E9 decide whether the law reproduced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = C * x^slope`` in log-log space."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return math.exp(self.intercept) * x**self.slope


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit a power law through positive (x, y) samples.

    Raises ValueError on fewer than two distinct x values or any
    non-positive sample (logs would be undefined).
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    if len(xs) < 2:
        raise ValueError("need at least two samples to fit a line")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fitting needs strictly positive samples")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    n = len(log_x)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    sxx = sum((x - mean_x) ** 2 for x in log_x)
    if sxx == 0:
        raise ValueError("all x values are equal; slope is undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(log_x, log_y))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_total = sum((y - mean_y) ** 2 for y in log_y)
    ss_residual = sum(
        (y - (intercept + slope * x)) ** 2 for x, y in zip(log_x, log_y)
    )
    r_squared = 1.0 if ss_total == 0 else 1.0 - ss_residual / ss_total
    return PowerLawFit(slope=slope, intercept=intercept, r_squared=r_squared)


def theorem_exponent(m: int) -> float:
    """The Theorem 4.1 exponent of N: (m - 1) / m."""
    if m < 1:
        raise ValueError(f"arity must be >= 1, got {m}")
    return (m - 1) / m


def k_exponent(m: int) -> float:
    """The Theorem 4.1 exponent of k: 1 / m."""
    if m < 1:
        raise ValueError(f"arity must be >= 1, got {m}")
    return 1.0 / m
