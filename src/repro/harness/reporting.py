"""Plain-text tables and paper-vs-measured comparison records.

Benchmarks print the same rows the paper's claims describe; the
formatting lives here so every experiment reports uniformly and
EXPERIMENTS.md can quote the output verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A fixed-width text table with a header rule."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    header = line([str(h) for h in headers])
    rule = "-" * len(header)
    body = "\n".join(line(row) for row in rendered)
    return f"{header}\n{rule}\n{body}" if rendered else f"{header}\n{rule}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


@dataclass(frozen=True)
class Comparison:
    """One paper-claim-vs-measurement line for EXPERIMENTS.md."""

    experiment: str
    claim: str
    expected: str
    measured: str
    holds: bool

    def line(self) -> str:
        verdict = "REPRODUCED" if self.holds else "DIVERGED"
        return (
            f"[{verdict}] {self.experiment}: {self.claim} | "
            f"expected {self.expected} | measured {self.measured}"
        )


def print_comparisons(comparisons: Sequence[Comparison]) -> None:
    for comparison in comparisons:
        print(comparison.line())
