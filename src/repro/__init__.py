"""repro — fuzzy top-k query processing for multimedia middleware.

A production-quality reproduction of Ronald Fagin, *Fuzzy Queries in
Multimedia Database Systems* (PODS 1998): graded sets, scoring functions
(t-norms, co-norms, means, and the Fagin–Wimmers weighted rule), the
sorted/random access middleware model with cost accounting, Fagin's
algorithm A0 and its refinements, a Garlic-style middleware engine, a
QBIC-style multimedia subsystem over synthetic images, multidimensional
indexes, and an SQL-like front end.

Quickstart::

    from repro import ListSource, fagin_top_k, scoring

    color = ListSource({"a": 0.9, "b": 0.6, "c": 0.3}, name="Color=red")
    shape = ListSource({"a": 0.5, "b": 0.8, "c": 0.4}, name="Shape=round")
    result = fagin_top_k([color, shape], scoring.MIN, k=2)
    for item in result.answers:
        print(item.object_id, item.grade)
"""

from repro import scoring
from repro.core import (
    And,
    ApproximationCertificate,
    ArraySource,
    Atomic,
    FaginAlgorithm,
    GradedItem,
    GradedSet,
    GradedSource,
    ListSource,
    Not,
    Or,
    Plan,
    Query,
    Scored,
    SortedOnlySource,
    Strategy,
    TopKResult,
    Weighted,
    boolean_first_top_k,
    combined_top_k,
    compile_query,
    disjunction_top_k,
    evaluate,
    execute,
    fagin_top_k,
    filter_condition_top_k,
    grade_everything,
    naive_top_k,
    nra_top_k,
    plan_top_k,
    sources_from_columns,
    threshold_top_k,
    top_k,
)
from repro.errors import AdmissionError, ReproError, ShedError
from repro.kernels import KERNEL_CHOICES, configure_kernel, default_kernel
from repro.parallel import ParallelAccessExecutor
from repro.observability import (
    MetricsRegistry,
    QueryTracer,
    TracingSource,
    validate_trace,
)
from repro.service import (
    FairShareExecutor,
    QueryService,
    QueryTicket,
    ServiceConfig,
    TenantPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "scoring",
    "ReproError",
    "GradedItem",
    "GradedSet",
    "GradedSource",
    "ListSource",
    "ArraySource",
    "SortedOnlySource",
    "sources_from_columns",
    "Query",
    "Atomic",
    "And",
    "Or",
    "Not",
    "Scored",
    "Weighted",
    "evaluate",
    "compile_query",
    "TopKResult",
    "ApproximationCertificate",
    "FaginAlgorithm",
    "fagin_top_k",
    "naive_top_k",
    "grade_everything",
    "disjunction_top_k",
    "threshold_top_k",
    "nra_top_k",
    "combined_top_k",
    "boolean_first_top_k",
    "filter_condition_top_k",
    "Plan",
    "Strategy",
    "plan_top_k",
    "execute",
    "top_k",
    "ParallelAccessExecutor",
    "QueryService",
    "QueryTicket",
    "ServiceConfig",
    "TenantPolicy",
    "FairShareExecutor",
    "AdmissionError",
    "ShedError",
    "KERNEL_CHOICES",
    "configure_kernel",
    "default_kernel",
    "QueryTracer",
    "MetricsRegistry",
    "TracingSource",
    "validate_trace",
    "__version__",
]
