"""Counters, gauges, histograms, and series for query observability.

A deliberately small, dependency-free metrics model in the Prometheus
style: named instruments with string labels, owned by a
:class:`MetricsRegistry`.  The tracer bridges access events into
counters (``accesses.sorted{source,phase}``), algorithms feed the
threshold/τ trajectory and buffer depths into series, the resilience
observer feeds retry/breaker counters, and phase spans feed wall-clock
histograms when the tracer has a clock.

Everything renders to plain dicts with deterministically ordered keys
(:meth:`MetricsRegistry.as_dict`), so metric snapshots can be asserted
byte-for-byte in tests and serialized next to trace timelines.

Instruments and the registry are thread-safe: every mutation holds a
per-instrument lock and instrument creation holds a registry lock, so
parallel access fan-outs (``repro.parallel``) never lose updates.
Snapshots (:meth:`MetricsRegistry.as_dict`) are taken under the
registry lock and each instrument's lock, so they are internally
consistent per instrument.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

#: label sets are stored as sorted (key, value) tuples so the same
#: labels always address the same instrument regardless of kwarg order
LabelKey = Tuple[Tuple[str, str], ...]
InstrumentKey = Tuple[str, LabelKey]


def _key(name: str, labels: Dict[str, object]) -> InstrumentKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _render(key: InstrumentKey) -> str:
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def set_to(self, value: int) -> None:
        """Resynchronize to an authoritative external tally.

        Used when an observer attaches to a component that already has
        history (e.g. a cached resilient binding whose retry stats
        predate observability being configured), so live increments from
        then on keep the counter exactly equal to the component's own
        count.
        """
        with self._lock:
            self.value = int(value)

    def snapshot(self) -> int:
        """The current value, read under the instrument lock."""
        with self._lock:
            return self.value


class Gauge:
    """A value that goes up and down (buffer depth, circuit state)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by a signed delta (queue depths, inflight)."""
        with self._lock:
            self.value += float(delta)

    def snapshot(self) -> float:
        """The current value, read under the instrument lock."""
        with self._lock:
            return self.value


class Histogram:
    """Streaming summary of observed values: count, sum, min, max."""

    __slots__ = ("count", "total", "minimum", "maximum", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.minimum if self.minimum is not None else 0.0,
                "max": self.maximum if self.maximum is not None else 0.0,
            }


class Series:
    """An append-only (step, value) time series.

    The step axis is the tracer's monotonic event counter, so series
    points line up exactly with the access timeline — this is what lets
    an experiment plot the TA threshold τ against accesses performed.
    """

    __slots__ = ("points", "_lock")

    def __init__(self) -> None:
        self.points: List[Tuple[int, float]] = []
        self._lock = threading.Lock()

    def append(self, step: int, value: float) -> None:
        with self._lock:
            self.points.append((int(step), float(value)))

    def snapshot(self) -> List[Tuple[int, float]]:
        """A consistent copy of the points, taken under the lock."""
        with self._lock:
            return list(self.points)

    @property
    def steps(self) -> List[int]:
        return [step for step, _ in self.snapshot()]

    @property
    def values(self) -> List[float]:
        return [value for _, value in self.snapshot()]

    def last(self) -> Optional[float]:
        with self._lock:
            return self.points[-1][1] if self.points else None


class MetricsRegistry:
    """Get-or-create home for all instruments of one observed run.

    Creation and snapshots hold a registry-wide lock, so concurrent
    threads asking for the same (name, labels) always receive the same
    instrument instance.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[InstrumentKey, Counter] = {}
        self._gauges: Dict[InstrumentKey, Gauge] = {}
        self._histograms: Dict[InstrumentKey, Histogram] = {}
        self._series: Dict[InstrumentKey, Series] = {}

    def counter(self, name: str, **labels) -> Counter:
        with self._lock:
            return self._counters.setdefault(_key(name, labels), Counter())

    def gauge(self, name: str, **labels) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(_key(name, labels), Gauge())

    def histogram(self, name: str, **labels) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(_key(name, labels), Histogram())

    def series(self, name: str, **labels) -> Series:
        with self._lock:
            return self._series.setdefault(_key(name, labels), Series())

    # -- read side -------------------------------------------------------------
    # Every read goes through the instruments' snapshot methods, which
    # take the per-instrument lock: a scrape racing live writers (the
    # query service reads metrics mid-load) sees each instrument in a
    # consistent state and never trips over a list mutating under it.
    def counters(self, name: str) -> Dict[str, int]:
        """All counters of one name, keyed by rendered labels."""
        with self._lock:
            selected = sorted(
                (key, counter)
                for key, counter in self._counters.items()
                if key[0] == name
            )
        return {_render(key): counter.snapshot() for key, counter in selected}

    def counter_total(self, name: str) -> int:
        """Sum of one counter name across every label combination."""
        with self._lock:
            selected = [
                c for key, c in self._counters.items() if key[0] == name
            ]
        return sum(c.snapshot() for c in selected)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Deterministic snapshot of every instrument (sorted keys).

        Safe to call while writer threads are active: the registry lock
        pins the instrument *sets*, then each instrument is snapshotted
        under its own lock, so concurrent increments/appends land either
        wholly before or wholly after the snapshot of that instrument.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
            series = sorted(self._series.items())
        return {
            "counters": {_render(k): c.snapshot() for k, c in counters},
            "gauges": {_render(k): g.snapshot() for k, g in gauges},
            "histograms": {_render(k): h.as_dict() for k, h in histograms},
            "series": {
                _render(k): [[step, value] for step, value in s.snapshot()]
                for k, s in series
            },
        }
