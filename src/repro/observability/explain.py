"""EXPLAIN rendering: plan, per-atom statistics, phase breakdown.

Section 4.2: "In order to use an optimizer, we need to understand the
cost of applying various operators over various data in various
repositories."  The planner already records *why* it chose a strategy;
this module turns that choice — plus what the sources look like and, for
executed queries, what each phase actually touched — into a readable
report and a structured object.

Two entry points:

* :func:`explain_report` builds an :class:`ExplainReport` from a plan
  and its sources (optionally with an executed result and its tracer) —
  the engine's ``explain_report`` method wraps this;
* :func:`render_trace_explain` renders the post-hoc view straight from
  a recorded timeline, which is what the CLI's ``--explain`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.planner import Plan
from repro.core.sources import GradedSource, iter_wrapper_chain


@dataclass(frozen=True)
class AtomStats:
    """Optimizer-relevant statistics for one bound ranked list."""

    name: str
    size: int
    is_boolean: bool
    supports_random_access: bool
    random_access_available: bool
    positive_count: Optional[int] = None
    wrappers: Tuple[str, ...] = ()
    #: physical-storage summary (see repro.storage.describe_source_storage);
    #: only notable layouts (sharded, on-disk) are rendered
    storage: Optional[Dict[str, object]] = None

    def describe(self) -> str:
        flags = []
        if self.is_boolean:
            selectivity = (
                f", {self.positive_count} positive"
                if self.positive_count is not None
                else ""
            )
            flags.append(f"boolean{selectivity}")
        if not self.supports_random_access:
            flags.append("sorted-only")
        elif not self.random_access_available:
            flags.append("random access unavailable (breaker open)")
        chain = " -> ".join(self.wrappers) if self.wrappers else "bare"
        detail = f" [{', '.join(flags)}]" if flags else ""
        line = f"{self.name}: N={self.size}{detail}  ({chain})"
        storage = self.storage or {}
        if storage.get("shards"):
            backends = "/".join(storage.get("shard_backends", ()))
            routing = "hash-routed" if storage.get("routed") else "probe-routed"
            line += (
                f"\n    storage: {storage['shards']} shards of "
                f"{backends or '?'}, {routing}"
            )
        elif storage.get("backend") == "MemmapSource":
            line += f"\n    storage: memmap at {storage.get('directory')}"
        elif storage.get("index"):
            line += (
                f"\n    storage: {storage['index']} index-backed kNN stream"
            )
        return line


@dataclass
class ExplainReport:
    """The full EXPLAIN output for one query."""

    query: str
    plan: Plan
    atoms: List[AtomStats]
    #: filled only when the query was executed under a tracer
    executed: Optional[Dict[str, object]] = None
    phases: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"query: {self.query}"]
        lines.append(
            f"plan:  {self.plan.strategy.value} (k={self.plan.k}, "
            f"estimated cost {self.plan.estimated_cost:.0f})"
        )
        lines.append(f"       reason: {self.plan.reason}")
        if self.plan.theta > 1.0:
            lines.append(
                f"       theta: {self.plan.theta:g} "
                "(approximate early stop permitted)"
            )
        lines.append("atoms:")
        for atom in self.atoms:
            lines.append(f"  {atom.describe()}")
        if self.executed is not None:
            lines.append(
                "executed: cost {cost} (sorted {sorted}, random {random}), "
                "depth {depth}".format(**self.executed)
            )
            if self.executed.get("estimate_ratio") is not None:
                lines.append(
                    f"          actual/estimated = "
                    f"{self.executed['estimate_ratio']:.2f}"
                )
            if self.executed.get("theta") is not None:
                achieved = self.executed.get("achieved")
                shaped = (
                    "unbounded" if achieved == float("inf")
                    else f"{achieved:.4f}"
                )
                kind = "anytime" if self.executed.get("anytime") else "theta-stop"
                lines.append(
                    f"          approximation: {kind}, requested theta "
                    f"{self.executed['theta']:g}, certified ratio {shaped}"
                )
        if self.phases:
            lines.append("phases:")
            for phase, counts in self.phases.items():
                lines.append(
                    f"  {phase}: sorted {counts.get('sorted', 0)}, "
                    f"random {counts.get('random', 0)}"
                )
        return "\n".join(lines)


def describe_sources(sources: Sequence[GradedSource]) -> List[AtomStats]:
    """Per-atom statistics straight from the bound sources."""
    from repro.storage import describe_source_storage

    atoms = []
    for source in sources:
        chain = tuple(type(node).__name__ for node in iter_wrapper_chain(source))
        positive = getattr(source, "positive_count", None)
        atoms.append(
            AtomStats(
                name=source.name,
                size=len(source),
                is_boolean=source.is_boolean,
                supports_random_access=source.supports_random_access,
                random_access_available=source.random_access_available(),
                positive_count=int(positive) if positive is not None else None,
                wrappers=chain,
                storage=describe_source_storage(source),
            )
        )
    return atoms


def phase_breakdown(events: Sequence[Dict[str, object]]) -> Dict[str, Dict[str, int]]:
    """Per-phase sorted/random access counts from a recorded timeline.

    Phases appear in first-access order; accesses outside any span are
    grouped under ``"-"``.
    """
    breakdown: Dict[str, Dict[str, int]] = {}
    for event in events:
        kind = event.get("type")
        if kind not in ("sorted", "random"):
            continue
        phase = str(event.get("phase") or "-")
        counts = breakdown.setdefault(phase, {"sorted": 0, "random": 0})
        counts[kind] += 1
    return breakdown


def explain_report(
    query: str,
    plan: Plan,
    sources: Sequence[GradedSource],
    *,
    result=None,
    tracer=None,
) -> ExplainReport:
    """Assemble an :class:`ExplainReport` (see the engine's wrapper)."""
    report = ExplainReport(
        query=query, plan=plan, atoms=describe_sources(sources)
    )
    if result is not None:
        ratio = (
            result.cost.database_access_cost / plan.estimated_cost
            if plan.estimated_cost > 0
            else None
        )
        report.executed = {
            "algorithm": result.algorithm,
            "cost": result.cost.database_access_cost,
            "sorted": result.cost.sorted_access_cost,
            "random": result.cost.random_access_cost,
            "depth": result.sorted_depth,
            "estimate_ratio": ratio,
        }
        certificate = getattr(result, "approximation", None)
        if certificate is not None:
            report.executed["theta"] = certificate.theta
            report.executed["achieved"] = certificate.achieved
            report.executed["anytime"] = certificate.anytime
    if tracer is not None:
        report.phases = phase_breakdown(tracer.events)
    return report


def render_trace_explain(tracer) -> str:
    """Render the post-hoc EXPLAIN view of a recorded timeline.

    Used by the CLI after executing with ``--explain``: shows each plan
    the engine chose, the per-source access tallies, the per-phase
    breakdown, and a summary of any resilience events — everything
    derived from the trace alone.
    """
    lines: List[str] = ["-- explain (from trace) --"]
    for event in tracer.events:
        if event.get("type") == "event" and event.get("name") == "plan":
            attrs = event.get("attrs", {})
            theta = attrs.get("theta")
            shaped = f", theta={theta:g}" if theta is not None else ""
            lines.append(
                f"plan: {attrs.get('strategy')} (k={attrs.get('k')}{shaped}, "
                f"estimated cost {attrs.get('estimated_cost', 0):.0f}) — "
                f"{attrs.get('reason')}"
            )
    counts = tracer.access_counts()
    if counts:
        lines.append("accesses by source:")
        for name in sorted(counts):
            sorted_n, random_n = counts[name]
            lines.append(
                f"  {name}: sorted {sorted_n}, random {random_n}, "
                f"total {sorted_n + random_n}"
            )
    breakdown = phase_breakdown(tracer.events)
    if breakdown:
        lines.append("accesses by phase:")
        for phase, tally in breakdown.items():
            lines.append(
                f"  {phase}: sorted {tally['sorted']}, random {tally['random']}"
            )
    shard_lines: List[str] = []
    for event in tracer.events:
        if event.get("type") == "event" and event.get("name") == "shard_breakdown":
            attrs = event.get("attrs", {})
            shard_lines.append(f"  {attrs.get('source')}:")
            for entry in attrs.get("shards", ()):
                shard_lines.append(
                    f"    {entry.get('shard')}: n={entry.get('n')}, "
                    f"sorted {entry.get('sorted')}, random {entry.get('random')}"
                )
    if shard_lines:
        lines.append("accesses by shard:")
        lines.extend(shard_lines)
    index_lines: List[str] = []
    for event in tracer.events:
        if event.get("type") == "event" and event.get("name") == "index_breakdown":
            attrs = event.get("attrs", {})
            index_lines.append(
                f"  {attrs.get('source')}: {attrs.get('index')} over "
                f"n={attrs.get('n')}, node accesses "
                f"{attrs.get('node_accesses')}, distance evals "
                f"{attrs.get('distance_evals')}"
            )
    if index_lines:
        lines.append("accesses by index:")
        lines.extend(index_lines)
    resilience: Dict[str, int] = {}
    for event in tracer.events:
        if event.get("type") == "event" and event.get("name") == "resilience":
            kind = str(event.get("attrs", {}).get("kind", "?"))
            resilience[kind] = resilience.get(kind, 0) + 1
    if resilience:
        lines.append(
            "resilience events: "
            + ", ".join(f"{kind}={n}" for kind, n in sorted(resilience.items()))
        )
    for event in tracer.events:
        if event.get("type") == "event" and event.get("name") == "theta-certified":
            attrs = event.get("attrs", {})
            achieved = attrs.get("achieved", float("inf"))
            shaped = (
                "unbounded" if achieved == float("inf") else f"{achieved:.4f}"
            )
            kind = "anytime" if attrs.get("anytime") else "theta-stop"
            lines.append(
                f"approximation: {kind}, requested theta "
                f"{attrs.get('theta'):g}, certified ratio {shaped}"
            )
    taus = tracer.samples("ta.tau")
    if taus:
        lines.append(
            f"threshold τ: start {taus[0][1]:.4f} -> final {taus[-1][1]:.4f} "
            f"over {len(taus)} checkpoints"
        )
    lines.append(f"trace: {len(tracer.events)} events")
    return "\n".join(lines)
