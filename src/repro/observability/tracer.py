"""Structured access tracing: the query → phase → access timeline.

:class:`QueryTracer` records a flat, step-numbered event list.  Event
types:

``phase_start`` / ``phase_end``
    A span: the engine's ``query`` span, then each algorithm phase
    (``sorted-phase``, ``random-phase``, ``ta``, ``nra`` …).  Spans
    nest; every other event carries the innermost open phase name.
``sorted`` / ``random``
    One database access, in the paper's sense: the list (source name),
    the object id, the grade obtained, and — for sorted access — the
    1-based position in the list.  Algorithms emit these at *logical*
    access time (when they process an item), so the timeline shows the
    access order the paper's algorithm descriptions define, independent
    of the bulk-draining call pattern underneath.
``sample``
    A named numeric observation tied to the current step — the TA
    threshold τ, NRA's bound gap, buffer depths.  Samples also land in
    the metrics registry's step-indexed series, which is what the
    τ-vs-step experiment plots.
``event``
    Anything else (the chosen plan, a degradation, a retry).

Determinism: the tracer has no clock unless one is injected, events are
appended in program order, and :meth:`QueryTracer.to_json` serializes
with sorted keys — identical runs produce byte-identical timelines (the
golden-trace tests pin this down).

Zero overhead when off: every instrumented call site guards with
``if tracer is not None``; no wrapper, no no-op dispatch, nothing on the
hot path.  :class:`TracingSource` is the complementary *source-level*
recorder for consumers outside the instrumented algorithms; like
:class:`~repro.core.sources.VerifyingSource` its peeks are strictly
side-effect-free.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.graded import GradedItem, ObjectId
from repro.core.sources import GradedSource, iter_wrapper_chain
from repro.errors import TraceError

#: bumped when the event schema changes incompatibly
TRACE_VERSION = 1

#: event types a valid timeline may contain
_EVENT_TYPES = ("phase_start", "phase_end", "sorted", "random", "sample", "event")


class QueryTracer:
    """Recorder for one query's (or one session's) access timeline.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`.
        When given, access events increment per-source/per-phase
        counters, samples append to step-indexed series, and — with a
        clock — phase spans observe wall-clock histograms.
    clock:
        Optional zero-argument callable returning seconds (e.g.
        ``time.perf_counter``).  When omitted (the default) no
        timestamps enter the timeline, keeping it fully deterministic;
        inject a clock to measure wall-clock per phase instead.
    """

    def __init__(self, *, metrics=None, clock: Optional[Callable[[], float]] = None) -> None:
        self.events: List[Dict[str, object]] = []
        self.metrics = metrics
        self.clock = clock
        self._step = 0
        self._phases: List[str] = []
        #: serializes step assignment, event appends, and the phase
        #: stack, so source-level recorders (TracingSource) are safe to
        #: drive from parallel fan-out workers.  Algorithms emit from
        #: the coordinating thread in logical order regardless.
        self._lock = threading.RLock()

    # -- core emission ---------------------------------------------------------
    @property
    def step(self) -> int:
        """The step number the next event will carry."""
        return self._step

    @property
    def current_phase(self) -> Optional[str]:
        """Innermost open phase, or None outside any span."""
        return self._phases[-1] if self._phases else None

    def _emit(self, event_type: str, **fields) -> Dict[str, object]:
        with self._lock:
            event: Dict[str, object] = {"step": self._step, "type": event_type}
            for name, value in fields.items():
                if value is not None:
                    event[name] = value
            self._step += 1
            self.events.append(event)
            return event

    # -- spans -----------------------------------------------------------------
    @contextmanager
    def phase(self, name: str, **attrs):
        """A span; every event inside carries this phase name."""
        started = self.clock() if self.clock is not None else None
        with self._lock:
            self._emit("phase_start", phase=name, attrs=attrs or None)
            self._phases.append(name)
        try:
            yield self
        finally:
            with self._lock:
                self._phases.pop()
                event = self._emit("phase_end", phase=name)
            if started is not None:
                elapsed = self.clock() - started
                event["seconds"] = elapsed
                if self.metrics is not None:
                    self.metrics.histogram("phase.seconds", phase=name).observe(elapsed)

    # -- events ----------------------------------------------------------------
    def event(self, name: str, **attrs) -> None:
        """A named point event (plan chosen, degradation, retry, ...)."""
        self._emit("event", name=name, phase=self.current_phase, attrs=attrs or None)

    def sample(self, name: str, value: float) -> None:
        """A numeric observation at the current step (τ, bounds, depths)."""
        event = self._emit(
            "sample", name=name, value=float(value), phase=self.current_phase
        )
        if self.metrics is not None:
            self.metrics.series(name).append(event["step"], float(value))

    def record_sorted(
        self,
        source: str,
        object_id: ObjectId,
        grade: float,
        position: Optional[int] = None,
    ) -> None:
        """One sorted access: ``source`` delivered ``object_id`` at ``grade``."""
        self._emit(
            "sorted",
            source=source,
            object=object_id,
            grade=float(grade),
            position=position,
            phase=self.current_phase,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "accesses.sorted", source=source, phase=self.current_phase or "-"
            ).inc()

    def record_random(self, source: str, object_id: ObjectId, grade: float) -> None:
        """One random access: ``source`` graded ``object_id`` on demand."""
        self._emit(
            "random",
            source=source,
            object=object_id,
            grade=float(grade),
            phase=self.current_phase,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "accesses.random", source=source, phase=self.current_phase or "-"
            ).inc()

    def record_sorted_batch(
        self, source: str, items: Sequence[GradedItem], start_position: int
    ) -> None:
        """Record a consumed batch: one sorted event per delivered item."""
        for offset, item in enumerate(items):
            self.record_sorted(
                source, item.object_id, item.grade, position=start_position + offset + 1
            )

    # -- resilience bridge -----------------------------------------------------
    def resilience_observer(self, source_name: str) -> Callable[[str, str], None]:
        """An observer callback for one ResilientSource.

        Each notification becomes a trace event and bumps the matching
        ``resilience.<kind>`` counter labelled with the source name, so
        the registry's retry counts track the source's own stats
        exactly (see :func:`attach_resilience_observers`).
        """

        def observe(kind: str, detail: str) -> None:
            self.event("resilience", kind=kind, source=source_name, detail=detail)
            if self.metrics is not None:
                self.metrics.counter(f"resilience.{kind}", source=source_name).inc()

        return observe

    # -- read side -------------------------------------------------------------
    def access_counts(self) -> Dict[str, Tuple[int, int]]:
        """Traced (sorted, random) access tallies per source name.

        The trace-side mirror of :class:`~repro.core.cost.CostReport`:
        on a fault-free run the two must agree exactly, which the
        conformance suite asserts for every algorithm.
        """
        counts: Dict[str, List[int]] = {}
        for event in self.events:
            kind = event["type"]
            if kind not in ("sorted", "random"):
                continue
            tally = counts.setdefault(str(event["source"]), [0, 0])
            tally[0 if kind == "sorted" else 1] += 1
        return {name: (s, r) for name, (s, r) in counts.items()}

    def samples(self, name: str) -> List[Tuple[int, float]]:
        """All (step, value) samples of one name, in emission order."""
        return [
            (int(e["step"]), float(e["value"]))
            for e in self.events
            if e["type"] == "sample" and e.get("name") == name
        ]

    # -- serialization ---------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {"version": TRACE_VERSION, "events": self.events}

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON: sorted keys, trailing newline, no clock
        entropy unless a clock was injected."""
        return json.dumps(
            self.as_dict(), indent=indent, sort_keys=True, default=str
        ) + "\n"


def validate_trace(payload: Dict[str, object]) -> None:
    """Validate a timeline against the trace schema; raise TraceError.

    Checks: version tag, contiguous 0-based step numbering, known event
    types with their required fields, grades within [0, 1], and balanced
    phase spans.  Used by the CLI before writing ``--trace-out`` files
    and by the golden-trace tests.
    """
    if not isinstance(payload, dict):
        raise TraceError(f"trace payload must be a dict, got {type(payload).__name__}")
    if payload.get("version") != TRACE_VERSION:
        raise TraceError(f"unsupported trace version {payload.get('version')!r}")
    events = payload.get("events")
    if not isinstance(events, list):
        raise TraceError("trace payload lacks an event list")
    open_phases: List[str] = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceError(f"event {index} is not an object")
        if event.get("step") != index:
            raise TraceError(
                f"event {index} has step {event.get('step')!r}; steps must "
                "be contiguous from 0"
            )
        kind = event.get("type")
        if kind not in _EVENT_TYPES:
            raise TraceError(f"event {index} has unknown type {kind!r}")
        if kind in ("sorted", "random"):
            for required in ("source", "object", "grade"):
                if required not in event:
                    raise TraceError(f"{kind} event {index} lacks {required!r}")
            grade = event["grade"]
            if not isinstance(grade, (int, float)) or not 0.0 <= grade <= 1.0:
                raise TraceError(
                    f"{kind} event {index} has grade {grade!r} outside [0, 1]"
                )
        elif kind == "sample":
            if "name" not in event or "value" not in event:
                raise TraceError(f"sample event {index} lacks name/value")
        elif kind == "event":
            if "name" not in event:
                raise TraceError(f"event {index} lacks a name")
        elif kind == "phase_start":
            open_phases.append(str(event.get("phase")))
        elif kind == "phase_end":
            if not open_phases or open_phases[-1] != str(event.get("phase")):
                raise TraceError(
                    f"phase_end {event.get('phase')!r} at event {index} does "
                    f"not match open phases {open_phases}"
                )
            open_phases.pop()
    if open_phases:
        raise TraceError(f"unclosed phases at end of trace: {open_phases}")


class TracingSource(GradedSource):
    """Source-level access recorder, transparent to cost and planning.

    Wraps one :class:`~repro.core.sources.GradedSource` and records every
    *charged* access — sorted deliveries (single and bulk) and random
    probes (single and bulk) — into a :class:`QueryTracer`.  The counter
    is shared with the wrapped source and the name is kept, so cost
    reports, planner probes, and resilience reports are unchanged.

    Peeks (``_peek_at`` / ``_peek_range``) and the accounting-free
    materialization paths delegate straight to the wrapped source and
    record **nothing**: like :class:`~repro.core.sources.VerifyingSource`
    the wrapper is strictly side-effect-free for reads the paper's cost
    measure does not charge.

    Note on windowed algorithms: TA and A0 drain sorted access in bulk
    *after* processing peeked windows, so a source-level recorder would
    place their sorted events at consumption time, not logical access
    time.  The algorithms therefore emit their own trace events when
    given a ``tracer`` — use this wrapper for consumers outside those
    code paths (naive scans, cursors driven by external code, tests).
    """

    def __init__(self, inner: GradedSource, tracer: QueryTracer) -> None:
        super().__init__(inner.name)
        self._inner = inner
        self.tracer = tracer
        self.counter = inner.counter
        self.supports_random_access = inner.supports_random_access
        self.is_boolean = inner.is_boolean
        positive = getattr(inner, "positive_count", None)
        if positive is not None:
            self.positive_count = positive

    def random_access_available(self) -> bool:
        return self._inner.random_access_available()

    def _item_at(self, index: int) -> Optional[GradedItem]:
        item = self._inner._item_at(index)
        if item is not None:
            self.tracer.record_sorted(
                self.name, item.object_id, item.grade, position=index + 1
            )
        return item

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        items = self._inner._items_range(start, count)
        self.tracer.record_sorted_batch(self.name, items, start)
        return items

    def _peek_at(self, index: int) -> Optional[GradedItem]:
        return self._inner._peek_at(index)

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        return self._inner._peek_range(start, count)

    def _grade_of(self, object_id: ObjectId) -> float:
        grade = self._inner._grade_of(object_id)
        self.tracer.record_random(self.name, object_id, grade)
        return grade

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        grades = self._inner._grades_of_many(object_ids)
        for object_id in object_ids:
            self.tracer.record_random(self.name, object_id, grades[object_id])
        return grades

    def __len__(self) -> int:
        return len(self._inner)


def traced(sources: Iterable[GradedSource], tracer: QueryTracer) -> List[GradedSource]:
    """Wrap every source in a :class:`TracingSource` sharing one tracer."""
    return [TracingSource(source, tracer) for source in sources]


def attach_resilience_observers(
    sources: Iterable[GradedSource], tracer: QueryTracer
) -> None:
    """Wire every ResilientSource in the wrapper chains to the tracer.

    Each resilient node gets an observer emitting trace events and
    bumping ``resilience.*`` counters.  On attach, the counters are
    resynchronized to the node's cumulative stats, so from this point on
    ``resilience_report()`` and the metrics registry agree on retry
    counts even when the binding (and its history) predates the tracer.
    """
    from repro.middleware.resilience import ResilientSource

    for source in sources:
        for node in iter_wrapper_chain(source):
            if isinstance(node, ResilientSource):
                node.observer = tracer.resilience_observer(node.name)
                if tracer.metrics is not None:
                    stats = node.stats.as_dict()
                    for kind in ("retries", "failures", "rejections"):
                        tracer.metrics.counter(
                            f"resilience.{kind}", source=node.name
                        ).set_to(stats[kind])
