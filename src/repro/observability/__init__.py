"""Observability for the middleware: access tracing, metrics, EXPLAIN.

Fagin's cost model (section 4) *defines* an algorithm by what it touches
— database access cost = sorted-access cost + random-access cost — so a
middleware that can only report end-of-query totals cannot show *why* a
query cost what it did, whether the optimizer's estimate (section 4.2)
matched reality, or what the resilience layer retried along the way.
This package is the instrumentation the rest of the system threads
through:

* :class:`~repro.observability.tracer.QueryTracer` — a span/event
  recorder producing a structured, deterministic, JSON-serializable
  timeline (query → algorithm phase → individual access).  Algorithms
  accept an optional ``tracer`` and emit every sorted/random access with
  object id, grade, list name, enclosing phase, and a monotonic step
  counter.  ``tracer=None`` (the default everywhere) costs nothing.
* :class:`~repro.observability.tracer.TracingSource` — a side-effect-free
  source wrapper recording charged accesses at the source boundary, for
  consumers outside the algorithms' own emission (drivers, tests).
* :class:`~repro.observability.metrics.MetricsRegistry` — counters,
  gauges, histograms, and step-indexed series (per-phase access counts,
  buffer depths, the TA threshold trajectory, resilience retries, and
  wall-clock per phase under an injectable clock).
* :mod:`~repro.observability.explain` — EXPLAIN rendering: the chosen
  plan, per-atom source statistics, and the per-phase access breakdown,
  used by ``MiddlewareEngine.explain_report`` and the CLI's
  ``--explain`` / ``--trace-out`` flags.
"""

from repro.observability.explain import (
    AtomStats,
    ExplainReport,
    describe_sources,
    phase_breakdown,
    render_trace_explain,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)
from repro.observability.tracer import (
    TRACE_VERSION,
    QueryTracer,
    TracingSource,
    attach_resilience_observers,
    traced,
    validate_trace,
)

__all__ = [
    "TRACE_VERSION",
    "QueryTracer",
    "TracingSource",
    "traced",
    "validate_trace",
    "attach_resilience_observers",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "AtomStats",
    "ExplainReport",
    "describe_sources",
    "phase_breakdown",
    "render_trace_explain",
]
