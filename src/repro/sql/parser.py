"""Recursive-descent parser for the SQL-like fuzzy query language.

Grammar (keywords case-insensitive)::

    statement  := SELECT ('*' | IDENT (',' IDENT)*) FROM IDENT
                  WHERE condition [USING IDENT] [STOP AFTER NUMBER]
    condition  := and_expr (OR and_expr)*
    and_expr   := unary (AND unary)*
    unary      := NOT unary | primary
    primary    := '(' condition ')' | predicate
    predicate  := IDENT '=' literal [WEIGHT NUMBER]
    literal    := STRING | NUMBER | IDENT

Example::

    SELECT * FROM images
    WHERE Color = 'red' WEIGHT 0.6 AND Shape = 'round' WEIGHT 0.4
    USING min STOP AFTER 10
"""

from __future__ import annotations

from typing import List

from repro.errors import QuerySyntaxError
from repro.sql.ast import (
    AndExpr,
    Condition,
    Literal,
    NotExpr,
    OrExpr,
    Predicate,
    Statement,
)
from repro.sql.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing --------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        if self._current.kind != kind:
            raise QuerySyntaxError(
                f"expected {kind} at position {self._current.position}, "
                f"found {self._current.text!r}"
            )
        return self._advance()

    def _accept(self, kind: str) -> bool:
        if self._current.kind == kind:
            self._advance()
            return True
        return False

    # -- grammar ----------------------------------------------------------
    def statement(self) -> Statement:
        self._expect("SELECT")
        columns = None
        if not self._accept("STAR"):
            names = [self._expect("IDENT").text]
            while self._accept("COMMA"):
                names.append(self._expect("IDENT").text)
            columns = tuple(names)
        self._expect("FROM")
        table = self._expect("IDENT").text
        self._expect("WHERE")
        condition = self.condition()
        scoring_name = None
        stop_after = None
        if self._accept("USING"):
            scoring_name = self._expect("IDENT").text.lower()
        if self._accept("STOP"):
            self._expect("AFTER")
            number = self._expect("NUMBER")
            if "." in number.text:
                raise QuerySyntaxError(
                    f"STOP AFTER takes an integer, got {number.text!r}"
                )
            stop_after = int(number.text)
            if stop_after <= 0:
                raise QuerySyntaxError("STOP AFTER must be positive")
        self._expect("EOF")
        return Statement(
            table=table,
            condition=condition,
            columns=columns,
            scoring_name=scoring_name,
            stop_after=stop_after,
        )

    def condition(self) -> Condition:
        operands = [self.and_expr()]
        while self._accept("OR"):
            operands.append(self.and_expr())
        return operands[0] if len(operands) == 1 else OrExpr(tuple(operands))

    def and_expr(self) -> Condition:
        operands = [self.unary()]
        while self._accept("AND"):
            operands.append(self.unary())
        return operands[0] if len(operands) == 1 else AndExpr(tuple(operands))

    def unary(self) -> Condition:
        if self._accept("NOT"):
            return NotExpr(self.unary())
        return self.primary()

    def primary(self) -> Condition:
        if self._accept("LPAREN"):
            inner = self.condition()
            self._expect("RPAREN")
            return inner
        return self.predicate()

    def predicate(self) -> Predicate:
        attribute = self._expect("IDENT").text
        self._expect("EQUALS")
        target = self.literal()
        weight = None
        if self._accept("WEIGHT"):
            weight = float(self._expect("NUMBER").text)
            if weight < 0:
                raise QuerySyntaxError("WEIGHT must be nonnegative")
        return Predicate(attribute=attribute, target=target, weight=weight)

    def literal(self) -> Literal:
        token = self._current
        if token.kind == "STRING":
            self._advance()
            return token.text[1:-1].replace("\\'", "'")
        if token.kind == "NUMBER":
            self._advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "IDENT":
            self._advance()
            return token.text
        raise QuerySyntaxError(
            f"expected a literal at position {token.position}, found {token.text!r}"
        )


def parse(text: str) -> Statement:
    """Parse query text into a :class:`Statement` (raises
    :class:`~repro.errors.QuerySyntaxError` with a position on error)."""
    return _Parser(tokenize(text)).statement()
