"""Tokenizer for the SQL-like fuzzy query language (paper section 6).

"They could possibly be written in an SQL-like form, as is done in
[WHTB98]" — the language here is a small SQL dialect with the fuzzy
extensions the paper discusses: a ``STOP AFTER k`` clause for ranked
results (the DB2 idiom Garlic used), a ``USING <rule>`` clause to pick
the scoring function, and per-predicate ``WEIGHT w`` annotations for the
Fagin–Wimmers weighting of section 5.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.errors import QuerySyntaxError

KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "AND",
        "OR",
        "NOT",
        "USING",
        "STOP",
        "AFTER",
        "WEIGHT",
    }
)

_TOKEN_SPEC = (
    ("WHITESPACE", r"\s+"),
    ("NUMBER", r"\d+(\.\d+)?"),
    ("STRING", r"'(?:[^'\\]|\\.)*'"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_\-]*"),
    ("STAR", r"\*"),
    ("EQUALS", r"="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
)

_MASTER = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (for error messages)."""

    kind: str
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()


def tokenize(text: str) -> List[Token]:
    """Tokenize query text, raising QuerySyntaxError on stray characters.

    Identifiers matching a keyword are re-tagged with the keyword as
    their kind (keywords are case-insensitive).
    """
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _MASTER.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r} at position {position}"
            )
        kind = match.lastgroup or ""
        lexeme = match.group()
        if kind != "WHITESPACE":
            if kind == "IDENT" and lexeme.upper() in KEYWORDS:
                kind = lexeme.upper()
            tokens.append(Token(kind, lexeme, position))
        position = match.end()
    tokens.append(Token("EOF", "", len(text)))
    return tokens
