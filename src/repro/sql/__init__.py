"""SQL-like front end for fuzzy queries (paper section 6): a small SQL
dialect with STOP AFTER (ranked results), USING (scoring function), and
WEIGHT (section-5 importance weights) extensions."""

from repro.sql.ast import AndExpr, NotExpr, OrExpr, Predicate, Statement
from repro.sql.compiler import (
    SCORING_REGISTRY,
    compile_sql,
    compile_statement,
    execute,
    lower_condition,
    resolve_scoring,
)
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse

__all__ = [
    "tokenize",
    "Token",
    "parse",
    "Statement",
    "Predicate",
    "AndExpr",
    "OrExpr",
    "NotExpr",
    "compile_statement",
    "compile_sql",
    "lower_condition",
    "execute",
    "resolve_scoring",
    "SCORING_REGISTRY",
]
