"""Parse-tree types for the SQL-like front end.

The parser produces a :class:`Statement`; the compiler lowers its
condition tree into :mod:`repro.core.query` nodes.  Keeping a separate
surface AST lets the compiler apply language-level rules (weight
normalization, USING distribution) without entangling the core query
model with syntax concerns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

Literal = Union[str, int, float]


@dataclass(frozen=True)
class Predicate:
    """``Attribute = literal`` with an optional WEIGHT annotation."""

    attribute: str
    target: Literal
    weight: Optional[float] = None


@dataclass(frozen=True)
class NotExpr:
    operand: "Condition"


@dataclass(frozen=True)
class AndExpr:
    operands: Tuple["Condition", ...]


@dataclass(frozen=True)
class OrExpr:
    operands: Tuple["Condition", ...]


Condition = Union[Predicate, NotExpr, AndExpr, OrExpr]


@dataclass(frozen=True)
class Statement:
    """A full parsed statement.

    ``columns`` is the projection list (None = ``*``: object ids and
    grades only); ``scoring_name`` is the USING clause (None = the
    semantics default); ``stop_after`` the requested k (None = caller's
    default).
    """

    table: str
    condition: Condition
    columns: Optional[Tuple[str, ...]] = None
    scoring_name: Optional[str] = None
    stop_after: Optional[int] = None
