"""Lowering parsed SQL statements to core queries, and execution.

Rules applied during lowering:

* a bare ``AND`` becomes :class:`~repro.core.query.And` (graded by the
  semantics' t-norm) unless either (a) any conjunct carries a WEIGHT —
  then the conjunction becomes a :class:`~repro.core.query.Weighted`
  node with the weights normalized to sum 1 (unweighted conjuncts share
  the leftover mass equally), or (b) a ``USING`` rule was given — then
  it becomes a :class:`~repro.core.query.Scored` node under that rule;
* ``OR`` / ``NOT`` lower directly;
* ``USING`` applies to the *top-level* connective only (matching how
  Garlic treated the merge as a single join-like operator).

:func:`execute` runs the lowered query on a middleware engine with the
statement's STOP AFTER as k.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.query import And, Atomic, Not, Or, Query, Scored, Weighted
from repro.core.result import TopKResult
from repro.errors import QuerySyntaxError
from repro.middleware.engine import MiddlewareEngine
from repro.scoring import conorms, means, tnorms
from repro.scoring.base import ScoringFunction
from repro.sql.ast import AndExpr, Condition, NotExpr, OrExpr, Predicate, Statement
from repro.sql.parser import parse

#: USING-clause names -> scoring functions.
SCORING_REGISTRY: Dict[str, ScoringFunction] = {
    "min": tnorms.MIN,
    "product": tnorms.PRODUCT,
    "lukasiewicz": tnorms.LUKASIEWICZ,
    "einstein": tnorms.EINSTEIN,
    "max": conorms.MAX,
    "mean": means.MEAN,
    "average": means.MEAN,
    "geometric-mean": means.GEOMETRIC_MEAN,
    "harmonic-mean": means.HARMONIC_MEAN,
    "median": means.MEDIAN,
}


def resolve_scoring(name: str) -> ScoringFunction:
    try:
        return SCORING_REGISTRY[name.lower()]
    except KeyError:
        raise QuerySyntaxError(
            f"unknown scoring function {name!r}; "
            f"available: {sorted(SCORING_REGISTRY)}"
        ) from None


def _normalize_weights(operands) -> Optional[tuple]:
    """Weights for a conjunction, or None when no WEIGHT appears.

    Explicit weights are taken as-is; conjuncts without a WEIGHT split
    the remaining mass equally.  The result is normalized to sum 1 (the
    convention of section 5).
    """
    explicit = [
        op.weight if isinstance(op, Predicate) else None for op in operands
    ]
    if all(w is None for w in explicit):
        return None
    stated = sum(w for w in explicit if w is not None)
    missing = sum(1 for w in explicit if w is None)
    if missing:
        leftover = max(0.0, 1.0 - stated)
        fill = leftover / missing
        weights = [w if w is not None else fill for w in explicit]
    else:
        weights = [w if w is not None else 0.0 for w in explicit]
    total = sum(weights)
    if total <= 0:
        raise QuerySyntaxError("WEIGHT annotations must not all be zero")
    return tuple(w / total for w in weights)


def lower_condition(
    condition: Condition, scoring: Optional[ScoringFunction] = None
) -> Query:
    """Lower a surface condition to a core query.

    ``scoring`` is the USING rule, applied to the top-level connective.
    """
    if isinstance(condition, Predicate):
        return Atomic(condition.attribute, condition.target)
    if isinstance(condition, NotExpr):
        return Not(lower_condition(condition.operand))
    if isinstance(condition, OrExpr):
        children = tuple(lower_condition(op) for op in condition.operands)
        if scoring is not None:
            return Scored(scoring, children)
        return Or(children)
    if isinstance(condition, AndExpr):
        children = tuple(lower_condition(op) for op in condition.operands)
        weights = _normalize_weights(condition.operands)
        if weights is not None:
            base = scoring if scoring is not None else tnorms.MIN
            return Weighted(children, weights, base)
        if scoring is not None:
            return Scored(scoring, children)
        return And(children)
    raise QuerySyntaxError(f"cannot lower condition {condition!r}")


def compile_statement(statement: Statement) -> Query:
    """The core query of a parsed statement."""
    scoring = (
        resolve_scoring(statement.scoring_name)
        if statement.scoring_name is not None
        else None
    )
    return lower_condition(statement.condition, scoring)


def compile_sql(text: str) -> Query:
    """Parse and lower in one step."""
    return compile_statement(parse(text))


def execute(
    text: str,
    engine: MiddlewareEngine,
    *,
    default_k: int = 10,
) -> TopKResult:
    """Parse, lower, and run a statement against a middleware engine.

    With a projection (``SELECT Artist, Title ...``) the answers are
    hydrated from the engine's relational subsystems: the result's
    ``extras["rows"]`` holds one dict per answer with the object id, the
    grade, and the requested columns.  A column unknown to every
    subsystem raises :class:`~repro.errors.QuerySyntaxError`.
    """
    statement = parse(text)
    query = compile_statement(statement)
    k = statement.stop_after if statement.stop_after is not None else default_k
    result = engine.top_k(query, k)
    if statement.columns is not None:
        rows = []
        seen_columns: set = set()
        for item in result.answers:
            attributes = engine.lookup_row(item.object_id)
            seen_columns.update(attributes)
            row = {"object_id": item.object_id, "grade": item.grade}
            for column in statement.columns:
                row[column] = attributes.get(column)
            rows.append(row)
        unknown = [c for c in statement.columns if rows and c not in seen_columns]
        if unknown:
            raise QuerySyntaxError(
                f"unknown column(s) {unknown}; available: {sorted(seen_columns)}"
            )
        result.extras["rows"] = rows
    return result
