"""Out-of-core columnar graded lists backed by ``numpy.memmap``.

The paper's middleware model puts no bound on subsystem size, but the
in-RAM :class:`~repro.core.sources.ArraySource` caps every benchmark
near N=10⁵–10⁶ (ROADMAP item 3).  :class:`MemmapSource` keeps the same
columnar layout — one ids column and one float64 grades column in
canonical ``(-grade, str(id))`` order, plus an id-sorted lookup copy for
random access — but on disk, mapped read-only into the address space.
Sorted access serves ``next_batch_columns`` straight off the primary
columns; random access is a binary search over the lookup columns
(``numpy.searchsorted``), so no Python-side dict of N entries is ever
built.  Peak RSS is then the touched pages, not the dataset.

Layout of a source directory::

    manifest.json     format marker, count, id dtype, file map
    ids.dat           object ids, canonical sorted order
    grades.dat        float64 grades, same order
    lookup_ids.dat    object ids, ascending by raw value
    lookup_grades.dat float64 grades, lookup order

The data files are raw little-endian array dumps (deliberately not
``.npy``: the repository's artifact guard rejects stray ``.npy`` files,
and the manifest already carries the dtype).  The manifest's file map
may alias entries — :func:`build_synthetic_memmap` writes ids in
ascending order with strictly decreasing grades, so the lookup columns
*are* the primary columns and the directory holds each column once.

Object ids are either all ``str`` (stored as a fixed-width ``<U`` column)
or all ``int`` (stored as ``int64``); grades are validated in one
vectorized pass at build time (:func:`~repro.core.sources.
validate_grade_array`), the same bulk check :class:`ArraySource` uses.
:func:`verify_memmap` re-checks an existing directory end to end —
manifest, file sizes, grade bounds and order, lookup order, id-multiset
agreement between the two orders, and a sampled cross-check that random
access agrees with sorted access.

Accounting and determinism are inherited wholesale: the cursor and the
:class:`~repro.core.sources.GradedSource` base class charge accesses
exactly as for every other backend, and the construction lexsort is the
one :class:`ArraySource` uses, so answers, tie-breaks, costs, and traces
are byte-identical across the two (the storage conformance suite
enforces this differentially).
"""

from __future__ import annotations

import json
import mmap as _mmap_module
import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.graded import GradedItem, GradedSet, ObjectId
from repro.core.sources import GradedSource, _fast_item, validate_grade_array
from repro.errors import StorageError, UnknownObjectError

try:  # pragma: no cover - numpy is a baked-in dependency in practice
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

#: manifest file name inside a source directory
MANIFEST_NAME = "manifest.json"
#: format marker checked on open; bump on incompatible layout changes
MEMMAP_FORMAT = "repro-memmap-v1"

_REQUIRED_FILES = ("ids", "grades", "lookup_ids", "lookup_grades")


def _require_numpy() -> None:
    if _np is None:  # pragma: no cover - numpy-less installs
        raise StorageError("the memmap storage backend requires numpy")


def _id_column(ids: List[ObjectId], name: str):
    """Ids as a typed numpy column; all-str or all-int only.

    Mixed or exotic id types have no stable fixed-width encoding, so the
    build rejects them loudly rather than guessing.
    """
    if all(isinstance(i, str) for i in ids):
        return _np.asarray(ids) if ids else _np.asarray([], dtype="<U1"), "str"
    if all(isinstance(i, int) and not isinstance(i, bool) for i in ids):
        return _np.asarray(ids, dtype=_np.int64), "int"
    raise StorageError(
        f"source {name!r}: memmap storage requires all-str or all-int "
        "object ids"
    )


def _open_column(path: str, dtype, count: int):
    """Map one raw column file read-only, checking its size first."""
    if not os.path.exists(path):
        raise StorageError(f"storage column missing: {path}")
    expected = count * dtype.itemsize
    actual = os.path.getsize(path)
    if actual != expected:
        raise StorageError(
            f"storage column {path} is {actual} bytes, expected {expected} "
            f"({count} x {dtype})"
        )
    if count == 0:
        return _np.empty(0, dtype=dtype)
    return _np.memmap(path, dtype=dtype, mode="r", shape=(count,))


def _advise_random(column) -> None:
    """Hint the kernel that ``column`` will be accessed randomly.

    Best-effort: plain ndarrays (empty columns) and platforms without
    ``mmap.madvise`` are silently left alone.
    """
    buffer = getattr(column, "_mmap", None)
    if buffer is None:
        return
    try:
        buffer.madvise(_mmap_module.MADV_RANDOM)
    except (AttributeError, OSError, ValueError):
        pass


class MemmapSource(GradedSource):
    """A graded list served from on-disk memory-mapped columns.

    Opens an existing directory written by :func:`build_memmap` (or
    :func:`build_synthetic_memmap`).  All four columns are mapped
    read-only; nothing is materialized up front, so opening an N=10⁸
    source is O(1) in memory and time.

    The class is a drop-in :class:`~repro.core.sources.ArraySource`
    replacement: same canonical order, same columnar fast path
    (``supports_columnar``), same accounting through the shared cursor
    and base-class access methods.
    """

    supports_columnar = True

    def __init__(self, directory: str, *, name: Optional[str] = None) -> None:
        _require_numpy()
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise StorageError(
                f"no memmap source at {directory!r} (missing {MANIFEST_NAME})"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"unreadable manifest {manifest_path}: {exc}") from exc
        if manifest.get("format") != MEMMAP_FORMAT:
            raise StorageError(
                f"{manifest_path}: unsupported format "
                f"{manifest.get('format')!r} (expected {MEMMAP_FORMAT!r})"
            )
        try:
            count = int(manifest["count"])
            id_kind = manifest["id_kind"]
            id_dtype = _np.dtype(manifest["id_dtype"])
            files = manifest["files"]
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed manifest {manifest_path}: {exc}") from exc
        if count < 0 or id_kind not in ("str", "int"):
            raise StorageError(f"malformed manifest {manifest_path}")
        missing = [key for key in _REQUIRED_FILES if key not in files]
        if missing:
            raise StorageError(
                f"manifest {manifest_path} lacks file entries: {missing}"
            )
        super().__init__(name if name is not None else manifest.get("name", "memmap"))
        self.directory = directory
        self._count = count
        self._id_kind = id_kind
        grade_dtype = _np.dtype(_np.float64)
        self._sorted_ids = _open_column(
            os.path.join(directory, files["ids"]), id_dtype, count
        )
        self._sorted_grades = _open_column(
            os.path.join(directory, files["grades"]), grade_dtype, count
        )
        self._lookup_ids = _open_column(
            os.path.join(directory, files["lookup_ids"]), id_dtype, count
        )
        self._lookup_grades = _open_column(
            os.path.join(directory, files["lookup_grades"]), grade_dtype, count
        )
        # Random probes binary-search the lookup columns, so sequential
        # readahead (the kernel default) faults in pages that will never
        # be read and inflates the resident set far past the true working
        # set.  MADV_RANDOM keeps each probe to the pages it touches.
        for column in (self._lookup_ids, self._lookup_grades):
            _advise_random(column)
        #: sorted-prefix depth already touched by :meth:`prefetch_sorted`
        self._warmed = 0

    # -- sorted access ---------------------------------------------------------
    def _item_at(self, index: int) -> Optional[GradedItem]:
        if 0 <= index < self._count:
            return _fast_item(
                self._sorted_ids[index].item(),
                float(self._sorted_grades[index]),
            )
        return None

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        ids = self._sorted_ids[start : start + count].tolist()
        grades = self._sorted_grades[start : start + count].tolist()
        return [_fast_item(obj, grade) for obj, grade in zip(ids, grades)]

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        return self._items_range(start, count)

    def _columns_range(self, start: int, count: int) -> Tuple[List[ObjectId], "object"]:
        """Raw columnar sorted prefix, straight off the mapped files.

        ``tolist()`` converts the id column to plain Python ``str``/
        ``int`` values, so everything downstream (dict keys, traces,
        JSON) sees the same objects as with the in-RAM backends.
        """
        return (
            self._sorted_ids[start : start + count].tolist(),
            self._sorted_grades[start : start + count],
        )

    # -- random access ---------------------------------------------------------
    def _lookup_index(self, object_id: ObjectId) -> Optional[int]:
        """Position of ``object_id`` in the lookup columns, or None."""
        if self._count == 0:
            return None
        if self._id_kind == "str":
            if not isinstance(object_id, str):
                return None
            probe = object_id
        else:
            if not isinstance(object_id, int) or isinstance(object_id, bool):
                return None
            probe = object_id
        try:
            index = int(_np.searchsorted(self._lookup_ids, probe))
        except (OverflowError, ValueError):  # e.g. int beyond int64
            return None
        if index < self._count and self._lookup_ids[index].item() == object_id:
            return index
        return None

    def _grade_of(self, object_id: ObjectId) -> float:
        index = self._lookup_index(object_id)
        if index is None:
            raise UnknownObjectError(
                f"source {self.name!r} holds no object {object_id!r}"
            )
        return float(self._lookup_grades[index])

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        ids = list(object_ids)
        if not ids:
            return {}
        want_str = self._id_kind == "str"
        typed = all(
            isinstance(i, str) if want_str
            else (isinstance(i, int) and not isinstance(i, bool))
            for i in ids
        )
        if not typed or self._count == 0:
            # a wrongly-typed probe can only be an unknown object
            return {object_id: self._grade_of(object_id) for object_id in ids}
        probe = _np.asarray(ids) if want_str else _np.asarray(ids, dtype=_np.int64)
        indices = _np.searchsorted(self._lookup_ids, probe)
        clipped = _np.minimum(indices, self._count - 1)
        found = (indices < self._count) & (self._lookup_ids[clipped] == probe)
        if not bool(found.all()):
            missing = ids[int(_np.argmin(found))]
            raise UnknownObjectError(
                f"source {self.name!r} holds no object {missing!r}"
            )
        grades = self._lookup_grades[clipped]
        return dict(zip(ids, grades.tolist()))

    # -- hints -----------------------------------------------------------------
    def prefetch_sorted(self, depth: int, *, executor=None) -> None:
        """Fault in the sorted-prefix pages up to ``depth`` items.

        Free and idempotent: a watermark remembers the touched depth, so
        repeated per-round hints each read only the new tail.  The grade
        pages are read in full (they feed the arithmetic); the id pages
        are sampled one element per page.
        """
        stop = min(depth, self._count)
        if stop <= self._warmed:
            return
        start, self._warmed = self._warmed, stop
        float(_np.sum(self._sorted_grades[start:stop]))
        step = max(1, 4096 // max(1, self._sorted_ids.dtype.itemsize))
        _ = _np.asarray(self._sorted_ids[start:stop:step])

    # -- conveniences ----------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the mapped columns."""
        return self._sorted_ids is None

    def close(self) -> None:
        """Release the mapped columns and their file handles.

        Idempotent.  After close the source must not be accessed; the
        engine calls this from :meth:`MiddlewareEngine.close` so a
        session's memmap handles do not linger until garbage collection
        (which can pin gigabytes of page cache and, on some platforms,
        block directory removal).
        """
        for attribute in (
            "_sorted_ids",
            "_sorted_grades",
            "_lookup_ids",
            "_lookup_grades",
        ):
            column = getattr(self, attribute, None)
            setattr(self, attribute, None)
            if column is None:
                continue
            buffer = getattr(column, "_mmap", None)
            del column
            if buffer is not None:
                try:
                    buffer.close()
                except (BufferError, ValueError):
                    # another live view still references the map; the
                    # buffer closes when that view is collected
                    pass

    def verify(self) -> Dict[str, object]:
        """Run the full :func:`verify_memmap` suite on this directory."""
        return verify_memmap(self.directory)


def build_memmap(
    directory: str,
    object_ids: Sequence[ObjectId],
    grades,
    *,
    name: str = "memmap",
) -> MemmapSource:
    """Write a :class:`MemmapSource` directory and open it.

    Grades are validated in one vectorized pass ([0, 1], finite);
    ordering is the canonical construction lexsort — descending grade,
    ties by ascending ``str(id)`` — exactly as :class:`ArraySource`
    computes it, so the two backends are interchangeable
    object-for-object.  Ids must be all-str or all-int and distinct.

    The build materializes the columns in RAM once (it is a loading
    tool, not a query path); for datasets too large for that, write the
    columns incrementally like :func:`build_synthetic_memmap` does.
    """
    _require_numpy()
    ids = list(object_ids)
    values = validate_grade_array(grades, name)
    if len(ids) != values.shape[0]:
        raise StorageError(
            f"source {name!r}: expected one grade per object, got "
            f"{len(ids)} ids and shape {values.shape} grades"
        )
    ids_column, id_kind = _id_column(ids, name)
    if len(ids) > 1:
        lookup_order = _np.argsort(ids_column, kind="stable")
        lookup_ids = ids_column[lookup_order]
        if bool((lookup_ids[1:] == lookup_ids[:-1]).any()):
            where = int(_np.argmax(lookup_ids[1:] == lookup_ids[:-1]))
            raise StorageError(
                f"source {name!r}: duplicate object id "
                f"{lookup_ids[where].item()!r}"
            )
        lookup_grades = values[lookup_order]
    else:
        lookup_ids, lookup_grades = ids_column, values
    if id_kind == "str":
        tie_break = ids_column
    else:
        tie_break = _np.asarray([str(i) for i in ids]) if ids else ids_column
    order = _np.lexsort((tie_break, -values)) if len(ids) else _np.empty(0, _np.intp)
    sorted_ids = ids_column[order]
    sorted_grades = values[order]

    os.makedirs(directory, exist_ok=True)
    sorted_ids.tofile(os.path.join(directory, "ids.dat"))
    sorted_grades.tofile(os.path.join(directory, "grades.dat"))
    lookup_ids.tofile(os.path.join(directory, "lookup_ids.dat"))
    lookup_grades.tofile(os.path.join(directory, "lookup_grades.dat"))
    _write_manifest(
        directory,
        name=name,
        count=len(ids),
        id_kind=id_kind,
        id_dtype=sorted_ids.dtype.str,
        files={
            "ids": "ids.dat",
            "grades": "grades.dat",
            "lookup_ids": "lookup_ids.dat",
            "lookup_grades": "lookup_grades.dat",
        },
    )
    return MemmapSource(directory)


def open_memmap(directory: str, *, name: Optional[str] = None) -> MemmapSource:
    """Open an existing memmap source directory."""
    return MemmapSource(directory, name=name)


def build_from_items(
    directory: str,
    items: Union[GradedSet, Mapping[ObjectId, float], Iterable[Tuple[ObjectId, float]]],
    *,
    name: str = "memmap",
) -> MemmapSource:
    """:func:`build_memmap` over the mapping shapes ListSource accepts."""
    if isinstance(items, GradedSet):
        mapping: Dict[ObjectId, float] = items.as_dict()
    elif isinstance(items, Mapping):
        mapping = dict(items)
    else:
        mapping = dict(items)
    return build_memmap(
        directory, list(mapping.keys()), list(mapping.values()), name=name
    )


def build_synthetic_memmap(
    directory: str,
    count: int,
    *,
    name: str = "synthetic",
    chunk: int = 1 << 22,
) -> MemmapSource:
    """Write an N-object synthetic source in O(chunk) memory.

    Ids are ``0..count-1`` (int64, ascending) and grades are the
    strictly decreasing sequence ``(count - i) / (count + 1)`` — distinct
    in float64 up to beyond N=10⁸, so there are no ties and the
    ascending-id order *is* the canonical sorted order.  That makes the
    lookup order coincide with the primary order, and the manifest
    aliases the lookup columns onto the primary files: an N=10⁸ source
    costs two columns on disk (~1.6 GB), not four.

    This is the 10⁸ spot-check builder for benchmark E24; it never holds
    more than ``chunk`` elements in RAM.
    """
    _require_numpy()
    if count < 0:
        raise StorageError(f"count must be >= 0, got {count}")
    os.makedirs(directory, exist_ok=True)
    denominator = float(count + 1)
    with open(os.path.join(directory, "ids.dat"), "wb") as ids_file, open(
        os.path.join(directory, "grades.dat"), "wb"
    ) as grades_file:
        for start in range(0, count, chunk):
            stop = min(start + chunk, count)
            block = _np.arange(start, stop, dtype=_np.int64)
            block.tofile(ids_file)
            ((count - block) / denominator).tofile(grades_file)
    _write_manifest(
        directory,
        name=name,
        count=count,
        id_kind="int",
        id_dtype=_np.dtype(_np.int64).str,
        files={
            "ids": "ids.dat",
            "grades": "grades.dat",
            # ascending ids with strictly decreasing grades: lookup
            # order == sorted order, so the columns are shared.
            "lookup_ids": "ids.dat",
            "lookup_grades": "grades.dat",
        },
    )
    return MemmapSource(directory)


def _write_manifest(directory: str, **fields) -> None:
    """Write the manifest atomically (tmp file + rename), last.

    The manifest is the commit record: a crashed build leaves data files
    but no manifest, and :class:`MemmapSource` refuses to open that.
    """
    manifest = {"format": MEMMAP_FORMAT, "version": 1}
    manifest.update(fields)
    tmp_path = os.path.join(directory, MANIFEST_NAME + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, os.path.join(directory, MANIFEST_NAME))


def verify_memmap(
    directory: str, *, chunk: int = 1 << 20, samples: int = 1024
) -> Dict[str, object]:
    """End-to-end integrity check of a memmap source directory.

    Verifies, in order: the manifest and file sizes (by opening), grade
    bounds/finiteness and nonincreasing sorted order, strictly
    increasing lookup ids (which also proves id uniqueness), lookup
    grade bounds, id-multiset agreement between the sorted and lookup
    orders, and a sampled cross-check that random access returns exactly
    the grade sorted access delivers.  Scans run in ``chunk``-sized
    slices so verification of an out-of-core source stays out-of-core
    (except the multiset check, which sorts the id column once).

    Raises :class:`~repro.errors.StorageError` on the first violation;
    returns a small report dict when everything holds.
    """
    source = MemmapSource(directory)
    count = len(source)
    checks: List[str] = ["manifest", "file-sizes"]

    previous = None
    for start in range(0, count, chunk):
        block = _np.asarray(source._sorted_grades[start : start + chunk])
        bad = ~((block >= 0.0) & (block <= 1.0))
        if bool(bad.any()):
            where = start + int(_np.argmax(bad))
            raise StorageError(
                f"{directory}: grade {block[where - start]!r} at sorted "
                f"position {where} is outside [0, 1]"
            )
        if previous is not None and block.size and block[0] > previous:
            raise StorageError(
                f"{directory}: sorted grades increase at position {start}"
            )
        rising = block[1:] > block[:-1]
        if bool(rising.any()):
            where = start + int(_np.argmax(rising))
            raise StorageError(
                f"{directory}: sorted grades increase at position {where + 1}"
            )
        if block.size:
            previous = block[-1]
    checks.append("grades-sorted-nonincreasing")

    previous_id = None
    for start in range(0, count, chunk):
        block = source._lookup_ids[start : start + chunk]
        if previous_id is not None and block.size and not previous_id < block[0]:
            raise StorageError(
                f"{directory}: lookup ids not strictly increasing at "
                f"position {start}"
            )
        rising = block[1:] <= block[:-1]
        if bool(rising.any()):
            where = start + int(_np.argmax(rising))
            raise StorageError(
                f"{directory}: lookup ids not strictly increasing at "
                f"position {where + 1}"
            )
        grades = _np.asarray(source._lookup_grades[start : start + chunk])
        if bool((~((grades >= 0.0) & (grades <= 1.0))).any()):
            raise StorageError(
                f"{directory}: lookup grade outside [0, 1] near position {start}"
            )
        if block.size:
            previous_id = block[-1]
    checks.append("lookup-strictly-increasing")

    # Same id multiset in both orders (lookup ids are unique, so this
    # proves the two views describe the same objects).  One sort of the
    # primary id column; the only step that is not O(chunk) in memory.
    if source._sorted_ids is not source._lookup_ids:
        sorted_view = _np.sort(_np.asarray(source._sorted_ids))
        for start in range(0, count, chunk):
            lhs = sorted_view[start : start + chunk]
            rhs = source._lookup_ids[start : start + chunk]
            if not bool((lhs == rhs).all()):
                raise StorageError(
                    f"{directory}: sorted and lookup columns disagree on the "
                    f"object-id multiset near position {start}"
                )
        del sorted_view
    checks.append("id-multiset-agreement")

    if count:
        positions = _np.unique(
            _np.linspace(0, count - 1, num=min(samples, count)).astype(_np.int64)
        )
        for position in positions.tolist():
            object_id = source._sorted_ids[position].item()
            expected = float(source._sorted_grades[position])
            actual = source._grade_of(object_id)
            if actual != expected:
                raise StorageError(
                    f"{directory}: random access for {object_id!r} returned "
                    f"{actual!r}, sorted position {position} says {expected!r}"
                )
    checks.append("random-vs-sorted-sample")

    return {
        "directory": directory,
        "name": source.name,
        "count": count,
        "id_kind": source._id_kind,
        "checks": checks,
    }
