"""Scatter-gather graded lists: K physical shards behind one source.

ROADMAP item 3's path to distribution: a :class:`ShardedSource` is a
:class:`~repro.core.sources.GradedSource` whose objects are
hash-partitioned across K physical shard sources (any backend — list,
array, memmap, even nested sharded).  Fagin–Lotem–Naor's optimality
results hold over the *abstract* sorted/random access model, so as long
as the merged cursor preserves exact grade order and exact accounting,
every algorithm keeps its guarantees while the physical layer changes
underneath.

Sorted access is an exact K-way grade-order merge.  Rather than a
per-item heap, the merge is columnar and batched: each shard's sorted
prefix is *peeked* (free, side-effect-free) into a per-shard buffer of
at least ``merge_block`` items, and one
:func:`~repro.kernels.merge_sorted_shard_blocks` lexsort — the same
``(-grade, str(id))`` key every ordering in the repo uses — merges the
buffers.  The merged prefix is only committed up to the *emit
threshold*: the smallest last-buffered key among shards that still have
unpeeked items, since any deeper position could still be preempted by
an unseen item.  The threshold shard's whole buffer commits each round,
so every round makes at least ``merge_block`` progress.  Committed
positions record their owning shard, which is what rolls charged sorted
accesses down to per-shard counters exactly.

Random access hash-routes to the owning shard in O(1) via the
partitioner's router (:func:`hash_router` — crc32, not Python's
randomized ``hash``); sources assembled from pre-existing shards
without a router fall back to probing shards in order.  Charges land on
the sharded source's own counter (the one algorithms and
:class:`~repro.core.cost.CostReport` see), and are *attributed* to the
owning shard's counter through the
:meth:`~repro.core.sources.GradedSource._attribute_random` hook, so::

    sum(shard.counter) == sharded.counter      (per access mode)

holds at every instant — the invariant the storage conformance suite
checks, and what EXPLAIN's shard breakdown reports.

``prefetch_sorted`` extends the merged prefix ahead of consumption and
is the scatter-gather parallelism hook: shard refills are fanned out on
a :class:`~repro.parallel.ParallelAccessExecutor` (each refill is a
pure read; buffer mutation happens on the coordinating thread after the
fan-out joins), so a memmap-backed shard set faults its pages in
concurrently.  Implicit refills during consumption run serial — they
can be triggered from inside another fan-out's worker thread, where
nesting on the same pool could deadlock.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.graded import GradedItem, GradedSet, ObjectId
from repro.core.sources import GradedSource, _fast_item
from repro.errors import AccessError, StorageError, UnknownObjectError
from repro.kernels import merge_sorted_shard_blocks
from repro.parallel import fan_out, raise_first_error

try:  # pragma: no cover - numpy is a baked-in dependency in practice
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

#: default per-shard buffer target for one merge round
DEFAULT_MERGE_BLOCK = 1024


def hash_router(shard_count: int) -> Callable[[ObjectId], int]:
    """Deterministic object→shard routing: ``crc32(str(id)) % K``.

    crc32 (not Python's ``hash``, which is randomized per process for
    strings) makes the placement stable across processes and sessions,
    so a partition written to disk today routes identically tomorrow.
    """
    if shard_count < 1:
        raise AccessError(f"shard_count must be >= 1, got {shard_count}")

    def route(object_id: ObjectId) -> int:
        return zlib.crc32(str(object_id).encode("utf-8")) % shard_count

    route.shard_count = shard_count
    return route


class ShardedSource(GradedSource):
    """One logical graded list scattered over K physical shards.

    ``shards`` are sources over *disjoint* object sets that together
    form the logical list; ``router`` (optional) maps an object id to
    its owning shard index for O(1) random access.  Use
    :meth:`partition` to build both consistently from one graded
    collection.

    The source is columnar (``supports_columnar``): the merged prefix
    lives in growing id/grade/shard columns, so the vector kernels read
    it exactly as they read an :class:`~repro.core.sources.ArraySource`.
    Shards of any backend work — the merge peeks them through their own
    free bulk paths.
    """

    supports_columnar = True

    def __init__(
        self,
        shards: Sequence[GradedSource],
        name: str = "sharded",
        *,
        router: Optional[Callable[[ObjectId], int]] = None,
        merge_block: int = DEFAULT_MERGE_BLOCK,
    ) -> None:
        if _np is None:  # pragma: no cover - numpy-less installs
            raise StorageError("the sharded storage backend requires numpy")
        if not shards:
            raise AccessError("ShardedSource requires at least one shard")
        if merge_block < 1:
            raise AccessError(f"merge_block must be >= 1, got {merge_block}")
        super().__init__(name)
        self._shards: List[GradedSource] = list(shards)
        self._router = router
        self._merge_block = merge_block
        self.supports_random_access = all(
            shard.supports_random_access for shard in self._shards
        )
        self.is_boolean = all(shard.is_boolean for shard in self._shards)
        self._total = sum(len(shard) for shard in self._shards)
        # merged prefix: parallel columns in canonical global order
        self._m_ids: List[ObjectId] = []
        self._m_grades = _np.empty(max(merge_block, 16), dtype=_np.float64)
        self._m_shard = _np.empty(max(merge_block, 16), dtype=_np.intp)
        self._m_count = 0
        # per-shard peek state: buffered-but-uncommitted prefix tails
        count = len(self._shards)
        self._peeked = [0] * count
        self._buf_ids: List[List[ObjectId]] = [[] for _ in range(count)]
        self._buf_strs: List[Optional[object]] = [None] * count
        self._buf_grades: List[Optional[object]] = [None] * count
        self._no_more = [len(shard) == 0 for shard in self._shards]
        self._done = self._total == 0

    # -- introspection ---------------------------------------------------------
    @property
    def shards(self) -> Tuple[GradedSource, ...]:
        return tuple(self._shards)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_stats(self) -> List[Dict[str, object]]:
        """Per-shard size and attributed access tallies (for EXPLAIN and
        trace shard breakdowns)."""
        return [
            {
                "shard": shard.name,
                "n": len(shard),
                "sorted": shard.counter.sorted_accesses,
                "random": shard.counter.random_accesses,
            }
            for shard in self._shards
        ]

    def close(self) -> None:
        """Close every physical shard that exposes ``close()``.

        Memmap shards release their mapped columns; in-RAM shards have
        nothing to release.  Idempotent, like the shard closes it
        forwards to.
        """
        for shard in self._shards:
            closer = getattr(shard, "close", None)
            if callable(closer):
                closer()

    # -- construction ----------------------------------------------------------
    @classmethod
    def partition(
        cls,
        items: Union[GradedSet, Mapping[ObjectId, float], Iterable[Tuple[ObjectId, float]]],
        shard_count: int,
        *,
        name: str = "sharded",
        backend: str = "array",
        directory: Optional[str] = None,
        merge_block: int = DEFAULT_MERGE_BLOCK,
    ) -> "ShardedSource":
        """Hash-partition one graded collection into ``shard_count``
        shards of the chosen backend and wrap them.

        The router used to scatter is the router kept for random-access
        gather, so the two can never disagree.  ``backend='memmap'``
        writes each shard under ``directory`` (required in that case).
        """
        from repro.storage import _build_backend_source

        if isinstance(items, GradedSet):
            mapping: Dict[ObjectId, float] = items.as_dict()
        elif isinstance(items, Mapping):
            mapping = dict(items)
        else:
            mapping = dict(items)
        router = hash_router(shard_count)
        ids_by_shard: List[List[ObjectId]] = [[] for _ in range(shard_count)]
        grades_by_shard: List[List[float]] = [[] for _ in range(shard_count)]
        for object_id, grade in mapping.items():
            shard = router(object_id)
            ids_by_shard[shard].append(object_id)
            grades_by_shard[shard].append(grade)
        shards = [
            _build_backend_source(
                ids_by_shard[index],
                grades_by_shard[index],
                f"{name}.s{index}",
                backend=backend,
                directory=None if directory is None else directory,
                subdir=f"shard{index}",
            )
            for index in range(shard_count)
        ]
        return cls(shards, name=name, router=router, merge_block=merge_block)

    # -- K-way merge -----------------------------------------------------------
    def _fetch_shard(self, index: int, want: int):
        """Peek the next ``want`` unbuffered items of one shard (pure)."""
        shard = self._shards[index]
        position = self._peeked[index]
        shard.prefetch_sorted(position + want)
        hook = getattr(shard, "_columns_range", None)
        if hook is not None:
            ids, grades = hook(position, want)
            grades = _np.asarray(grades, dtype=_np.float64)
        else:
            items = shard._peek_range(position, want)
            ids = [item.object_id for item in items]
            grades = _np.asarray(
                [item.grade for item in items], dtype=_np.float64
            )
        strs = _np.asarray([str(object_id) for object_id in ids]) if ids else None
        return ids, strs, grades

    def _merge_round(self, executor=None) -> None:
        """Refill shard buffers (optionally fanned out) and commit the
        provably-final merged prefix."""
        if self._done:
            return
        block = self._merge_block
        needy = [
            index
            for index in range(len(self._shards))
            if not self._no_more[index] and len(self._buf_ids[index]) < block
        ]
        if needy:
            wants = [block - len(self._buf_ids[index]) for index in needy]
            outcomes = fan_out(
                executor,
                [
                    (lambda i=index, w=want: self._fetch_shard(i, w))
                    for index, want in zip(needy, wants)
                ],
            )
            raise_first_error(outcomes)
            for index, want, outcome in zip(needy, wants, outcomes):
                ids, strs, grades = outcome.value
                if ids:
                    self._peeked[index] += len(ids)
                    if self._buf_ids[index]:
                        self._buf_ids[index].extend(ids)
                        self._buf_strs[index] = _np.concatenate(
                            [self._buf_strs[index], strs]
                        )
                        self._buf_grades[index] = _np.concatenate(
                            [self._buf_grades[index], grades]
                        )
                    else:
                        self._buf_ids[index] = list(ids)
                        self._buf_strs[index] = strs
                        self._buf_grades[index] = grades
                if len(ids) < want:
                    self._no_more[index] = True

        participating = [
            index for index in range(len(self._shards)) if self._buf_ids[index]
        ]
        if not participating:
            self._done = True
            return
        merged_ids, merged_grades, block_of = merge_sorted_shard_blocks(
            [self._buf_ids[index] for index in participating],
            [self._buf_strs[index] for index in participating],
            [self._buf_grades[index] for index in participating],
        )
        shard_of = _np.asarray(participating, dtype=_np.intp)[block_of]
        # Emit threshold: the smallest last-buffered key among shards
        # with unpeeked items — anything at or above it is final.
        active = [index for index in participating if not self._no_more[index]]
        if active:
            threshold_shard = min(
                active,
                key=lambda index: (
                    -float(self._buf_grades[index][-1]),
                    str(self._buf_strs[index][-1]),
                ),
            )
            positions = _np.nonzero(shard_of == threshold_shard)[0]
            cutoff = int(positions[-1]) + 1
        else:
            cutoff = len(merged_ids)
        self._append_merged(
            merged_ids[:cutoff], merged_grades[:cutoff], shard_of[:cutoff]
        )
        taken = _np.bincount(shard_of[:cutoff], minlength=len(self._shards))
        for index in participating:
            consumed = int(taken[index])
            if consumed:
                # Committed entries are exactly the buffer's prefix:
                # within a shard the canonical key strictly increases.
                self._buf_ids[index] = self._buf_ids[index][consumed:]
                self._buf_strs[index] = self._buf_strs[index][consumed:]
                self._buf_grades[index] = self._buf_grades[index][consumed:]
        if not active and not any(self._buf_ids):
            self._done = True

    def _append_merged(self, ids: List[ObjectId], grades, shard_of) -> None:
        added = len(ids)
        if not added:
            return
        needed = self._m_count + added
        capacity = self._m_grades.shape[0]
        if needed > capacity:
            new_capacity = max(needed, capacity * 2)
            grown_grades = _np.empty(new_capacity, dtype=_np.float64)
            grown_grades[: self._m_count] = self._m_grades[: self._m_count]
            self._m_grades = grown_grades
            grown_shard = _np.empty(new_capacity, dtype=_np.intp)
            grown_shard[: self._m_count] = self._m_shard[: self._m_count]
            self._m_shard = grown_shard
        self._m_grades[self._m_count : needed] = grades
        self._m_shard[self._m_count : needed] = shard_of
        self._m_ids.extend(ids)
        self._m_count = needed

    def _extend_merged(self, depth: int, executor=None) -> None:
        while self._m_count < depth and not self._done:
            self._merge_round(executor)

    # -- sorted access ---------------------------------------------------------
    def _item_at(self, index: int) -> Optional[GradedItem]:
        if index < 0 or index >= self._total:
            return None
        self._extend_merged(index + 1)
        return _fast_item(self._m_ids[index], float(self._m_grades[index]))

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        self._extend_merged(start + count)
        stop = min(start + count, self._m_count)
        if start >= stop:
            return []
        grades = self._m_grades[start:stop].tolist()
        return [
            _fast_item(object_id, grade)
            for object_id, grade in zip(self._m_ids[start:stop], grades)
        ]

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        # Peeks only grow the internal merge cache (the BatchedSource
        # precedent: cache growth is not a side effect callers observe).
        return self._items_range(start, count)

    def _columns_range(self, start: int, count: int) -> Tuple[List[ObjectId], "object"]:
        self._extend_merged(start + count)
        stop = min(start + count, self._m_count)
        if start >= stop:
            return [], _np.empty(0)
        return self._m_ids[start:stop], self._m_grades[start:stop]

    # -- random access ---------------------------------------------------------
    def _route(self, object_id: ObjectId) -> Optional[int]:
        if self._router is None:
            return None
        shard = self._router(object_id)
        if not 0 <= shard < len(self._shards):
            raise AccessError(
                f"source {self.name!r}: router sent {object_id!r} to shard "
                f"{shard}, which does not exist"
            )
        return shard

    def _find_owner(self, object_id: ObjectId) -> Optional[int]:
        """Owning shard index by (free) probing, routerless fallback."""
        for index, shard in enumerate(self._shards):
            try:
                shard._grade_of(object_id)
            except UnknownObjectError:
                continue
            return index
        return None

    def _grade_of(self, object_id: ObjectId) -> float:
        shard = self._route(object_id)
        if shard is not None:
            try:
                return self._shards[shard]._grade_of(object_id)
            except UnknownObjectError:
                pass
        else:
            owner = self._find_owner(object_id)
            if owner is not None:
                return self._shards[owner]._grade_of(object_id)
        raise UnknownObjectError(
            f"source {self.name!r} holds no object {object_id!r}"
        )

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        ids = list(object_ids)
        if self._router is None:
            return {object_id: self._grade_of(object_id) for object_id in ids}
        by_shard: Dict[int, List[ObjectId]] = {}
        for object_id in ids:
            by_shard.setdefault(self._route(object_id), []).append(object_id)
        gathered: Dict[ObjectId, float] = {}
        for shard, members in by_shard.items():
            try:
                gathered.update(self._shards[shard]._grades_of_many(members))
            except UnknownObjectError:
                # re-probe one by one so the error names the missing id
                # with the logical source's name, not the shard's
                for object_id in members:
                    gathered[object_id] = self._grade_of(object_id)
        # request order, like every other backend's bulk form
        return {object_id: gathered[object_id] for object_id in ids}

    # -- accounting attribution ------------------------------------------------
    def _attribute_sorted(self, start: int, count: int) -> None:
        self._extend_merged(start + count)
        stop = min(start + count, self._m_count)
        if start >= stop:
            return
        taken = _np.bincount(
            self._m_shard[start:stop], minlength=len(self._shards)
        )
        for index, consumed in enumerate(taken.tolist()):
            if consumed:
                self._shards[index].counter.record_sorted(consumed)

    def _attribute_random(self, object_ids: Sequence[ObjectId]) -> None:
        counts: Dict[int, int] = {}
        for object_id in object_ids:
            shard = self._route(object_id)
            if shard is None:
                shard = self._find_owner(object_id)
            if shard is not None:
                counts[shard] = counts.get(shard, 0) + 1
        for shard, probes in counts.items():
            self._shards[shard].counter.record_random(probes)

    # -- hints -----------------------------------------------------------------
    def prefetch_sorted(self, depth: int, *, executor=None) -> None:
        """Extend the merged prefix to ``depth``, fanning per-shard
        refills (and each shard's own prefetch) out on ``executor``.

        This is the scatter-gather parallel path: refills are pure reads
        joined before any buffer mutation, so it is safe under a real
        thread pool — but only when driven from the coordinating thread
        (nested fan-outs on one pool can deadlock, hence implicit
        refills during consumption stay serial).
        """
        self._extend_merged(min(depth, self._total), executor)

    # -- conveniences ----------------------------------------------------------
    def __len__(self) -> int:
        return self._total
