"""Physical storage backends behind the :class:`GradedSource` seam.

The paper's access model (sorted access + random access, section 4) is
deliberately abstract about the physical layer; this package provides
the out-of-core and scatter-gather implementations ROADMAP item 3 calls
for, behind the exact same seam the in-RAM backends use:

* :class:`~repro.storage.memmap.MemmapSource` — numpy-memmap columnar
  graded lists on disk (build/open/verify tooling in the same module);
* :class:`~repro.storage.sharded.ShardedSource` — one logical list over
  K physical shards with an exact K-way grade-order merge and
  hash-routed random access, per-shard accounting rolled up exactly.

:func:`build_column_sources` is the factory behind
:func:`repro.core.sources.sources_from_columns` ``backend=``/``shards=``
selection; it shares one hash assignment across all m columns so every
column partitions identically.  Conformance bar for everything here:
answers, tie-breaks, charged access counts, and traces byte-identical
across backends, shard counts, kernels, and worker counts.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.graded import ObjectId
from repro.core.sources import (
    BACKEND_CHOICES,
    ArraySource,
    GradedSource,
    ListSource,
    iter_wrapper_chain,
)
from repro.errors import AccessError, GradeError, StorageError
from repro.storage.memmap import (
    MemmapSource,
    build_from_items,
    build_memmap,
    build_synthetic_memmap,
    open_memmap,
    verify_memmap,
)
from repro.storage.sharded import ShardedSource, hash_router

try:  # pragma: no cover - numpy is a baked-in dependency in practice
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = [
    "BACKEND_CHOICES",
    "MemmapSource",
    "ShardedSource",
    "build_column_sources",
    "build_from_items",
    "build_memmap",
    "build_synthetic_memmap",
    "describe_source_storage",
    "hash_router",
    "open_memmap",
    "verify_memmap",
]


def _safe_subdir(label: str, index: int) -> str:
    """A filesystem-safe per-column directory name.

    Labels come from query atoms and may contain quotes, spaces, or
    separators; the column index keeps sanitized names unique.
    """
    cleaned = "".join(
        ch if ch.isalnum() or ch in "._-" else "_" for ch in label
    )
    return f"{index:02d}-{cleaned}" if cleaned else f"{index:02d}-col"


def _build_backend_source(
    object_ids: Sequence[ObjectId],
    grades,
    name: str,
    *,
    backend: str,
    directory: Optional[str],
    subdir: str,
) -> GradedSource:
    """One physical source of the chosen backend over parallel columns."""
    if backend == "array":
        return ArraySource.from_arrays(list(object_ids), grades, name=name)
    if backend == "list":
        values = grades.tolist() if hasattr(grades, "tolist") else list(grades)
        return ListSource(dict(zip(object_ids, values)), name=name)
    if backend == "memmap":
        if directory is None:
            raise StorageError(
                "the memmap backend needs a directory to build into"
            )
        return build_memmap(
            os.path.join(directory, subdir), object_ids, grades, name=name
        )
    raise AccessError(
        f"unknown source backend {backend!r}; use " + ", ".join(BACKEND_CHOICES)
    )


def build_column_sources(
    grades_by_object: Mapping[ObjectId, Sequence[float]],
    labels: Sequence[str],
    *,
    backend: str = "array",
    shards: int = 1,
    directory: Optional[str] = None,
) -> List[GradedSource]:
    """Build one source per grade column on the chosen physical backend.

    The storage-aware sibling of the array/list paths in
    :func:`repro.core.sources.sources_from_columns` (which delegates
    here exactly when ``backend='memmap'`` or ``shards > 1``).  With
    ``shards > 1`` every column is hash-partitioned with the *same*
    router and assignment, then wrapped in a
    :class:`~repro.storage.sharded.ShardedSource` per column.

    ``directory`` roots the on-disk layout for the memmap backend
    (``<directory>/<column>/[shard<i>/]``); when omitted a temporary
    directory is created and owned by the returned sources — it lives
    exactly as long as they do.
    """
    if backend not in BACKEND_CHOICES:
        raise AccessError(
            f"unknown source backend {backend!r}; use "
            + ", ".join(BACKEND_CHOICES)
        )
    if shards < 1:
        raise AccessError(f"shards must be >= 1, got {shards}")
    if _np is None:  # pragma: no cover - numpy-less installs
        raise StorageError("the storage backends require numpy")
    m = len(labels)
    if m == 0:
        return []
    objects = list(grades_by_object.keys())
    try:
        matrix = _np.asarray(
            [grades_by_object[obj] for obj in objects], dtype=_np.float64
        )
    except (TypeError, ValueError) as exc:
        raise GradeError(f"grades must be real numbers: {exc}") from exc
    owned = None
    if backend == "memmap" and directory is None:
        owned = tempfile.TemporaryDirectory(prefix="repro-storage-")
        directory = owned.name

    sources: List[GradedSource] = []
    if shards == 1:
        for index, label in enumerate(labels):
            sources.append(
                _build_backend_source(
                    objects,
                    matrix[:, index] if objects else _np.empty(0),
                    label,
                    backend=backend,
                    directory=directory,
                    subdir=_safe_subdir(label, index),
                )
            )
    else:
        # One assignment for all columns: every column scatters the same
        # object to the same shard index, so cross-column joins (the
        # algorithms' random-access phase) always route consistently.
        router = hash_router(shards)
        ids_by_shard: List[List[ObjectId]] = [[] for _ in range(shards)]
        rows_by_shard: List[List[int]] = [[] for _ in range(shards)]
        for row, object_id in enumerate(objects):
            shard = router(object_id)
            ids_by_shard[shard].append(object_id)
            rows_by_shard[shard].append(row)
        row_index = [
            _np.asarray(rows, dtype=_np.intp) for rows in rows_by_shard
        ]
        for index, label in enumerate(labels):
            shard_sources = [
                _build_backend_source(
                    ids_by_shard[shard],
                    matrix[row_index[shard], index]
                    if objects
                    else _np.empty(0),
                    f"{label}.s{shard}",
                    backend=backend,
                    directory=directory,
                    subdir=os.path.join(
                        _safe_subdir(label, index), f"shard{shard}"
                    ),
                )
                for shard in range(shards)
            ]
            sources.append(
                ShardedSource(shard_sources, name=label, router=router)
            )
    if owned is not None:
        for source in sources:
            source._owned_tmpdir = owned
    return sources


def describe_source_storage(source: GradedSource) -> Dict[str, object]:
    """Physical-storage summary of a (possibly wrapped) source.

    Walks the wrapper chain to the innermost backend and reports its
    kind, size, and — for sharded sources — the shard layout.  Consumed
    by the planner's plan summary and EXPLAIN's storage section.
    """
    chain = list(iter_wrapper_chain(source))
    inner = chain[-1]
    summary: Dict[str, object] = {
        "source": source.name,
        "backend": type(inner).__name__,
        "n": len(inner),
    }
    if isinstance(inner, ShardedSource):
        summary["shards"] = inner.shard_count
        summary["shard_backends"] = sorted(
            {type(shard).__name__ for shard in inner.shards}
        )
        summary["routed"] = inner._router is not None
    if isinstance(inner, MemmapSource):
        summary["directory"] = inner.directory
    index_stats = getattr(inner, "index_stats", None)
    if index_stats is not None:
        summary["index"] = index_stats()["index"]
    return summary
