"""Semantic top-k result cache with incremental re-answering.

Production traffic is dominated by repeated and near-duplicate ranked
queries, and the paper's graded model makes reuse principled: the top k
answers under a monotone rule are a *prefix* of the top k' answers for
any k' >= k (exact grades plus the repo's canonical total order — grade
descending, then ``str(object_id)`` ascending — make the ranking
algorithm-independent), and a finished NRA run's bound bookkeeping is a
certified continuation point for a deeper query (Fagin–Lotem–Naor's
resumption invariants).  :class:`QueryCache` exploits both, in three
tiers:

1. **Exact hit** — a query whose normalized plan and effective k match a
   cached fill replays the stored result: answers, cost report,
   algorithm, and sorted depth byte-identical to the cold run that
   filled the entry, while charging the repositories *zero* actual
   accesses.
2. **Prefix answering** — ``k < k'`` slices the cached top-k'.  The
   entry's certified tau (the k'-th grade recorded at fill time) bounds
   every non-member, so the slice is provably *a* correct top k: its
   grade multiset equals the oracle's exactly.  Which object represents
   a grade tied at the boundary follows the cached run — the paper
   permits arbitrary choice among equals, and cold runs at different k
   exercise that freedom too.  The served cost report is all-zero
   because nothing was touched.
3. **Warm-start resumption** — ``k > k'`` on an NRA plan feeds the
   fill run's snapshot (per-object known grades, cursor positions, list
   bottoms, stop-schedule position) back into the resumable
   :func:`~repro.core.threshold._nra_run` continuation.  The resumed
   run pays only the *marginal* accesses past the fill's depth, yet its
   access stream — and therefore the merged fill+marginal cost the
   result reports — is byte-identical to a cold run at the deeper k.

A fourth tier serves **θ-approximate** repeats: a θ > 1 fill's result is
stored under its own extended key together with its
:class:`~repro.core.result.ApproximationCertificate`, and a later
request at the *same k* whose requested θ' is at least the recorded
*achieved* ratio replays it (the certificate proves the cached answers
already meet the θ' guarantee).  Same-k only: a prefix of a θ-certified
set is *not* θ-certified (a strong answer inside the prefix proves
nothing about the weakly-bounded answers sliced off), and θ entries
carry no warm-start snapshots.  Exact (θ = 1) entries, by contrast,
serve *any* requested θ' through the tiers above — exact answers
trivially satisfy every θ ≥ 1.

**Keying.**  Entries are keyed on a normalized plan: the query AST with
children of symmetric connectives (And/Or under a symmetric rule,
Scored over a symmetric scoring function) put into canonical order, the
scoring-rule identity (class + parameter-bearing name), the fuzzy
semantics, and the preferred strategy.  ``A & B`` and ``B & A`` share an
entry under min; a :class:`~repro.core.query.Weighted` query never
reorders (Fagin–Wimmers weights are positional).

**Invalidation.**  Each entry pins its source bindings by identity
(innermost source of each wrapper chain) plus a physical detail
fingerprint — for memmap-backed sources the manifest's mtime and size,
for sharded sources the per-shard details.  A probe revalidates before
serving; any mismatch (engine ``invalidate()``, storage reconfiguration,
a rebuilt memmap directory) evicts the entry and reports ``"stale"``,
never a stale answer.  :meth:`QueryCache.invalidate` is the explicit
hook, per atom or wholesale.

Thread safety: a single lock guards the entry map and counters; entries
are immutable once stored and replaced wholesale, so readers never see
a torn entry.  Concurrent misses on one key fill independently and race
to store (deepest k wins); the duplicate work is bounded by the number
of racing threads and surfaced in the ``fill_races`` counter.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from repro.core.cost import AccessCounter, CostMeter, CostReport
from repro.core.graded import GradedSet
from repro.core.query import And, Atomic, Not, Or, Query, Scored, Weighted
from repro.core.result import TopKResult
from repro.core.sources import GradedSource, iter_wrapper_chain
from repro.scoring.base import FunctionScoring
from repro.scoring.zadeh import FuzzySemantics

__all__ = [
    "QueryCache",
    "CacheEntry",
    "SourceFingerprint",
    "plan_key",
    "key_digest",
    "fingerprint",
    "resume_from_snapshot",
]


# ----------------------------------------------------------------------
# Plan normalization
# ----------------------------------------------------------------------
def _rule_identity(rule) -> Tuple:
    """A hashable identity for a scoring rule.

    Catalog rules carry parameter-bearing names (``weighted[min](0.7,
    0.3)`` embeds its weights; ``owa[...]`` likewise), so class + name
    identifies them.  User-defined :class:`FunctionScoring` rules fall
    back to object identity: two distinct instances never alias — the
    safe direction for a cache — at the price of a miss when the same
    lambda is re-wrapped.
    """
    if isinstance(rule, FunctionScoring):
        return ("function", rule.name, id(rule))
    return (type(rule).__qualname__, rule.name)


def _child_keys(children, semantics, symmetric: bool) -> Tuple:
    keys = [_node_key(child, semantics) for child in children]
    if symmetric:
        # Canonical atom order: any total order works as long as it is
        # deterministic; repr of the (fully hashable) key tuples is.
        keys.sort(key=repr)
    return tuple(keys)


def _node_key(node: Query, semantics: FuzzySemantics) -> Tuple:
    if isinstance(node, Atomic):
        return ("atom", node.attribute, node._target_key())
    if isinstance(node, Not):
        return ("not", _node_key(node.child, semantics))
    if isinstance(node, And):
        return ("and",) + _child_keys(
            node.children, semantics, semantics.conjunction.is_symmetric
        )
    if isinstance(node, Or):
        return ("or",) + _child_keys(
            node.children, semantics, semantics.disjunction.is_symmetric
        )
    if isinstance(node, Scored):
        return ("scored", _rule_identity(node.scoring)) + _child_keys(
            node.children,
            semantics,
            getattr(node.scoring, "is_symmetric", False),
        )
    if isinstance(node, Weighted):
        # Weights are positional (Fagin–Wimmers): never reorder.
        return (
            "weighted",
            _rule_identity(node.base),
            tuple(node.weights),
        ) + _child_keys(node.children, semantics, False)
    return ("opaque", type(node).__qualname__, repr(node))


def plan_key(
    query: Query, semantics: FuzzySemantics, prefer=None
) -> Tuple:
    """The normalized-plan cache key for a query.

    Kernel choice, worker count, and storage backend are deliberately
    *not* part of the key: the conformance suites prove answers, costs,
    and traces byte-identical across all of them, so results cached
    under one configuration are valid under every other.
    """
    return (
        "v1",
        semantics.name,
        _rule_identity(semantics.conjunction),
        _rule_identity(semantics.disjunction),
        prefer.value if prefer is not None else None,
        _node_key(query, semantics),
    )


def key_digest(key: Tuple) -> str:
    """A short, process-independent digest of a cache key for traces.

    ``repr`` of the key is deterministic (strings, numbers, bytes —
    never ``hash()``, which PYTHONHASHSEED randomizes), so the digest is
    byte-stable across runs and safe to embed in golden traces.
    """
    return hashlib.sha1(repr(key).encode("utf-8")).hexdigest()[:12]


# ----------------------------------------------------------------------
# Source fingerprints
# ----------------------------------------------------------------------
def _innermost(source: GradedSource) -> GradedSource:
    node = source
    for node in iter_wrapper_chain(source):
        pass
    return node


def _detail_of(node) -> Tuple:
    directory = getattr(node, "directory", None)
    if directory is not None:
        # Memmap-backed: revalidate against the on-disk manifest, so a
        # rebuilt directory (new mtime or size) invalidates entries even
        # when the binding object is reused.
        from repro.storage.memmap import MANIFEST_NAME

        manifest = os.path.join(directory, MANIFEST_NAME)
        try:
            stat = os.stat(manifest)
        except OSError:
            return ("memmap", manifest, "missing", 0)
        return ("memmap", manifest, stat.st_mtime_ns, stat.st_size)
    shards = getattr(node, "shards", None)
    if shards is not None:
        return ("sharded", tuple(_detail_of(shard) for shard in shards))
    return ("object", len(node))


class SourceFingerprint:
    """Identity + physical detail of one bound source at fill time.

    ``anchor`` is a strong reference to the innermost source of the
    binding's wrapper chain: holding it pins the object alive, so an
    identity match can never be an ``id()`` reuse after garbage
    collection.  Engine-side invalidation (``invalidate()``, storage or
    resilience reconfiguration) rebuilds bindings, the anchor no longer
    matches, and the entry reads as stale.
    """

    __slots__ = ("anchor", "detail")

    def __init__(self, anchor: GradedSource, detail: Tuple) -> None:
        self.anchor = anchor
        self.detail = detail

    def matches(self, source: GradedSource) -> bool:
        innermost = _innermost(source)
        if innermost is not self.anchor:
            return False
        return _detail_of(innermost) == self.detail


def fingerprint(source: GradedSource) -> SourceFingerprint:
    innermost = _innermost(source)
    return SourceFingerprint(innermost, _detail_of(innermost))


# ----------------------------------------------------------------------
# Entries
# ----------------------------------------------------------------------
class CacheEntry:
    """One cached fill: the certified answers plus resumable state.

    Immutable after construction; the cache replaces entries wholesale,
    so concurrent readers can use an entry without holding the cache
    lock.
    """

    __slots__ = (
        "key",
        "digest",
        "atoms",
        "atom_set",
        "fingerprints",
        "k",
        "n",
        "answers",
        "tau",
        "algorithm",
        "sorted_depth",
        "cost",
        "snapshot",
        "certificate",
        "grades_exact",
    )

    def __init__(
        self,
        *,
        key: Tuple,
        atoms: Sequence[Atomic],
        fingerprints: Sequence[Tuple[Atomic, SourceFingerprint]],
        k: int,
        n: int,
        answers: Tuple[Tuple[object, float], ...],
        algorithm: str,
        sorted_depth: int,
        cost: Dict[str, Tuple[int, int]],
        snapshot: Optional[Dict],
        certificate=None,
        grades_exact: bool = True,
    ) -> None:
        self.key = key
        self.digest = key_digest(key)
        self.atoms = tuple(atoms)
        self.atom_set = frozenset(atoms)
        self.fingerprints = tuple(fingerprints)
        self.k = k
        self.n = n
        self.answers = answers
        #: certified threshold: every object outside the cached top k'
        #: grades at or below the k'-th grade — the bound that makes
        #: prefix answers provably exact.
        self.tau = answers[-1][1] if answers else 1.0
        self.algorithm = algorithm
        self.sorted_depth = sorted_depth
        self.cost = cost
        self.snapshot = snapshot
        #: the fill run's ApproximationCertificate for θ-tier entries;
        #: None for exact entries.
        self.certificate = certificate
        self.grades_exact = grades_exact

    def cost_report(self) -> CostReport:
        """A fresh CostReport equal to the fill run's (never aliased)."""
        return CostReport(
            {
                name: AccessCounter(sorted_accesses, random_accesses)
                for name, (sorted_accesses, random_accesses) in self.cost.items()
            }
        )

    def zero_cost_report(self) -> CostReport:
        """All-zero tallies over the same sources (a prefix hit touches
        nothing)."""
        return CostReport({name: AccessCounter() for name in self.cost})


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class QueryCache:
    """Thread-safe LRU cache of certified top-k fills.

    ``stats()`` exposes probe-level counters: ``hits`` (exact + prefix),
    ``warm_hits``, ``misses``, ``stale`` (entry found but its source
    fingerprints no longer match — evicted, never served), ``fills``,
    ``fill_races`` (a concurrent fill already stored an entry at least
    as deep; the late result was discarded), ``evictions`` (LRU), and
    ``invalidations``.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.warm_hits = 0
        self.theta_hits = 0
        self.misses = 0
        self.stale = 0
        self.fills = 0
        self.fill_races = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "warm_hits": self.warm_hits,
                "theta_hits": self.theta_hits,
                "misses": self.misses,
                "stale": self.stale,
                "fills": self.fills,
                "fill_races": self.fill_races,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    # -- lookup --------------------------------------------------------
    def _validated(self, key: Tuple, atoms, sources) -> Optional[CacheEntry]:
        """The entry for ``key`` if its fingerprints still hold, else
        None (the entry is evicted and counted stale)."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            return None
        current = dict(zip(atoms, sources))
        for atom, stored in entry.fingerprints:
            source = current.get(atom)
            if source is None or not stored.matches(source):
                with self._lock:
                    if self._entries.get(key) is entry:
                        del self._entries[key]
                    self.stale += 1
                return None
        return entry

    def probe(
        self, key: Tuple, k: int, atoms, sources, *, tracer=None, theta: float = 1.0
    ) -> Tuple[Optional[TopKResult], str]:
        """Tier-1/2 (and, for θ > 1, θ-tier) lookup: ``(result, status)``.

        ``status`` is ``"exact"`` or ``"prefix"`` with a served result,
        ``"miss"`` (no entry, or the entry is too shallow — the caller
        may still warm-start), or ``"stale"`` (entry evicted after a
        fingerprint mismatch).  A served result is freshly built on
        every call; callers may mutate it freely.

        ``theta`` is the request's approximation knob.  Exact entries
        serve any θ (an exact answer satisfies every θ ≥ 1), so the
        tier-1/2 lookup runs first regardless; only when it misses and
        ``theta > 1.0`` is the same-k θ-certified entry considered, and
        it serves (status ``"theta"``) exactly when its recorded
        *achieved* ratio is ≤ the requested θ.  A θ = 1.0 probe never
        touches θ entries, so exact traffic is byte-identical to a
        cache that never stored one.
        """
        with self._lock:
            present = key in self._entries
        entry = self._validated(key, atoms, sources)
        if entry is not None:
            k_eff = min(k, entry.n)
            if k_eff <= entry.k:
                tier = "exact" if k_eff == entry.k else "prefix"
                with self._lock:
                    if self._entries.get(key) is entry:
                        self._entries.move_to_end(key)
                    self.hits += 1
                result = self._served(entry, k_eff, tier)
                if tracer is not None:
                    tracer.event(
                        "cache",
                        tier=tier,
                        key=entry.digest,
                        k=k_eff,
                        k_cached=entry.k,
                        tau=entry.tau,
                    )
                return result, tier
        if theta > 1.0:
            served = self._probe_theta(
                key, k, atoms, sources, theta, tracer=tracer
            )
            if served is not None:
                return served, "theta"
        with self._lock:
            self.misses += 1
        return None, "stale" if (present and entry is None) else "miss"

    @staticmethod
    def _theta_key(key: Tuple, k_eff: int) -> Tuple:
        """The extended key a θ-certified fill at effective k lives under.

        θ entries are same-k only (slicing a θ-certified set is unsound),
        so the effective k is part of the key; the base plan key stays
        untouched — exact entries and θ entries never collide.
        """
        return key + ("theta", k_eff)

    def _probe_theta(
        self, key: Tuple, k: int, atoms, sources, theta: float, *, tracer=None
    ) -> Optional[TopKResult]:
        n = len(sources[0]) if sources else 0
        theta_key = self._theta_key(key, min(k, n) if n else k)
        entry = self._validated(theta_key, atoms, sources)
        if entry is None or entry.certificate is None:
            return None
        # Serve only when the recorded proof covers the request: every
        # cached answer is certified within ``achieved`` of anything
        # excluded, so any θ' >= achieved is satisfied.  An infinite
        # achieved ratio never qualifies.
        if not entry.certificate.achieved <= theta:
            return None
        with self._lock:
            if self._entries.get(theta_key) is entry:
                self._entries.move_to_end(theta_key)
            self.hits += 1
            self.theta_hits += 1
        result = self._served_theta(entry, theta)
        if tracer is not None:
            tracer.event(
                "cache",
                tier="theta",
                key=entry.digest,
                k=entry.k,
                k_cached=entry.k,
                tau=entry.tau,
                theta=theta,
                achieved=entry.certificate.achieved,
            )
        return result

    def _served_theta(self, entry: CacheEntry, theta: float) -> TopKResult:
        from dataclasses import replace

        certificate = replace(
            entry.certificate,
            theta=theta,
            intervals=(
                dict(entry.certificate.intervals)
                if entry.certificate.intervals is not None
                else None
            ),
        )
        result = TopKResult(
            answers=GradedSet(dict(entry.answers)),
            cost=entry.cost_report(),
            algorithm=entry.algorithm,
            sorted_depth=entry.sorted_depth,
            grades_exact=entry.grades_exact,
            approximation=certificate,
        )
        result.extras["cache"] = {
            "tier": "theta",
            "key": entry.digest,
            "k_cached": entry.k,
            "tau": entry.tau,
            "theta": theta,
            "achieved": entry.certificate.achieved,
        }
        return result

    def _served(self, entry: CacheEntry, k_eff: int, tier: str) -> TopKResult:
        if tier == "exact":
            answers = GradedSet(dict(entry.answers))
            cost = entry.cost_report()
        else:
            answers = GradedSet(dict(entry.answers[:k_eff]))
            cost = entry.zero_cost_report()
        result = TopKResult(
            answers=answers,
            cost=cost,
            algorithm=entry.algorithm,
            sorted_depth=entry.sorted_depth if tier == "exact" else 0,
            grades_exact=True,
        )
        result.extras["cache"] = {
            "tier": tier,
            "key": entry.digest,
            "k_cached": entry.k,
            "tau": entry.tau,
        }
        return result

    def warm_entry(
        self, key: Tuple, k: int, atoms, sources
    ) -> Optional[CacheEntry]:
        """The entry to warm-start from for a deeper-k NRA query, if any.

        Requires a resumable snapshot and the *same atom order* as the
        fill (the snapshot's per-list state is positional); symmetric
        reorderings still get tier 1/2 service but restart cold for
        deeper k.
        """
        entry = self._validated(key, atoms, sources)
        if entry is None or entry.snapshot is None:
            return None
        if min(k, entry.n) <= entry.k:
            return None
        if tuple(atoms) != entry.atoms:
            return None
        with self._lock:
            if self._entries.get(key) is entry:
                self._entries.move_to_end(key)
            self.warm_hits += 1
        return entry

    # -- fill ----------------------------------------------------------
    def store(
        self,
        key: Tuple,
        atoms,
        sources,
        result: TopKResult,
        *,
        snapshot: Optional[Dict] = None,
    ) -> bool:
        """Record a finished run.  Returns True when an entry was stored.

        Clean exact-grade results (no certificate) fill the tier-1/2/3
        entry for their plan key.  Clean θ-certified results fill a
        *θ entry* under the extended same-k key — answers, certificate,
        and cost, but never a warm-start snapshot (the continuation
        contract is exact-only).  Degraded runs, anytime stops, and
        uncertified inexact results are never cached.  False means a
        concurrent fill already stored something at least as good
        (counted ``fill_races``) or the result is not cacheable.
        """
        if result.degraded is not None:
            return False
        certificate = result.approximation
        if certificate is not None:
            if certificate.anytime:
                return False
            return self._store_theta(key, atoms, sources, result, certificate)
        if not result.grades_exact:
            return False
        entry = CacheEntry(
            key=key,
            atoms=atoms,
            fingerprints=[
                (atom, fingerprint(source))
                for atom, source in zip(atoms, sources)
            ],
            k=len(result.answers),
            n=len(sources[0]) if sources else 0,
            answers=tuple(
                (item.object_id, item.grade) for item in result.answers
            ),
            algorithm=result.algorithm,
            sorted_depth=result.sorted_depth,
            cost={
                name: (counter.sorted_accesses, counter.random_accesses)
                for name, counter in result.cost.per_source.items()
            },
            snapshot=snapshot if snapshot else None,
        )
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing.k >= entry.k:
                self.fill_races += 1
                return False
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.fills += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return True

    def _store_theta(
        self, key: Tuple, atoms, sources, result: TopKResult, certificate
    ) -> bool:
        """Record a clean θ-certified fill under its same-k extended key.

        A concurrent fill with a *tighter* achieved ratio wins (it can
        serve strictly more future θ' requests); an unprovable
        (infinite-ratio) certificate is never stored.
        """
        if not certificate.achieved < float("inf"):
            return False
        theta_key = self._theta_key(key, len(result.answers))
        entry = CacheEntry(
            key=theta_key,
            atoms=atoms,
            fingerprints=[
                (atom, fingerprint(source))
                for atom, source in zip(atoms, sources)
            ],
            k=len(result.answers),
            n=len(sources[0]) if sources else 0,
            answers=tuple(
                (item.object_id, item.grade) for item in result.answers
            ),
            algorithm=result.algorithm,
            sorted_depth=result.sorted_depth,
            cost={
                name: (counter.sorted_accesses, counter.random_accesses)
                for name, counter in result.cost.per_source.items()
            },
            snapshot=None,
            certificate=certificate,
            grades_exact=result.grades_exact,
        )
        with self._lock:
            existing = self._entries.get(theta_key)
            if (
                existing is not None
                and existing.certificate is not None
                and existing.certificate.achieved <= certificate.achieved
            ):
                self.fill_races += 1
                return False
            self._entries[theta_key] = entry
            self._entries.move_to_end(theta_key)
            self.fills += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return True

    # -- invalidation --------------------------------------------------
    def invalidate(self, atom: Optional[Atomic] = None) -> int:
        """Drop every entry touching ``atom`` (or all entries).  Returns
        the number of entries dropped."""
        with self._lock:
            if atom is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                doomed = [
                    key
                    for key, entry in self._entries.items()
                    if atom in entry.atom_set
                ]
                for key in doomed:
                    del self._entries[key]
                dropped = len(doomed)
            self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        self.invalidate()


# ----------------------------------------------------------------------
# Warm-start resumption
# ----------------------------------------------------------------------
def resume_from_snapshot(
    sources: Sequence[GradedSource],
    rule,
    k: int,
    snapshot: Dict,
    *,
    theta: float = 1.0,
    tracer=None,
    executor=None,
    kernel: Optional[str] = None,
    snapshot_out: Optional[Dict] = None,
) -> TopKResult:
    """Continue a finished NRA run at a deeper k from its snapshot.

    Cursors are re-created at the recorded positions *without* charging:
    the fill run already paid for that prefix, and the returned result's
    cost report covers only this continuation's marginal accesses (the
    engine merges the fill cost back in, so the total equals a cold
    run's).  ``initial_check=True`` replays the fill's final stop check
    first — the point where a cold deeper-k run would also test and
    fail — keeping the access stream byte-identical to cold.

    ``theta`` is the *new* request's approximation knob, not the
    fill's: snapshots are θ-agnostic resumable state (positions, known
    grades, schedule), and the replayed stop check — plus any
    certificate the continuation attaches — is evaluated fresh under
    this θ from the live bounds.  A θ > 1 resume therefore re-tightens
    (or re-relaxes) honestly rather than inheriting anything from the
    fill run.
    """
    from repro.core.threshold import _NraState, _nra_run
    from repro.kernels import resolve_kernel

    cursors = []
    for source, position in zip(sources, snapshot["positions"]):
        cursor = source.cursor()
        cursor.position = position
        cursors.append(cursor)
    states: Dict[object, _NraState] = {}
    for object_id, known in snapshot["states"].items():
        state = _NraState()
        state.known.update(known)
        states[object_id] = state
    return _nra_run(
        sources,
        rule,
        k,
        cursors=cursors,
        states=states,
        bottoms=list(snapshot["bottoms"]),
        exhausted=list(snapshot["exhausted"]),
        meter=CostMeter(sources),
        depth=snapshot["depth"],
        exact_grades=snapshot["exact_grades"],
        tol=snapshot["tol"],
        theta=theta,
        batch_size=snapshot["batch_size"],
        tracer=tracer,
        executor=executor,
        stop_check_growth=snapshot["stop_check_growth"],
        kernel=resolve_kernel(kernel, sources, rule),
        rounds=snapshot["rounds"],
        next_check=snapshot["next_check"],
        initial_check=True,
        snapshot_out=snapshot_out,
    )
