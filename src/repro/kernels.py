"""Vectorized columnar kernels for the algorithm hot loops.

The paper's algorithms (section 4) are bulk-synchronous: each round
performs m accesses and then re-evaluates bounds over everything seen so
far.  The scalar implementations keep that per-object state in
``_NraState`` dicts and score through ``ScoringFunction.__call__`` one
tuple at a time — O(seen * m) Python-level work per stop check.  This
module provides the columnar alternative: seen objects live in an
``[n_seen, m]`` float64 matrix (NaN marks a grade not yet learned), and
each stop check is a handful of numpy array operations via
``ScoringFunction.combine_matrix``.

Kernel selection
----------------
Three kernel names, resolved by :func:`resolve_kernel`:

``scalar``
    The original per-object code path.  Always available.
``vector``
    The numpy fast path.  Forcing it requires numpy; it works over any
    source (item-based fallbacks keep wrapper accounting intact).
``auto`` (the default)
    Picks ``vector`` exactly when it is both profitable and provably
    byte-identical: numpy importable, every source columnar
    (``supports_columnar``, i.e. a bare :class:`ArraySource`), and the
    rule natively batch-capable *and* batch-exact
    (:attr:`ScoringFunction.batch_exact`).  Otherwise ``scalar``.

Determinism contract
--------------------
The vector kernel is not "approximately" the scalar kernel: for
batch-exact rules it folds the same IEEE-754 operations in the same
order, orders answers with the same ``(-grade, str(object_id))`` key
(via ``numpy.lexsort``), and performs sorted/random accesses in the same
sequence — so answers, tie-breaks, charged access counts, traces, and
degradation behavior are byte-identical.  The conformance suite
(tests/core/test_kernel_conformance.py) enforces this differentially.

:func:`configure_kernel` sets the process-wide default used when an
algorithm is called without an explicit ``kernel=``; the engine and CLI
(``--kernel``) layer per-query overrides on top.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ReproError

try:  # numpy is optional: without it every kernel resolves to scalar
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: The kernel names accepted by ``configure_kernel`` / ``kernel=``.
KERNEL_CHOICES = ("auto", "vector", "scalar")

_default_kernel = "auto"


def configure_kernel(kernel: str = "auto") -> str:
    """Set the process-wide default kernel (``auto``/``vector``/``scalar``).

    Returns the installed name.  ``vector`` raises immediately when numpy
    is unavailable, rather than at first query.
    """
    global _default_kernel
    name = _validate_name(kernel)
    if name == "vector" and _np is None:  # pragma: no cover - numpy-free
        raise ReproError("kernel 'vector' requires numpy, which is not installed")
    _default_kernel = name
    return name


def default_kernel() -> str:
    """The process-wide default kernel name."""
    return _default_kernel


def _validate_name(kernel: str) -> str:
    if kernel not in KERNEL_CHOICES:
        raise ReproError(
            f"unknown kernel {kernel!r}; choose from {', '.join(KERNEL_CHOICES)}"
        )
    return kernel


def resolve_kernel(kernel: Optional[str], sources: Sequence, rule) -> str:
    """Resolve a kernel request to ``"vector"`` or ``"scalar"``.

    ``kernel=None`` means "use the configured default".  ``auto`` picks
    the vector kernel only when it is guaranteed byte-identical *and*
    actually fast: numpy present, a natively batch-exact rule, and all
    sources columnar.  Forcing ``vector`` bypasses the profitability
    checks (item-based fallbacks still keep it correct) but requires
    numpy.
    """
    name = _validate_name(kernel if kernel is not None else _default_kernel)
    if name == "scalar":
        return "scalar"
    if name == "vector":
        if _np is None:  # pragma: no cover - numpy-free installs
            raise ReproError(
                "kernel 'vector' requires numpy, which is not installed"
            )
        return "vector"
    # auto
    if _np is None:  # pragma: no cover - numpy-free installs
        return "scalar"
    if not (getattr(rule, "supports_batch", False) and getattr(rule, "batch_exact", False)):
        return "scalar"
    if not all(getattr(source, "supports_columnar", False) for source in sources):
        return "scalar"
    return "vector"


class GradeMatrix:
    """Columnar bookkeeping for seen objects: an [n_seen, m] grade matrix.

    Rows are assigned in first-seen order (mirroring the scalar code's
    dict-insertion order); NaN marks a grade not yet learned.  String
    object-id keys are cached per row because every ordering in the
    repo tie-breaks on ``str(object_id)`` ascending after grade
    descending (``GradedItem._sort_key``).
    """

    __slots__ = ("m", "count", "ids", "_rows", "_strs", "_matrix", "_str_cache")

    def __init__(self, m: int, capacity: int = 1024) -> None:
        self.m = m
        self.count = 0
        self.ids: List = []
        self._rows: Dict = {}
        self._strs: List[str] = []
        self._matrix = _np.full((max(capacity, 1), m), _np.nan)
        self._str_cache = None

    @classmethod
    def from_states(cls, states: Dict, m: int) -> "GradeMatrix":
        """Build a matrix from scalar ``_NraState`` bookkeeping (the
        degradation hand-off path), preserving insertion order."""
        matrix = cls(m, capacity=max(len(states), 16))
        for object_id, state in states.items():
            row = matrix.row_of(object_id)
            for column, grade in state.known.items():
                matrix._matrix[row, column] = grade
        return matrix

    def _ensure(self, needed: int) -> None:
        capacity = self._matrix.shape[0]
        if needed <= capacity:
            return
        grown = _np.full((max(needed, capacity * 2), self.m), _np.nan)
        grown[: self.count] = self._matrix[: self.count]
        self._matrix = grown

    def row_of(self, object_id) -> int:
        """The row for ``object_id``, assigning the next one if unseen."""
        row = self._rows.get(object_id)
        if row is None:
            row = self.count
            self._rows[object_id] = row
            self.ids.append(object_id)
            self._strs.append(str(object_id))
            self._ensure(row + 1)
            self.count = row + 1
            self._str_cache = None
        return row

    def __contains__(self, object_id) -> bool:
        return object_id in self._rows

    def set_grade(self, object_id, column: int, grade: float) -> None:
        # Resolve the row BEFORE indexing: row_of may reallocate _matrix.
        row = self.row_of(object_id)
        self._matrix[row, column] = grade

    def add_column_batch(self, column: int, ids: Sequence, grades) -> None:
        """Record a sorted-access batch: ``grades[i]`` for ``ids[i]`` in
        list ``column``.  Row creation follows delivery order."""
        row_of = self.row_of
        rows = _np.fromiter(
            (row_of(object_id) for object_id in ids),
            dtype=_np.intp,
            count=len(ids),
        )
        self._matrix[rows, column] = grades

    def known(self):
        """The live [count, m] view of the grade matrix."""
        return self._matrix[: self.count]

    def row(self, object_id):
        return self._matrix[self._rows[object_id]]

    def str_keys(self):
        """``str(object_id)`` per row, as a numpy array (cached)."""
        if self._str_cache is None or len(self._str_cache) != self.count:
            self._str_cache = _np.asarray(self._strs[: self.count])
        return self._str_cache

    def lower_bounds(self, rule):
        """Vectorized ``_NraState.lower``: missing grades pinned to 0."""
        known = self.known()
        return rule.combine_matrix(_np.where(_np.isnan(known), 0.0, known))

    def upper_bounds(self, rule, bottoms: Sequence[float]):
        """Vectorized ``_NraState.upper``: missing grades pinned to the
        per-list bottom grades (the best an unseen entry can still be)."""
        known = self.known()
        fill = _np.asarray(bottoms, dtype=_np.float64)
        return rule.combine_matrix(_np.where(_np.isnan(known), fill, known))

    def complete_mask(self):
        """True per row when every grade is known."""
        return ~_np.isnan(self.known()).any(axis=1)

    def top_order(self, scores):
        """Row indices sorted by the repo's canonical answer order:
        grade descending, then ``str(object_id)`` ascending — exactly
        ``GradedItem._sort_key``."""
        return _np.lexsort((self.str_keys(), -scores))

    def copy(self) -> "GradeMatrix":
        """A deep, independent snapshot of the seen set.

        The clone shares no mutable storage with the original: the
        backing array is reallocated, so growth on either side (``_ensure``
        replaces ``_matrix`` wholesale) can never write through to the
        other.  The stale-array-after-growth hazard that ``set_grade``
        documents applies equally to restored snapshots, which is why
        aliasing the array — even read-only at copy time — is not an
        option here.
        """
        clone = GradeMatrix.__new__(GradeMatrix)
        clone.m = self.m
        clone.count = self.count
        clone.ids = list(self.ids)
        clone._rows = dict(self._rows)
        clone._strs = list(self._strs)
        fresh = _np.full((max(self.count, 1), self.m), _np.nan)
        fresh[: self.count] = self._matrix[: self.count]
        clone._matrix = fresh
        clone._str_cache = None
        return clone

    def state_dict(self) -> Dict:
        """A plain-data snapshot: row ids plus a [count, m] grade list
        with ``None`` for unlearned cells.  Everything is built-in types,
        so the result can live in a cache entry or travel as JSON and be
        restored with :meth:`from_state_dict`."""
        known = self._matrix[: self.count].tolist()
        return {
            "m": self.m,
            "ids": list(self.ids),
            "grades": [
                [None if value != value else value for value in row]
                for row in known
            ],
        }

    @classmethod
    def from_state_dict(cls, state: Dict) -> "GradeMatrix":
        """Rebuild a matrix from :meth:`state_dict` output.  Rows are
        re-created in the recorded order, so first-seen row assignment —
        the property every ordering in the repo leans on — survives the
        round trip."""
        ids = state["ids"]
        matrix = cls(state["m"], capacity=max(len(ids), 16))
        for object_id, row_values in zip(ids, state["grades"]):
            row = matrix.row_of(object_id)
            for column, value in enumerate(row_values):
                if value is not None:
                    matrix._matrix[row, column] = value
        return matrix

    def flush_to_states(self, states: Dict, state_factory) -> None:
        """Write learned grades back into scalar ``_NraState`` dicts (the
        reverse hand-off, used when the caller keeps dict state — e.g.
        A0's ``_known`` after degrading to NRA).  New objects are
        appended in row order, which is delivery order."""
        for row, object_id in enumerate(self.ids):
            state = states.get(object_id)
            if state is None:
                state = states[object_id] = state_factory()
            known = state.known
            values = self._matrix[row]
            for column in range(self.m):
                value = values[column]
                if value == value:  # not NaN
                    known[column] = float(value)


def top_k_from_arrays(ids: Sequence, str_ids, grades, k: int) -> List:
    """The k best ``(object_id, grade)`` pairs under the canonical
    ``(-grade, str(object_id))`` order, via one lexsort — the vectorized
    equivalent of ``GradedSet(...).top(k)``."""
    order = _np.lexsort((str_ids, -grades))[:k]
    values = grades[order].tolist()
    return [(ids[row], values[i]) for i, row in enumerate(order.tolist())]


def iter_str_keys(ids: Iterable) -> "object":
    """``str()`` per object id, as a numpy array."""
    return _np.asarray([str(object_id) for object_id in ids])


def merge_sorted_shard_blocks(
    ids_per_shard: Sequence[Sequence],
    strs_per_shard: Sequence,
    grades_per_shard: Sequence,
):
    """K-way merge of per-shard sorted columnar blocks, columnar-side.

    Each shard contributes a block of its sorted prefix as parallel
    (ids, ``str(id)`` keys, float64 grades) columns, already in
    canonical order within the shard.  One ``lexsort`` over the
    concatenation — the same ``(-grade, str(id))`` key every ordering
    in the repo uses — yields the exact global sorted order, so a
    :class:`~repro.storage.sharded.ShardedSource` built over K shards
    delivers byte-identical answers and tie-breaks to the monolithic
    backend.  Returns ``(merged_ids, merged_grades, shard_of)`` where
    ``shard_of[i]`` is the index of the shard that owns position ``i``
    — the per-shard state the sharded cursor rolls access accounting up
    from.
    """
    shard_of = _np.concatenate(
        [
            _np.full(len(ids), index, dtype=_np.intp)
            for index, ids in enumerate(ids_per_shard)
        ]
    )
    grades = _np.concatenate(
        [_np.asarray(block, dtype=_np.float64) for block in grades_per_shard]
    )
    strs = _np.concatenate([_np.asarray(block) for block in strs_per_shard])
    flat_ids: List = []
    for block in ids_per_shard:
        flat_ids.extend(block)
    order = _np.lexsort((strs, -grades))
    merged_ids = [flat_ids[j] for j in order.tolist()]
    return merged_ids, grades[order], shard_of[order]
