"""The Boolean-conjunct-first strategy (section 4.1's Beatles example).

"Under the reasonable assumption that there are not many objects that
satisfy the first conjunct Artist='Beatles', a good way to evaluate this
query would be to first determine all objects that satisfy the first
conjunct (call this set of objects S), and then to obtain grades from
QBIC (using random access) for the second conjunct for all objects in S."

This strategy applies when one conjunct is *Boolean* (grades 0/1, e.g. a
relational predicate) and the scoring rule is min-like at zero — i.e.
``t(..., 0, ...) = 0``, which holds for every t-norm by A-conservation.
Then only objects in S can have nonzero overall grade:

* sorted access on the Boolean list until the grade drops below 1 yields
  S at cost ``|S| + 1``;
* random access on each fuzzy list for each member of S costs
  ``|S| * (m - 1)``;
* total cost ``|S| * m + 1`` — far below the ``Theta(sqrt(N))`` of A0
  when the predicate is selective (experiment E6).

If fewer than k objects score above zero, the remainder of the top k is
padded with zero-grade objects taken from the continuation of the
Boolean list's sorted stream (the paper permits arbitrary choice among
grade ties).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List, Sequence

from repro.core.cost import CostMeter
from repro.core.graded import GradedSet, ObjectId
from repro.core.result import TopKResult
from repro.core.sources import DEFAULT_BATCH_SIZE, GradedSource, check_same_objects
from repro.errors import PlanError
from repro.parallel import fan_out, raise_first_error
from repro.scoring.base import as_scoring_function


def boolean_first_top_k(
    sources: Sequence[GradedSource],
    scoring,
    k: int,
    *,
    boolean_index: int = 0,
    tracer=None,
    executor=None,
) -> TopKResult:
    """Top k answers by filtering on a Boolean conjunct first.

    ``boolean_index`` names the source whose grades are all 0 or 1.  The
    scoring rule must annihilate at zero (``t`` with any argument 0 is
    0); min, product, and every t-norm qualify, the arithmetic mean does
    not — the caller (normally the planner) is responsible for checking.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    rule = as_scoring_function(scoring)
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    m = len(sources)
    if not 0 <= boolean_index < m:
        raise PlanError(f"boolean_index {boolean_index} out of range for {m} sources")
    boolean = sources[boolean_index]
    others = [s for i, s in enumerate(sources) if i != boolean_index]
    meter = CostMeter(sources)

    # Phase 1: S = all objects satisfying the Boolean conjunct, read in
    # bulk: peek a window (free), find where the grade-1 prefix ends,
    # and consume exactly the items the item-at-a-time scan would have —
    # the |S| satisfying objects plus the one item that broke the run.
    satisfied: List[ObjectId] = []
    #: the item that broke the grade-1 run, if any — already consumed and
    #: paid for, so it is the first candidate for zero-padding below.
    run_breaker = None
    cursor = boolean.cursor()
    depth = 0
    scanning = True
    with nullcontext() if tracer is None else tracer.phase("boolean-scan"):
        while scanning:
            window = cursor.peek_batch(DEFAULT_BATCH_SIZE)
            if not window:
                break
            take = 0
            for item in window:
                take += 1
                if item.grade < 1.0:
                    scanning = False
                    break
            position = cursor.position
            consumed = cursor.next_batch(take)
            if tracer is not None:
                tracer.record_sorted_batch(boolean.name, consumed, position)
            depth = cursor.position
            for item in consumed:
                if item.grade >= 1.0:
                    satisfied.append(item.object_id)
                else:
                    run_breaker = item

    # Phase 2: random access to the fuzzy conjuncts, only for S — one
    # bulk request per fuzzy list (|S| accesses each, exactly what |S|
    # single probes would charge).
    overall = GradedSet()
    with nullcontext() if tracer is None else tracer.phase("random-fill"):
        outcomes = fan_out(
            executor,
            [(lambda s=source: s.random_access_many(satisfied)) for source in others],
            stop_on_error=True,
        )
        raise_first_error(outcomes)
        fetched = [outcome.value for outcome in outcomes]
        if tracer is not None:
            for source, grades_by_id in zip(others, fetched):
                for object_id in satisfied:
                    tracer.record_random(
                        source.name, object_id, grades_by_id[object_id]
                    )
        for object_id in satisfied:
            grades: List[float] = []
            other_iter = iter(fetched)
            for i in range(m):
                if i == boolean_index:
                    grades.append(1.0)
                else:
                    grades.append(next(other_iter)[object_id])
            overall[object_id] = rule(grades)

    # Phase 3: pad with zero-grade objects if the predicate was too
    # selective to fill k slots (their overall grade is exactly 0).
    # The run-breaking item from phase 1 pads for free (it was already
    # consumed and charged); after that, peek a window, find how many
    # items an item-at-a-time scan would consume before the set reaches
    # k, and consume exactly those.
    if len(overall) < k and run_breaker is not None:
        overall[run_breaker.object_id] = 0.0
    with nullcontext() if tracer is None else tracer.phase("zero-padding"):
        while len(overall) < k:
            window = cursor.peek_batch(k - len(overall))
            if not window:
                break
            take = 0
            added = 0
            for item in window:
                take += 1
                if item.object_id not in overall:
                    added += 1
                    if len(overall) + added >= k:
                        break
            position = cursor.position
            consumed = cursor.next_batch(take)
            if tracer is not None:
                tracer.record_sorted_batch(boolean.name, consumed, position)
            for item in consumed:
                if item.object_id not in overall:
                    overall[item.object_id] = 0.0
            depth = cursor.position

    return TopKResult(
        answers=overall.top(k),
        cost=meter.report(),
        algorithm="boolean-first",
        sorted_depth=depth,
        extras={"selected": len(satisfied)},
    )
