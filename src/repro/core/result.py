"""Shared result type for the top-k algorithms of section 4."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost import CostReport
from repro.core.graded import GradedSet


@dataclass
class TopKResult:
    """Outcome of one top-k evaluation.

    ``answers``
        The graded set of (up to) k best objects with their overall
        grades — the paper's "top k answers ... along with their grades".
    ``cost``
        Per-source access tallies for this run only.
    ``algorithm``
        Which strategy produced the result (for reports and benchmarks).
    ``sorted_depth``
        Deepest sorted-access position reached on any list; the quantity
        the O(N^{(m-1)/m} k^{1/m}) analysis tracks.
    ``grades_exact``
        True when every reported grade is the object's exact overall
        grade.  Only the no-random-access algorithm can return
        approximate grades (bounds); everything else is exact.
    ``restarts``
        Number of times a restarting strategy (filter-condition
        simulation) had to lower its threshold and rescan.
    """

    answers: GradedSet
    cost: CostReport
    algorithm: str
    sorted_depth: int = 0
    grades_exact: bool = True
    restarts: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def database_access_cost(self) -> int:
        return self.cost.database_access_cost

    def __repr__(self) -> str:
        return (
            f"TopKResult(algorithm={self.algorithm!r}, k={len(self.answers)}, "
            f"cost={self.cost.database_access_cost}, depth={self.sorted_depth})"
        )
