"""Shared result type for the top-k algorithms of section 4."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.cost import CostReport
from repro.core.graded import GradedSet, ObjectId


@dataclass
class DegradedResult:
    """Structured report of a degraded (but not aborted) evaluation.

    Produced when subsystem failures forced the running algorithm off
    its planned path — a random-access circuit opened and execution fell
    back to NRA-style sorted-only processing, or a source died entirely
    and only a partial answer is possible.

    ``failed_sources``
        Source name -> human-readable reason for each failure that
        shaped the result.
    ``fallback``
        What the execution degraded to (``"nra-sorted-only"`` when
        sorted streams sufficed, ``"partial-bounds"`` when they did not).
    ``complete``
        True when the reported answers are still provably the exact
        top k despite the failures; False for best-effort partials.
    ``bounds``
        NRA-style (lower, upper) overall-grade bounds for each reported
        answer.  When ``complete`` they coincide up to tolerance; for
        partials they bracket the true grade of each candidate.
    """

    failed_sources: Dict[str, str] = field(default_factory=dict)
    fallback: str = "nra-sorted-only"
    complete: bool = True
    bounds: Dict[ObjectId, Tuple[float, float]] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"DegradedResult(fallback={self.fallback!r}, "
            f"complete={self.complete}, "
            f"failed={sorted(self.failed_sources)})"
        )


def certified_ratio(kth_grade: float, bound: float) -> float:
    """The tightest provable approximation ratio for a stopped run.

    ``bound`` is the best overall grade any *unreported* object could
    still achieve when the run stopped; ``kth_grade`` the k-th best
    *proven* grade among the reported answers.  Every reported answer y
    and excluded object z then satisfy ``ratio * grade(y) >= grade(z)``
    for the true grades — the Fagin–Lotem–Naor θ-approximation
    guarantee.  A zero ``kth_grade`` with a positive ``bound`` proves
    nothing, so the ratio is honestly infinite.
    """
    if bound <= kth_grade:
        return 1.0
    if kth_grade <= 0.0:
        return float("inf")
    return bound / kth_grade


@dataclass
class ApproximationCertificate:
    """Proof object for a θ-approximate (or anytime) top-k answer.

    ``theta``
        The requested approximation factor (1.0 = exact).
    ``achieved``
        The certified ratio actually attained: for every reported
        answer y and every excluded object z, ``achieved * grade(y) >=
        grade(z)`` holds for the *true* overall grades.  On a clean
        θ-stop this is ≤ θ (up to the stop tolerance); on an anytime
        stop it is whatever the accumulated bounds prove — possibly
        worse than θ, possibly infinite.  It never overstates quality.
    ``kth_grade``
        The k-th best proven (lower-bound) grade among the answers at
        the moment the run stopped.
    ``bound``
        The stopping bound at that moment: TA's threshold τ, or NRA's
        best rival upper bound.
    ``intervals``
        Per-answer (lower, upper) brackets of the true overall grade —
        populated by NRA-θ, whose reported grades may be lower bounds;
        None for TA-θ, whose reported grades are exact.
    ``anytime``
        True when the run stopped because it *had* to (deadline blown,
        streams dead) rather than because the θ-stop test passed.
    """

    theta: float
    achieved: float
    kth_grade: float
    bound: float
    intervals: Optional[Dict[ObjectId, Tuple[float, float]]] = None
    anytime: bool = False

    @classmethod
    def build(
        cls,
        *,
        theta: float,
        kth_grade: float,
        bound: float,
        intervals: Optional[Dict[ObjectId, Tuple[float, float]]] = None,
        anytime: bool = False,
    ) -> "ApproximationCertificate":
        return cls(
            theta=theta,
            achieved=certified_ratio(kth_grade, bound),
            kth_grade=kth_grade,
            bound=bound,
            intervals=intervals,
            anytime=anytime,
        )

    def __repr__(self) -> str:
        return (
            f"ApproximationCertificate(theta={self.theta}, "
            f"achieved={self.achieved:.6g}, anytime={self.anytime})"
        )


@dataclass
class TopKResult:
    """Outcome of one top-k evaluation.

    ``answers``
        The graded set of (up to) k best objects with their overall
        grades — the paper's "top k answers ... along with their grades".
    ``cost``
        Per-source access tallies for this run only.
    ``algorithm``
        Which strategy produced the result (for reports and benchmarks).
    ``sorted_depth``
        Deepest sorted-access position reached on any list; the quantity
        the O(N^{(m-1)/m} k^{1/m}) analysis tracks.
    ``grades_exact``
        True when every reported grade is the object's exact overall
        grade.  Only the no-random-access algorithm can return
        approximate grades (bounds); everything else is exact.
    ``restarts``
        Number of times a restarting strategy (filter-condition
        simulation) had to lower its threshold and rescan.
    ``degraded``
        A :class:`DegradedResult` when subsystem failures forced a
        fallback or a partial answer; None for a clean run.
    ``approximation``
        An :class:`ApproximationCertificate` when the run stopped under
        a θ > 1 approximation knob or as an anytime best-effort answer;
        None for an exact run.
    """

    answers: GradedSet
    cost: CostReport
    algorithm: str
    sorted_depth: int = 0
    grades_exact: bool = True
    restarts: int = 0
    extras: dict = field(default_factory=dict)
    degraded: Optional[DegradedResult] = None
    approximation: Optional[ApproximationCertificate] = None

    @property
    def database_access_cost(self) -> int:
        return self.cost.database_access_cost

    def __repr__(self) -> str:
        return (
            f"TopKResult(algorithm={self.algorithm!r}, k={len(self.answers)}, "
            f"cost={self.cost.database_access_cost}, depth={self.sorted_depth})"
        )
