"""The naive baseline algorithm (paper section 4.1).

"Have the subsystem dealing with color output explicitly the graded set
consisting of all pairs ... for every object" — i.e. stream *every* list
to exhaustion under sorted access, compute every object's overall grade,
and keep the k best.  Its database access cost is exactly ``m * N``
(the paper states ``2N`` for the two-list case), which is the yardstick
Fagin's algorithm is measured against in experiment E1.

Unlike A0 the naive algorithm is correct for *any* scoring function,
monotone or not — it sees everything — so it doubles as the reference
oracle in the test suite.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Sequence

from repro.core.cost import CostMeter
from repro.core.graded import GradedSet, ObjectId
from repro.core.result import TopKResult
from repro.core.sources import GradedSource, _fast_item, check_same_objects
from repro.kernels import (
    GradeMatrix,
    _np,
    resolve_kernel,
    top_k_from_arrays,
)
from repro.parallel import fan_out, raise_first_error
from repro.scoring.base import as_scoring_function

#: Chunk size for draining whole lists under bulk sorted access.  The
#: naive scan reads everything regardless, so any chunking charges the
#: same m * N accesses; a large window just minimizes round trips.
_DRAIN_CHUNK = 4096


def _drain(source: GradedSource):
    """Stream one list to exhaustion; returns ``(position, batch)`` runs."""
    cursor = source.cursor()
    runs = []
    while True:
        position = cursor.position
        batch = cursor.next_batch(_DRAIN_CHUNK)
        if not batch:
            return runs
        runs.append((position, batch))


def _drain_columns(source: GradedSource):
    """Columnar :func:`_drain`: ``(position, ids, grades)`` runs."""
    cursor = source.cursor()
    runs = []
    while True:
        position = cursor.position
        ids, grades = cursor.next_batch_columns(_DRAIN_CHUNK)
        if not ids:
            return runs
        runs.append((position, ids, grades))


def naive_top_k(
    sources: Sequence[GradedSource],
    scoring,
    k: int,
    *,
    tracer=None,
    executor=None,
    kernel=None,
) -> TopKResult:
    """Top k answers by exhaustively scanning every list (cost m * N).

    ``tracer`` is an optional
    :class:`~repro.observability.tracer.QueryTracer`; when given, every
    sorted delivery is recorded under a ``naive-scan`` phase (and the
    access-free grading under ``naive-compute``).  ``None`` adds nothing
    to the hot path.  ``executor`` is an optional
    :class:`~repro.parallel.ParallelAccessExecutor`; the m full-list
    drains are independent, so they fan out whole — the merge into the
    grade table happens in source order either way.  ``kernel`` selects
    the scalar or vectorized grading path (``None`` = configured
    default); the naive scan charges ``m * N`` either way, so the kernel
    only changes how the grade table is stored and folded.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    rule = as_scoring_function(scoring)
    database_size = check_same_objects(sources)
    if resolve_kernel(kernel, sources, rule) == "vector":
        return _naive_top_k_vector(
            sources,
            rule,
            k,
            database_size=database_size,
            tracer=tracer,
            executor=executor,
        )
    meter = CostMeter(sources)

    grades: Dict[ObjectId, List[float]] = {}
    m = len(sources)
    with nullcontext() if tracer is None else tracer.phase("naive-scan"):
        outcomes = fan_out(
            executor, [(lambda s=source: _drain(s)) for source in sources]
        )
        raise_first_error(outcomes)
        for i, (source, outcome) in enumerate(zip(sources, outcomes)):
            for position, batch in outcome.value:
                if tracer is not None:
                    tracer.record_sorted_batch(source.name, batch, position)
                for item in batch:
                    grades.setdefault(item.object_id, [0.0] * m)[i] = item.grade

    overall = GradedSet()
    with nullcontext() if tracer is None else tracer.phase("naive-compute"):
        for object_id, vector in grades.items():
            overall[object_id] = rule(vector)

    return TopKResult(
        answers=overall.top(min(k, database_size)),
        cost=meter.report(),
        algorithm="naive",
        sorted_depth=database_size,
    )


def _naive_top_k_vector(
    sources: Sequence[GradedSource],
    rule,
    k: int,
    *,
    database_size: int,
    tracer=None,
    executor=None,
) -> TopKResult:
    """Columnar naive scan: drain every list into a
    :class:`~repro.kernels.GradeMatrix`, grade all rows with one
    ``combine_matrix`` fold, rank with one lexsort.

    Access-identical to the scalar path (same drains, same charges,
    same trace records); grades match exactly for batch-exact rules
    because a missing grade defaults to 0.0 on both paths.
    """
    meter = CostMeter(sources)
    m = len(sources)
    matrix = GradeMatrix(m, capacity=max(database_size, 16))
    with nullcontext() if tracer is None else tracer.phase("naive-scan"):
        outcomes = fan_out(
            executor, [(lambda s=source: _drain_columns(s)) for source in sources]
        )
        raise_first_error(outcomes)
        for i, (source, outcome) in enumerate(zip(sources, outcomes)):
            for position, ids, grades in outcome.value:
                if tracer is not None:
                    tracer.record_sorted_batch(
                        source.name,
                        [
                            _fast_item(object_id, grade)
                            for object_id, grade in zip(ids, grades.tolist())
                        ],
                        position,
                    )
                matrix.add_column_batch(i, ids, grades)

    with nullcontext() if tracer is None else tracer.phase("naive-compute"):
        # Same convention as the scalar grade table: a grade no list
        # delivered (impossible once every list drained, but cheap to
        # honor) counts as 0.
        scores = matrix.lower_bounds(rule)
        answers = GradedSet(
            top_k_from_arrays(
                matrix.ids, matrix.str_keys(), scores, min(k, database_size)
            )
        )

    return TopKResult(
        answers=answers,
        cost=meter.report(),
        algorithm="naive",
        sorted_depth=database_size,
    )


def grade_everything(sources: Sequence[GradedSource], scoring) -> GradedSet:
    """The full graded set of the query — the reference oracle for tests.

    Uses the sources' accounting-free materialization, so calling this
    does not disturb access counters.
    """
    rule = as_scoring_function(scoring)
    columns = [source.as_graded_set() for source in sources]
    check_same_objects(sources)
    result = GradedSet()
    for object_id in columns[0].objects():
        vector = [column.grade(object_id) for column in columns]
        result[object_id] = rule(vector)
    return result
