"""Query abstract syntax: Boolean combinations of atomic queries (section 3).

Atomic queries take the paper's form ``X = t`` — an attribute name and a
target value, e.g. ``Atomic("Artist", "Beatles")`` or
``Atomic("Color", "red")``.  Queries are Boolean combinations of atomic
queries, plus two extensions the paper develops:

* :class:`Scored` — an m-ary query ``F_t(A_1, ..., A_m)`` defined by an
  explicit m-ary scoring function ``t`` (section 3's generalization
  beyond AND/OR).
* :class:`Weighted` — a query whose conjuncts carry importance weights,
  evaluated with the Fagin–Wimmers rule (section 5).

Python operators build queries fluently::

    q = Atomic("Color", "red") & Atomic("Shape", "round")
    q = q | ~Atomic("Artist", "Beatles")

The AST is immutable; evaluation lives in :mod:`repro.core.evaluation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from repro.errors import WeightingError
from repro.scoring.base import ScoringFunction, as_scoring_function
from repro.scoring.weighted import validate_weighting


class Query:
    """Base class for all query AST nodes."""

    def __and__(self, other: "Query") -> "And":
        return And(_merge(And, self, other))

    def __or__(self, other: "Query") -> "Or":
        return Or(_merge(Or, self, other))

    def __invert__(self) -> "Query":
        if isinstance(self, Not):
            return self.child
        return Not(self)

    def atoms(self) -> Tuple["Atomic", ...]:
        """All atomic leaves, left-to-right, duplicates preserved."""
        return tuple(self._iter_atoms())

    def _iter_atoms(self) -> Iterator["Atomic"]:
        raise NotImplementedError

    @property
    def is_positive(self) -> bool:
        """True when the query contains no negation.

        The paper's algorithmic results (Theorems 4.1/4.2) concern
        positive, monotone queries; the planner refuses to run Fagin's
        algorithm on non-positive queries.
        """
        return all(True for _ in self._iter_atoms()) and not self._has_negation()

    def _has_negation(self) -> bool:
        raise NotImplementedError


def _merge(cls: type, left: Query, right: Query) -> Tuple[Query, ...]:
    """Flatten nested same-type connectives: (A & B) & C -> And(A, B, C)."""
    parts: list = []
    for node in (left, right):
        if type(node) is cls:
            parts.extend(node.children)  # type: ignore[attr-defined]
        else:
            parts.append(node)
    return tuple(parts)


@dataclass(frozen=True, eq=False)
class Atomic(Query):
    """An atomic query ``attribute = target``.

    ``target`` may be any value a subsystem understands: a string
    ("Beatles", "red"), a color histogram (a numpy array), a shape, etc.
    The grade of an object under an atomic query is produced by the
    subsystem responsible for the attribute.

    Equality and hashing use a normalized key so that array-valued
    targets (unhashable by default) still work in binding caches and
    distinctness checks.
    """

    attribute: str
    target: object

    def _target_key(self) -> object:
        target = self.target
        if hasattr(target, "tobytes") and hasattr(target, "shape"):
            return ("ndarray", target.shape, target.tobytes())
        try:
            hash(target)
        except TypeError:
            return ("repr", repr(target))
        return target

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atomic):
            return NotImplemented
        return (
            self.attribute == other.attribute
            and self._target_key() == other._target_key()
        )

    def __hash__(self) -> int:
        return hash((self.attribute, self._target_key()))

    def _iter_atoms(self) -> Iterator["Atomic"]:
        yield self

    def _has_negation(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"{self.attribute}={self.target!r}"


@dataclass(frozen=True)
class Not(Query):
    """Fuzzy negation of a subquery (graded by the semantics' negation)."""

    child: Query

    def _iter_atoms(self) -> Iterator[Atomic]:
        yield from self.child._iter_atoms()

    def _has_negation(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"NOT ({self.child})"


@dataclass(frozen=True)
class _NaryQuery(Query):
    """Shared shape for connectives over two or more subqueries."""

    children: Tuple[Query, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 1:
            raise ValueError(f"{type(self).__name__} needs at least one child")

    def _iter_atoms(self) -> Iterator[Atomic]:
        for child in self.children:
            yield from child._iter_atoms()

    def _has_negation(self) -> bool:
        return any(child._has_negation() for child in self.children)


class And(_NaryQuery):
    """Fuzzy conjunction; graded by the semantics' t-norm (default min)."""

    def __str__(self) -> str:
        return " AND ".join(f"({c})" for c in self.children)


class Or(_NaryQuery):
    """Fuzzy disjunction; graded by the semantics' co-norm (default max)."""

    def __str__(self) -> str:
        return " OR ".join(f"({c})" for c in self.children)


@dataclass(frozen=True)
class Scored(Query):
    """An explicit m-ary query ``F_t(A_1, ..., A_m)`` (section 3).

    The grade of an object is ``t(mu_{A_1}(x), ..., mu_{A_m}(x))`` for the
    given scoring function ``t``.  This subsumes And/Or (take t = min or
    max) and admits every rule in the scoring catalog (e.g. the
    arithmetic mean of Thole–Zimmermann–Zysno).
    """

    scoring: ScoringFunction
    children: Tuple[Query, ...]

    def __init__(self, scoring, children: Sequence[Query]) -> None:
        object.__setattr__(self, "scoring", as_scoring_function(scoring))
        object.__setattr__(self, "children", tuple(children))
        if not self.children:
            raise ValueError("Scored query needs at least one child")

    def _iter_atoms(self) -> Iterator[Atomic]:
        for child in self.children:
            yield from child._iter_atoms()

    def _has_negation(self) -> bool:
        return any(child._has_negation() for child in self.children)

    def __str__(self) -> str:
        inner = ", ".join(str(c) for c in self.children)
        return f"{self.scoring.name}({inner})"


@dataclass(frozen=True)
class Weighted(Query):
    """A weighted combination of subqueries (section 5).

    ``base`` is the underlying (unweighted) rule — min unless stated —
    and ``weights`` the importance vector Theta, validated to be
    nonnegative and sum to 1.  Grading uses the Fagin–Wimmers formula,
    so desiderata D1–D3' hold and monotonicity/strictness of ``base``
    carry over (section 5).
    """

    children: Tuple[Query, ...]
    weights: Tuple[float, ...]
    base: ScoringFunction

    def __init__(
        self,
        children: Sequence[Query],
        weights: Sequence[float],
        base: Optional[object] = None,
    ) -> None:
        from repro.scoring.tnorms import MIN  # local import avoids a cycle

        object.__setattr__(self, "children", tuple(children))
        object.__setattr__(self, "weights", validate_weighting(weights))
        object.__setattr__(
            self, "base", as_scoring_function(base if base is not None else MIN)
        )
        if len(self.children) != len(self.weights):
            raise WeightingError(
                f"{len(self.children)} subqueries but {len(self.weights)} weights"
            )

    def _iter_atoms(self) -> Iterator[Atomic]:
        for child in self.children:
            yield from child._iter_atoms()

    def _has_negation(self) -> bool:
        return any(child._has_negation() for child in self.children)

    def __str__(self) -> str:
        parts = ", ".join(
            f"{c} @ {w:.3g}" for c, w in zip(self.children, self.weights)
        )
        return f"weighted[{self.base.name}]({parts})"


def conjunction_of(*atoms: Query) -> Query:
    """Convenience: the conjunction of the given subqueries."""
    if len(atoms) == 1:
        return atoms[0]
    return And(tuple(atoms))


def disjunction_of(*atoms: Query) -> Query:
    """Convenience: the disjunction of the given subqueries."""
    if len(atoms) == 1:
        return atoms[0]
    return Or(tuple(atoms))
