"""Database access cost accounting (paper section 4).

The paper measures an algorithm by the amount of information it obtains
from the database:

* **sorted access cost** — the total number of objects obtained under
  sorted access across all lists;
* **random access cost** — the total number of objects obtained under
  random access;
* **database access cost** — their sum.

The paper notes this uniform measure "is somewhat controversial" (a
sorted access is probably much more expensive than a random access) but
that the results are robust to the choice; :class:`CostModel` therefore
supports arbitrary per-access charges so experiments can rerun under
skewed measures (ablation in E1/E12).

:class:`AccessCounter` is owned by each source and incremented by the
access methods themselves — algorithms cannot forget to pay.
:class:`CostReport` aggregates counters across the sources an algorithm
touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple


@dataclass
class AccessCounter:
    """Mutable tally of sorted and random accesses for one source."""

    sorted_accesses: int = 0
    random_accesses: int = 0

    def record_sorted(self, n: int = 1) -> None:
        self.sorted_accesses += n

    def record_random(self, n: int = 1) -> None:
        self.random_accesses += n

    @property
    def database_access_cost(self) -> int:
        """The paper's cost: sorted accesses plus random accesses."""
        return self.sorted_accesses + self.random_accesses

    def snapshot(self) -> Tuple[int, int]:
        return (self.sorted_accesses, self.random_accesses)

    def reset(self) -> None:
        self.sorted_accesses = 0
        self.random_accesses = 0

    def __add__(self, other: "AccessCounter") -> "AccessCounter":
        return AccessCounter(
            self.sorted_accesses + other.sorted_accesses,
            self.random_accesses + other.random_accesses,
        )


@dataclass(frozen=True)
class CostModel:
    """Per-access charges; the paper's uniform measure is the default.

    ``UNIFORM`` charges 1 per access of either kind (the definition in
    section 4).  ``SORTED_EXPENSIVE`` reflects the paper's remark that "a
    single sorted access is probably much more expensive than a single
    random access"; ``RANDOM_EXPENSIVE`` models repositories where random
    probes dominate (e.g. re-running an image matcher per object).
    """

    sorted_charge: float = 1.0
    random_charge: float = 1.0
    name: str = "uniform"

    def cost(self, counter: AccessCounter) -> float:
        """Charge a counter under this model."""
        return (
            self.sorted_charge * counter.sorted_accesses
            + self.random_charge * counter.random_accesses
        )


UNIFORM = CostModel()
SORTED_EXPENSIVE = CostModel(sorted_charge=10.0, random_charge=1.0, name="sorted-expensive")
RANDOM_EXPENSIVE = CostModel(sorted_charge=1.0, random_charge=10.0, name="random-expensive")


@dataclass
class CostReport:
    """Per-source access tallies for one algorithm run.

    ``per_source`` maps a source name to its (sorted, random) deltas for
    the run.  Totals follow the paper's definitions.
    """

    per_source: Dict[str, AccessCounter] = field(default_factory=dict)

    @property
    def sorted_access_cost(self) -> int:
        return sum(c.sorted_accesses for c in self.per_source.values())

    @property
    def random_access_cost(self) -> int:
        return sum(c.random_accesses for c in self.per_source.values())

    @property
    def database_access_cost(self) -> int:
        return self.sorted_access_cost + self.random_access_cost

    def cost(self, model: CostModel = UNIFORM) -> float:
        """Total charge under an arbitrary cost model."""
        return sum(model.cost(c) for c in self.per_source.values())

    def merged(self, other: "CostReport") -> "CostReport":
        """Combine two reports (e.g. a resumed run's phases)."""
        merged: Dict[str, AccessCounter] = {
            name: AccessCounter(*counter.snapshot())
            for name, counter in self.per_source.items()
        }
        for name, counter in other.per_source.items():
            if name in merged:
                merged[name] = merged[name] + counter
            else:
                merged[name] = AccessCounter(*counter.snapshot())
        return CostReport(merged)

    def __repr__(self) -> str:
        return (
            f"CostReport(sorted={self.sorted_access_cost}, "
            f"random={self.random_access_cost}, "
            f"total={self.database_access_cost})"
        )


class CostMeter:
    """Snapshot-based delta measurement over a collection of sources.

    Algorithms wrap their work in a meter so the report reflects only
    their own accesses even when sources are shared or reused::

        meter = CostMeter(sources)
        ... run algorithm ...
        report = meter.report()
    """

    def __init__(self, sources: Iterable) -> None:
        self._sources = list(sources)
        self._baseline: Mapping[int, Tuple[int, int]] = {
            id(s): s.counter.snapshot() for s in self._sources
        }

    def report(self) -> CostReport:
        per_source: Dict[str, AccessCounter] = {}
        for source in self._sources:
            base_sorted, base_random = self._baseline[id(source)]
            now_sorted, now_random = source.counter.snapshot()
            name = source.name
            # Distinct sources may share a display name; disambiguate.
            if name in per_source:
                name = f"{name}#{id(source):x}"
            per_source[name] = AccessCounter(
                now_sorted - base_sorted, now_random - base_random
            )
        return CostReport(per_source)
