"""The linear-cost adversarial instance (section 6 / [Fa96]).

"It is hopeless to find efficient algorithms in general: in particular,
in [Fa96] the author gives a (somewhat artificial) case where the
database access cost is necessarily linear in the database size."

The construction: two lists over the same N objects whose sorted orders
are exact *reversals* of each other.  Object ``o_i`` has grade ``g_i`` in
list 1 and ``g_{N+1-i}`` in list 2, with ``g_1 > g_2 > ... > g_N`` all in
(1/2, 1).  Under the min rule the overall grade ``min(g_i, g_{N+1-i})``
peaks for the *middle* object — but sorted access reveals the two lists
from opposite ends, so the prefixes seen after d accesses per list
intersect only once ``d >= (N+1)/2``.  Any algorithm must separate the
middle object from its neighbours, whose grades interleave all the way
down; with the grades chosen adversarially this forces Omega(N)
accesses.  Experiment E9 measures Fagin's algorithm and TA on this family
and observes the linear slope, in contrast to the sqrt(N) law on
independent lists (E1).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.sources import ListSource


def reversed_grades(n: int, *, low: float = 0.5, high: float = 1.0) -> List[Tuple[float, float]]:
    """Grade pairs ``(g_i, g_{n+1-i})`` of the reversed-lists instance.

    Grades are strictly decreasing, equally spaced in (low, high); the
    i-th pair belongs to object i (1-based index i maps to position
    ``i - 1`` in the returned list).
    """
    if n <= 0:
        raise ValueError(f"instance size must be positive, got {n}")
    if not 0.0 <= low < high <= 1.0:
        raise ValueError(f"need 0 <= low < high <= 1, got {low}, {high}")
    span = high - low

    def grade(rank: int) -> float:
        # rank 1 is the best grade; strictly decreasing, never hitting
        # the endpoints so strictness-based arguments stay clean.
        return low + span * (n - rank + 1) / (n + 1)

    return [(grade(i), grade(n + 1 - i)) for i in range(1, n + 1)]


def hard_instance(n: int) -> List[ListSource]:
    """Build the two reversed :class:`ListSource` lists over n objects.

    Objects are named ``x1 ... xn``; the midpoint object attains the
    best min grade.  The returned sources are ready for any section-4
    algorithm, so benchmarks can compare costs directly with the
    independent-list workloads.
    """
    pairs = reversed_grades(n)
    list_one = {f"x{i + 1}": pair[0] for i, pair in enumerate(pairs)}
    list_two = {f"x{i + 1}": pair[1] for i, pair in enumerate(pairs)}
    return [
        ListSource(list_one, name="adversary-A1"),
        ListSource(list_two, name="adversary-A2"),
    ]


def expected_best_object(n: int) -> str:
    """The object with the maximal min grade: the (upper) middle one."""
    return f"x{(n + 1) // 2}"


def minimum_depth_for_top_one(n: int) -> int:
    """Sorted depth at which the two prefixes first intersect.

    Fagin's algorithm cannot stop before each cursor reaches this depth
    (for k = 1), which is the source of the linear lower bound here.
    """
    return (n + 1) // 2
