"""Filter-condition simulation of Fagin's algorithm (section 4.1, last ¶).

"Chaudhuri and Gravano consider ways to simulate algorithm A0 by using
'filter conditions', which might say, for example, that the color score
is at least .2."

The idea: instead of interleaved sorted access, issue each subsystem one
*filter query* — "return every object with grade >= tau" — which a
repository can often answer natively.  Under the min scoring rule, an
object's overall grade is >= tau exactly when *every* atomic grade is
>= tau, so candidates are the objects returned by all m filters.  If at
least k candidates survive, the top k among them is provably the global
top k (any non-candidate has some grade < tau, hence min < tau <= the
k-th candidate grade).  Otherwise the threshold was too optimistic: we
*restart* with a lower tau and rescan, which is the practical hazard of
the approach that experiment E14 quantifies.

The filter retrieval itself is simulated with sorted access (scan a list
until the grade drops below tau), so the access accounting matches the
paper's cost measure; each restart pays for its rescans in full.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, Sequence, Set

from repro.core.cost import CostMeter
from repro.core.graded import GradedSet, ObjectId
from repro.core.result import TopKResult
from repro.core.sources import GradedSource, check_same_objects


def filter_retrieve(
    source: GradedSource, tau: float, *, tracer=None
) -> Dict[ObjectId, float]:
    """All objects of ``source`` with grade >= tau, via sorted access.

    Pays one extra sorted access for the first object *below* tau (the
    probe that proves the filter is complete), unless the list ends first.
    """
    found: Dict[ObjectId, float] = {}
    cursor = source.cursor()
    while True:
        item = cursor.next()
        if item is None:
            break
        if tracer is not None:
            tracer.record_sorted(
                source.name, item.object_id, item.grade, position=cursor.position
            )
        if item.grade < tau:
            break
        found[item.object_id] = item.grade
    return found


def filter_condition_top_k(
    sources: Sequence[GradedSource],
    k: int,
    *,
    initial_tau: float = 0.5,
    decay: float = 0.5,
    max_restarts: int = 64,
    tracer=None,
) -> TopKResult:
    """Top k answers under the min rule via threshold filters with restarts.

    ``initial_tau`` is the first guessed filter threshold (a real system
    would estimate it from statistics); on a miss the threshold is
    multiplied by ``decay`` and every filter is re-issued from scratch.
    A final fallback at ``tau = 0`` always succeeds, so the result is
    always the exact top k.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not 0.0 < initial_tau <= 1.0:
        raise ValueError(f"initial_tau must lie in (0, 1], got {initial_tau}")
    if not 0.0 < decay < 1.0:
        raise ValueError(f"decay must lie in (0, 1), got {decay}")
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    meter = CostMeter(sources)

    tau = initial_tau
    restarts = 0
    with nullcontext() if tracer is None else tracer.phase("filter-scan"):
        while True:
            if tracer is not None:
                tracer.sample("filter.tau", tau)
            per_source = [
                filter_retrieve(source, tau, tracer=tracer) for source in sources
            ]
            candidate_ids: Set[ObjectId] = set(per_source[0])
            for found in per_source[1:]:
                candidate_ids &= set(found)
            candidates = GradedSet(
                {
                    obj: min(found[obj] for found in per_source)
                    for obj in candidate_ids
                }
            )
            # Survivors must also clear tau overall (they do by construction)
            # and there must be k of them for the threshold proof to apply.
            if len(candidates) >= k or tau <= 0.0:
                return TopKResult(
                    answers=candidates.top(k),
                    cost=meter.report(),
                    algorithm="filter-condition",
                    sorted_depth=max(len(found) for found in per_source),
                    restarts=restarts,
                )
            restarts += 1
            if tracer is not None:
                tracer.event("restart", tau=tau, survivors=len(candidates))
            if restarts >= max_restarts:
                tau = 0.0
            else:
                tau *= decay
