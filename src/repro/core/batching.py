"""Batched sorted access (section 4's second interface style).

"Alternatively, Garlic could ask the subsystem for, say, the top 10
objects in sorted order, along with their grades, then request the next
10, etc."

Real repositories serve sorted access in batches: each *request* has a
fixed overhead (a network round trip, a query restart) and returns up to
``batch_size`` items — including items the algorithm never ends up
consuming.  :class:`BatchedSource` models this: the wrapped source's
counter is charged for every item *fetched* (whole batches, so cost
rounds up), and the number of requests is tracked separately so a
:class:`LatencyModel` can price round trips and transfers independently.

This makes the paper's cost-measure discussion concrete: under the
uniform measure batching only inflates cost (overshoot), but under a
request-dominated latency model a larger batch is cheaper — the
trade-off experiment E15 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.graded import GradedItem, ObjectId
from repro.core.sources import GradedSource, SortedCursor


class _BatchCursor(SortedCursor):
    """Sorted access that pays per *batch fetched*, not per item.

    The batch charge happens inside :meth:`BatchedSource._item_at` (and
    its bulk form ``_items_range``) when the read position crosses the
    fetched window, so the counter always equals the number of items the
    repository has shipped — overshoot included.  Items inside an
    already-fetched window are free.
    """

    def next(self) -> Optional[GradedItem]:
        item = self._source._item_at(self.position)
        if item is None:
            return None
        self.position += 1
        return item

    def next_batch(self, n: int) -> List[GradedItem]:
        if n <= 0:
            return []
        items = self._source._items_range(self.position, n)
        self.position += len(items)
        return items


class BatchedSource(GradedSource):
    """A source whose sorted access fetches whole batches.

    Reading past the fetched window pays, on this source's counter, for
    the entire next batch — the overshoot is the price of the batch
    interface.  The fetched window is shared by all cursors (the
    middleware caches what the repository already shipped).  Random
    access passes through unchanged.  ``requests`` counts round trips.
    """

    def __init__(self, inner: GradedSource, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        super().__init__(f"batched[{batch_size}]({inner.name})")
        self._inner = inner
        self.batch_size = batch_size
        #: items already fetched and paid for (batch multiples, capped at N)
        self.fetched = 0
        #: batch round trips made so far
        self.requests = 0
        self.supports_random_access = inner.supports_random_access
        self.is_boolean = inner.is_boolean

    def cursor(self) -> _BatchCursor:
        return _BatchCursor(self)

    def _charge_through(self, index: int) -> None:
        """Fetch (and pay for) whole batches until ``index`` is covered."""
        while index >= self.fetched:
            batch = min(self.batch_size, len(self._inner) - self.fetched)
            self.requests += 1
            self.fetched += batch
            self.counter.record_sorted(batch)

    def _item_at(self, index: int) -> Optional[GradedItem]:
        item = self._inner._item_at(index)
        if item is None:
            return None
        self._charge_through(index)
        return item

    def _items_range(self, start: int, count: int):
        items = self._inner._items_range(start, count)
        if items:
            self._charge_through(start + len(items) - 1)
        return items

    def _peek_at(self, index: int) -> Optional[GradedItem]:
        # Peeking never extends the fetched window — only a consuming
        # read makes the repository ship (and charge for) a batch.
        return self._inner._peek_at(index)

    def _peek_range(self, start: int, count: int):
        return self._inner._peek_range(start, count)

    def _grade_of(self, object_id: ObjectId) -> float:
        return self._inner._grade_of(object_id)

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        return self._inner._grades_of_many(object_ids)

    def __len__(self) -> int:
        return len(self._inner)


@dataclass(frozen=True)
class LatencyModel:
    """Prices one source's work as round trips plus transfers.

    ``request_charge`` is the fixed cost of a sorted-access batch request
    or a random-access probe (both are round trips); ``item_charge`` the
    marginal cost of each transferred item.
    """

    request_charge: float = 10.0
    item_charge: float = 1.0
    name: str = "latency"

    def cost_of(self, source: BatchedSource) -> float:
        """Total latency-model charge for one batched source."""
        round_trips = source.requests + source.counter.random_accesses
        items = source.fetched + source.counter.random_accesses
        return self.request_charge * round_trips + self.item_charge * items


def batched(sources, batch_size: int):
    """Wrap every source in a :class:`BatchedSource` of the given size."""
    return [BatchedSource(source, batch_size) for source in sources]
