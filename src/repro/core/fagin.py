"""Fagin's Algorithm A0 for monotone top-k queries (paper section 4.1).

Given m ranked lists (one per atomic subquery), a monotone m-ary scoring
function ``t``, and a target count k, the algorithm runs in three phases:

1. **Sorted access** — stream every list in parallel (round-robin here)
   until there is a set L of at least k objects that *every* list has
   output ("k matches").
2. **Random access** — for each object seen anywhere during phase 1,
   obtain its grade in every list where it has not yet been seen.
3. **Computation** — grade every seen object with ``t`` and output the k
   best, with their grades.

Correctness (the paper's sketch): an unseen object y scores below every
member of L in every list, so by monotonicity ``t`` ranks y no higher
than any member of L — hence k of the seen objects are a valid top-k.

For m independent lists the database access cost is
``O(N^{(m-1)/m} k^{1/m})`` with arbitrarily high probability
(Theorem 4.1), and for strict monotone queries this is optimal up to a
constant factor (Theorem 4.2).  Experiments E1–E3 regenerate these laws.

The implementation follows the paper's presentation, with the one
standard economy it alludes to under "various improvements": phase 2
probes only the lists where an object was *not* already seen (a grade
delivered by sorted access is already known; re-probing it would only
inflate cost without gaining information).

:class:`FaginAlgorithm` is *restartable*: "after finding the top k
answers, in order to find the next k best answers we can continue where
we left off."  Each :meth:`FaginAlgorithm.next_k` call continues the
sorted-access cursors from their previous positions and excludes
already-emitted objects.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Set

from repro.core.cost import CostMeter
from repro.core.graded import GradedSet, ObjectId
from repro.core.result import TopKResult
from repro.core.sources import (
    DEFAULT_BATCH_SIZE,
    GradedSource,
    SortedCursor,
    check_same_objects,
)
from repro.core.threshold import DEGRADABLE_ACCESS_ERRORS, _NraState, _nra_run
from repro.errors import MonotonicityError, ScoringError
from repro.kernels import _np, resolve_kernel
from repro.parallel import fan_out
from repro.scoring.base import ScoringFunction, as_scoring_function


class FaginAlgorithm:
    """Resumable evaluator for one monotone query over fixed sources.

    Parameters
    ----------
    sources:
        The m ranked lists, one per subquery.  All must rank the same
        object universe.
    scoring:
        A monotone m-ary scoring function (a
        :class:`~repro.scoring.base.ScoringFunction` or plain callable).
    require_monotone:
        When True (default), refuse a scoring function whose
        ``is_monotone`` flag is False — A0 is guaranteed correct only
        for monotone rules (section 4.2's first implementation issue).
    batch_size:
        Window size for bulk sorted access.  Phase 1 peeks a window of
        this many upcoming items per list (free), replays the paper's
        one-item-per-list round robin over the windows in memory, and
        then consumes exactly the items the round robin used with one
        ``next_batch`` per list — so the access counts are identical to
        item-at-a-time draining for every window size (1 reproduces the
        per-item call pattern exactly).
    """

    def __init__(
        self,
        sources: Sequence[GradedSource],
        scoring,
        *,
        require_monotone: bool = True,
        prune_random_access: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
        degrade: bool = True,
        tracer=None,
        executor=None,
        kernel: Optional[str] = None,
    ) -> None:
        #: optional QueryTracer; phases and accesses are emitted at
        #: logical access time (see the paper's phase structure), not at
        #: the deferred bulk consumes.  None stays entirely off the path.
        self.tracer = tracer
        #: optional ParallelAccessExecutor; phase 1's per-list consumes
        #: and phase 2's per-list bulk probes fan out across its workers
        #: and merge in list order, so results and accounting match the
        #: serial path exactly.  None keeps the classic serial path.
        self.executor = executor
        self.sources: List[GradedSource] = list(sources)
        self.database_size = check_same_objects(self.sources)
        self.scoring: ScoringFunction = as_scoring_function(scoring)
        if require_monotone and not self.scoring.is_monotone:
            raise MonotonicityError(
                f"scoring function {self.scoring.name!r} is declared "
                "non-monotone; A0 is only correct for monotone rules"
            )
        #: One of the paper's "various improvements" to A0: in phase 2,
        #: probe objects in decreasing upper-bound order (missing grades
        #: replaced by the list bottoms) and stop as soon as the k-th
        #: best exact grade dominates every remaining bound.  Sound for
        #: any monotone rule; cheapest for min, where the bound is tight.
        self.prune_random_access = prune_random_access
        #: When True (default), a random-access failure in phase 2 (an
        #: open circuit, exhausted retries, a blown deadline) degrades
        #: the run to NRA-style sorted-only processing over the state
        #: accumulated so far instead of aborting the query.
        self.degrade = degrade
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        #: "scalar" or "vector", resolved once at construction (see
        #: :func:`repro.kernels.resolve_kernel`).  The vector kernel
        #: keeps the same ``_known`` dict-of-dicts bookkeeping (next_k
        #: restartability depends on it) but reads sorted windows
        #: columnar and folds the compute phase through
        #: ``combine_matrix``.
        self.kernel = resolve_kernel(kernel, self.sources, self.scoring)
        self._cursors: List[SortedCursor] = [s.cursor() for s in self.sources]
        #: grades learned so far: object -> {source index -> grade}
        self._known: Dict[ObjectId, Dict[int, float]] = {}
        #: objects delivered by sorted access, per source
        self._seen_by_source: List[Set[ObjectId]] = [set() for _ in self.sources]
        #: last grade delivered by each cursor (1.0 before any delivery)
        self._bottoms: List[float] = [1.0 for _ in self.sources]
        #: exact overall grades computed so far (pruned mode)
        self._complete: Dict[ObjectId, float] = {}
        #: objects already emitted by previous next_k calls
        self._emitted: Set[ObjectId] = set()
        self._emitted_set = GradedSet()
        #: |L|: objects delivered by every source, counted incrementally
        self._matched = 0
        #: sorted-access sightings per object (random-access fills do
        #: not count toward L — only what the sorted streams delivered)
        self._sightings: Dict[ObjectId, int] = {}

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return len(self.sources)

    def _match_count(self) -> int:
        """Objects output by *all* sources so far (the set L).

        Maintained incrementally by :meth:`_sorted_phase` — an object
        joins L exactly when its sorted-access sightings reach m.
        """
        return self._matched

    def _sorted_phase(self, needed_matches: int) -> None:
        """Round-robin sorted access until L holds ``needed_matches`` objects.

        Bulk form of the paper's parallel scan: peek one window per list
        (side-effect- and charge-free), replay the one-item-per-list
        round robin over the windows, and consume exactly the rows the
        round robin processed with one ``next_batch`` per list.  The
        per-item algorithm checks the stopping condition between rounds
        and otherwise takes one item from every list, so draining whole
        rounds in bulk charges exactly the same sorted accesses.
        """
        if self.kernel == "vector":
            return self._sorted_phase_vector(needed_matches)
        sightings = self._sightings
        known = self._known
        tracer = self.tracer
        with nullcontext() if tracer is None else tracer.phase("sorted-phase"):
            while self._match_count() < needed_matches:
                for i, source in enumerate(self.sources):
                    # free shard-aware hint: warm the upcoming peek
                    # window, overlapping per-shard reads on the executor
                    source.prefetch_sorted(
                        self._cursors[i].position + self.batch_size,
                        executor=self.executor,
                    )
                windows = [
                    cursor.peek_batch(self.batch_size) for cursor in self._cursors
                ]
                rows = max((len(window) for window in windows), default=0)
                if rows == 0:
                    break  # every list exhausted
                consumed = 0
                while consumed < rows and self._match_count() < needed_matches:
                    row = consumed
                    for i, window in enumerate(windows):
                        if row >= len(window):
                            continue
                        item = window[row]
                        if tracer is not None:
                            tracer.record_sorted(
                                self.sources[i].name,
                                item.object_id,
                                item.grade,
                                position=self._cursors[i].position + row + 1,
                            )
                        object_id = item.object_id
                        if object_id not in self._seen_by_source[i]:
                            self._seen_by_source[i].add(object_id)
                            seen = sightings.get(object_id, 0) + 1
                            sightings[object_id] = seen
                            if seen == self.m:
                                self._matched += 1
                        grades = known.get(object_id)
                        if grades is None:
                            grades = known[object_id] = {}
                        grades[i] = item.grade
                        self._bottoms[i] = item.grade
                    consumed += 1
                takers = [
                    i
                    for i in range(self.m)
                    if min(consumed, len(windows[i])) > 0
                ]
                outcomes = fan_out(
                    self.executor,
                    [
                        (
                            lambda c=self._cursors[i],
                            t=min(consumed, len(windows[i])): c.next_batch(t)
                        )
                        for i in takers
                    ],
                )
                for outcome in outcomes:
                    if outcome.error is not None:
                        raise outcome.error
                if tracer is not None:
                    tracer.sample("a0.matched", float(self._matched))
                    tracer.sample("a0.seen", float(len(known)))

    def _sorted_phase_vector(self, needed_matches: int) -> None:
        """Columnar :meth:`_sorted_phase`: identical round robin over
        ``peek_batch_columns`` windows — no :class:`GradedItem` boxing
        on array backends, python floats via one ``tolist`` per window,
        the same accesses charged in the same order."""
        sightings = self._sightings
        known = self._known
        tracer = self.tracer
        with nullcontext() if tracer is None else tracer.phase("sorted-phase"):
            while self._match_count() < needed_matches:
                for i, source in enumerate(self.sources):
                    # free shard-aware window warm-up (see scalar phase)
                    source.prefetch_sorted(
                        self._cursors[i].position + self.batch_size,
                        executor=self.executor,
                    )
                windows = [
                    cursor.peek_batch_columns(self.batch_size)
                    for cursor in self._cursors
                ]
                lengths = [len(window_ids) for window_ids, _ in windows]
                grades_lists = [grades.tolist() for _, grades in windows]
                rows = max(lengths, default=0)
                if rows == 0:
                    break  # every list exhausted
                consumed = 0
                while consumed < rows and self._match_count() < needed_matches:
                    row = consumed
                    for i in range(self.m):
                        if row >= lengths[i]:
                            continue
                        object_id = windows[i][0][row]
                        grade = grades_lists[i][row]
                        if tracer is not None:
                            tracer.record_sorted(
                                self.sources[i].name,
                                object_id,
                                grade,
                                position=self._cursors[i].position + row + 1,
                            )
                        if object_id not in self._seen_by_source[i]:
                            self._seen_by_source[i].add(object_id)
                            seen = sightings.get(object_id, 0) + 1
                            sightings[object_id] = seen
                            if seen == self.m:
                                self._matched += 1
                        grades_known = known.get(object_id)
                        if grades_known is None:
                            grades_known = known[object_id] = {}
                        grades_known[i] = grade
                        self._bottoms[i] = grade
                    consumed += 1
                takers = [
                    i
                    for i in range(self.m)
                    if min(consumed, lengths[i]) > 0
                ]
                outcomes = fan_out(
                    self.executor,
                    [
                        (
                            lambda c=self._cursors[i],
                            t=min(consumed, lengths[i]): c.next_batch_columns(t)
                        )
                        for i in takers
                    ],
                )
                for outcome in outcomes:
                    if outcome.error is not None:
                        raise outcome.error
                if tracer is not None:
                    tracer.sample("a0.matched", float(self._matched))
                    tracer.sample("a0.seen", float(len(known)))

    def _random_phase(self) -> None:
        """Fill in every missing grade of every seen object.

        One bulk random-access request per list: the paper's cost is one
        access per (object, list) pair either way, the bulk call merely
        amortizes the round trip.
        """
        tracer = self.tracer
        with nullcontext() if tracer is None else tracer.phase("random-phase"):
            targets = []
            for i, source in enumerate(self.sources):
                missing = [
                    object_id
                    for object_id, grades in self._known.items()
                    if i not in grades
                ]
                if missing:
                    targets.append((i, source, missing))
            outcomes = fan_out(
                self.executor,
                [
                    (lambda s=source, ids=missing: s.random_access_many(ids))
                    for _, source, missing in targets
                ],
                stop_on_error=True,
            )
            for (i, source, missing), outcome in zip(targets, outcomes):
                if not outcome.ran:
                    break
                if outcome.error is not None:
                    if isinstance(outcome.error, DEGRADABLE_ACCESS_ERRORS):
                        outcome.error.source_name = source.name
                    raise outcome.error
                fetched = outcome.value
                if tracer is not None:
                    for object_id in missing:
                        tracer.record_random(
                            source.name, object_id, fetched[object_id]
                        )
                for object_id in missing:
                    self._known[object_id][i] = fetched[object_id]

    def _compute_phase(self) -> GradedSet:
        """Overall grades for every fully-known seen object."""
        if self.kernel == "vector":
            return self._compute_phase_vector()
        tracer = self.tracer
        result = GradedSet()
        with nullcontext() if tracer is None else tracer.phase("compute-phase"):
            for object_id, grades in self._known.items():
                if len(grades) != self.m:
                    raise ScoringError(
                        f"object {object_id!r} has incomplete grades after "
                        "the random-access phase"
                    )
                vector = [grades[i] for i in range(self.m)]
                result[object_id] = self.scoring(vector)
        return result

    def _compute_phase_vector(self) -> GradedSet:
        """Columnar :meth:`_compute_phase`: every seen object's grade in
        one ``combine_matrix`` fold instead of per-object rule calls."""
        tracer = self.tracer
        m = self.m
        with nullcontext() if tracer is None else tracer.phase("compute-phase"):
            ids = list(self._known.keys())
            matrix = _np.empty((len(ids), m))
            for row, object_id in enumerate(ids):
                grades = self._known[object_id]
                if len(grades) != m:
                    raise ScoringError(
                        f"object {object_id!r} has incomplete grades after "
                        "the random-access phase"
                    )
                values = matrix[row]
                for i in range(m):
                    values[i] = grades[i]
            scores = (
                self.scoring.combine_matrix(matrix)
                if len(ids)
                else _np.empty(0)
            )
            return GradedSet(zip(ids, scores.tolist()))

    def _pruned_selection(self, k: int) -> GradedSet:
        """Phase 2+3 with upper-bound pruning of random accesses.

        An incomplete object's best possible overall grade replaces each
        missing grade with that list's bottom (the lowest grade its
        sorted stream has shown): by monotonicity the true grade cannot
        exceed this bound.  Probing in decreasing bound order lets the
        loop stop the moment the k-th exact fresh grade dominates every
        remaining bound — the skipped objects provably cannot enter the
        answer.
        """
        import heapq

        # Complete for free anything sorted access has fully revealed.
        for object_id, grades in self._known.items():
            if object_id not in self._complete and len(grades) == self.m:
                vector = [grades[i] for i in range(self.m)]
                self._complete[object_id] = self.scoring(vector)

        fresh: Dict[ObjectId, float] = {
            object_id: grade
            for object_id, grade in self._complete.items()
            if object_id not in self._emitted
        }
        # Min-heap of the k best fresh grades: the stopping threshold in
        # O(log k) per probe instead of a re-sort of the fresh pool.
        best_k = heapq.nlargest(k, fresh.values())
        heapq.heapify(best_k)
        while len(best_k) > k:
            heapq.heappop(best_k)

        def threshold() -> float:
            return best_k[0] if len(best_k) >= k else -1.0

        def upper_bound(grades: Dict[int, float]) -> float:
            vector = [
                grades.get(i, self._bottoms[i]) for i in range(self.m)
            ]
            return self.scoring(vector)

        pending = sorted(
            (
                (upper_bound(grades), str(object_id), object_id)
                for object_id, grades in self._known.items()
                if object_id not in self._complete
            ),
            reverse=True,
        )
        tracer = self.tracer
        with nullcontext() if tracer is None else tracer.phase("pruned-selection"):
            for bound, _, object_id in pending:
                if bound <= threshold():
                    break
                grades = self._known[object_id]
                missing = [i for i in range(self.m) if i not in grades]
                probe_outcomes = fan_out(
                    self.executor,
                    [
                        (
                            lambda s=self.sources[i], o=object_id: (
                                s.random_access(o)
                            )
                        )
                        for i in missing
                    ],
                    stop_on_error=True,
                )
                for i, outcome in zip(missing, probe_outcomes):
                    if not outcome.ran:
                        break
                    if outcome.error is not None:
                        if isinstance(outcome.error, DEGRADABLE_ACCESS_ERRORS):
                            outcome.error.source_name = self.sources[i].name
                        raise outcome.error
                    grades[i] = outcome.value
                    if tracer is not None:
                        tracer.record_random(
                            self.sources[i].name, object_id, grades[i]
                        )
                vector = [grades[i] for i in range(self.m)]
                exact = self.scoring(vector)
                self._complete[object_id] = exact
                fresh[object_id] = exact
                if len(best_k) < k:
                    heapq.heappush(best_k, exact)
                elif exact > best_k[0]:
                    heapq.heapreplace(best_k, exact)
        return GradedSet(fresh)

    def _degrade_to_nra(self, k: int, meter: CostMeter, error) -> TopKResult:
        """Continue as NRA over the state phase 1 (and any successful
        probes) already accumulated.

        The NRA continuation shares this algorithm's cursors, bottoms,
        and per-list grade dictionaries, so no sorted access is re-paid
        and everything the continuation learns flows back into
        ``_known`` for later ``next_k`` calls (which will re-attempt
        random access and degrade again if it is still down).
        """
        if self.tracer is not None:
            self.tracer.event(
                "degraded",
                algorithm="fagin-a0",
                fallback="nra",
                failures={
                    getattr(error, "source_name", "random access"): str(error)
                },
            )
        states: Dict[ObjectId, _NraState] = {}
        for object_id, grades in self._known.items():
            state = _NraState()
            state.known = grades  # shared dict: NRA updates reach _known
            states[object_id] = state
        k_total = min(len(self._emitted) + k, self.database_size)
        result = _nra_run(
            self.sources,
            self.scoring,
            k_total,
            cursors=self._cursors,
            states=states,
            bottoms=self._bottoms,
            exhausted=[False for _ in self.sources],
            meter=meter,
            depth=max(c.position for c in self._cursors),
            batch_size=self.batch_size,
            algorithm="fagin-a0+nra",
            prior_failures={
                getattr(error, "source_name", "random access"): str(error)
            },
            tracer=self.tracer,
            phase_name="nra-fallback",
            executor=self.executor,
            kernel=self.kernel,
            # The scalar continuation updates the shared ``known`` dicts
            # in place; the vector continuation works columnar and must
            # flush what it learned back into them on exit.
            writeback_states=True,
        )
        for object_id, state in states.items():
            if object_id not in self._known:
                self._known[object_id] = state.known
        fresh = {
            item.object_id: item.grade
            for item in result.answers
            if item.object_id not in self._emitted
        }
        batch = GradedSet(fresh).top(min(k, len(fresh))) if fresh else GradedSet()
        for item in batch:
            self._emitted.add(item.object_id)
            self._emitted_set[item.object_id] = item.grade
        degraded = result.degraded
        if degraded is not None:
            degraded.bounds = {
                object_id: bounds
                for object_id, bounds in degraded.bounds.items()
                if object_id in batch
            }
        return TopKResult(
            answers=batch,
            cost=meter.report(),
            algorithm="fagin-a0+nra",
            sorted_depth=max(c.position for c in self._cursors),
            grades_exact=result.grades_exact,
            degraded=degraded,
            extras={"objects_seen": len(self._known)},
        )

    # ------------------------------------------------------------------
    def next_k(self, k: int) -> TopKResult:
        """Return the next k best answers (continuing past prior calls).

        The first call returns the top k; a second call the k after
        those, and so on, reusing all sorted-access work already paid
        for.  The returned cost report covers only this call's accesses.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        meter = CostMeter(self.sources)
        total_needed = min(len(self._emitted) + k, self.database_size)
        self._sorted_phase(total_needed)
        sorted_phase_cost = meter.report().database_access_cost
        try:
            if self.prune_random_access:
                fresh = self._pruned_selection(k)
            else:
                self._random_phase()
                overall = self._compute_phase()
                fresh = GradedSet(
                    item for item in overall if item.object_id not in self._emitted
                )
        except DEGRADABLE_ACCESS_ERRORS as error:
            if not self.degrade:
                raise
            return self._degrade_to_nra(k, meter, error)
        report = meter.report()
        batch = fresh.top(min(k, len(fresh)))
        for item in batch:
            self._emitted.add(item.object_id)
            self._emitted_set[item.object_id] = item.grade
        return TopKResult(
            answers=batch,
            cost=report,
            algorithm="fagin-a0",
            sorted_depth=max(c.position for c in self._cursors),
            extras={
                # Per-phase breakdown: what sorted access cost before a
                # single random probe happened, and what phase 2 added —
                # the observability the paper's cost-modeling discussion
                # (section 4.2) asks for.
                "phase_sorted_cost": sorted_phase_cost,
                "phase_random_cost": report.database_access_cost
                - sorted_phase_cost,
                "objects_seen": len(self._known),
            },
        )

    @property
    def emitted(self) -> GradedSet:
        """Everything emitted so far, across all next_k calls."""
        return GradedSet(self._emitted_set.as_dict())


def fagin_top_k(
    sources: Sequence[GradedSource],
    scoring,
    k: int,
    *,
    require_monotone: bool = True,
    prune_random_access: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
    degrade: bool = True,
    tracer=None,
    executor=None,
    kernel: Optional[str] = None,
) -> TopKResult:
    """One-shot convenience wrapper: the top k answers via algorithm A0."""
    algorithm = FaginAlgorithm(
        sources,
        scoring,
        require_monotone=require_monotone,
        prune_random_access=prune_random_access,
        batch_size=batch_size,
        degrade=degrade,
        tracer=tracer,
        executor=executor,
        kernel=kernel,
    )
    return algorithm.next_k(k)
