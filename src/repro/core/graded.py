"""Graded ("fuzzy") sets, the central data structure of the paper.

A graded set is a set of pairs ``(x, g)`` where ``x`` is an object (any
hashable identifier) and ``g``, the *grade*, is a real number in ``[0, 1]``
describing how well the object satisfies a query (paper section 3,
following Zadeh).  A graded set generalizes both a plain set (all grades
are 0 or 1) and a sorted list (iterate objects by nonincreasing grade).

The module provides:

* :class:`GradedItem` — an immutable ``(object_id, grade)`` pair.
* :class:`GradedSet` — a mapping from objects to grades with sorted-list
  iteration, top-k extraction, and fuzzy set algebra (union, intersection,
  complement) parameterized by scoring functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.errors import GradeError
from repro.grades import GRADE_TOLERANCE, validate_grade

ObjectId = Hashable


@dataclass(frozen=True, order=False, slots=True)
class GradedItem:
    """An object together with its grade under some query.

    Items order by *descending* grade so that sorting a list of
    :class:`GradedItem` yields the paper's "sorted list" presentation
    (best match first).  Ties order by object id (stringified) to make
    sorting deterministic.

    ``slots=True`` matters at scale: algorithms materialize one item per
    delivered row, so dropping the per-item ``__dict__`` cuts both
    memory and attribute-access time on the hot paths (measured in
    benchmarks/bench_e23_kernels.py's notes).
    """

    object_id: ObjectId
    grade: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "grade", validate_grade(self.grade))

    def _sort_key(self) -> Tuple[float, str]:
        return (-self.grade, str(self.object_id))

    def __lt__(self, other: "GradedItem") -> bool:
        if not isinstance(other, GradedItem):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __iter__(self) -> Iterator:
        """Allow ``obj, grade = item`` unpacking."""
        return iter((self.object_id, self.grade))


class GradedSet:
    """A graded (fuzzy) set: a finite map from objects to grades in [0, 1].

    Construction accepts a mapping, an iterable of ``(object, grade)``
    pairs, or an iterable of :class:`GradedItem`.  Iteration yields
    :class:`GradedItem` in nonincreasing grade order, so a ``GradedSet``
    can be consumed directly as the "sorted list" answer to a multimedia
    query.

    >>> gs = GradedSet({"a": 0.9, "b": 0.5})
    >>> [item.object_id for item in gs]
    ['a', 'b']
    """

    __slots__ = ("_grades", "_sorted_cache")

    def __init__(
        self,
        items: Union[
            Mapping[ObjectId, float],
            Iterable[Union[GradedItem, Tuple[ObjectId, float]]],
            None,
        ] = None,
    ) -> None:
        self._grades: Dict[ObjectId, float] = {}
        self._sorted_cache: Optional[List[GradedItem]] = None
        if items is None:
            return
        if isinstance(items, Mapping):
            pairs: Iterable[Tuple[ObjectId, float]] = items.items()
        else:
            pairs = (
                (it.object_id, it.grade) if isinstance(it, GradedItem) else it
                for it in items
            )
        for object_id, grade in pairs:
            self._grades[object_id] = validate_grade(grade)

    # ------------------------------------------------------------------
    # Mapping-style access
    # ------------------------------------------------------------------
    def grade(self, object_id: ObjectId, default: float = 0.0) -> float:
        """Return the grade of ``object_id``, or ``default`` if absent.

        Absent objects default to grade 0, matching the convention that an
        object not in a fuzzy set has membership 0.
        """
        return self._grades.get(object_id, default)

    def __getitem__(self, object_id: ObjectId) -> float:
        return self._grades[object_id]

    def __setitem__(self, object_id: ObjectId, grade: float) -> None:
        self._grades[object_id] = validate_grade(grade)
        self._sorted_cache = None

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._grades

    def __len__(self) -> int:
        return len(self._grades)

    def __bool__(self) -> bool:
        return bool(self._grades)

    def objects(self) -> Iterator[ObjectId]:
        """Iterate object ids in no particular order."""
        return iter(self._grades)

    def as_dict(self) -> Dict[ObjectId, float]:
        """Return a copy of the underlying object -> grade mapping."""
        return dict(self._grades)

    # ------------------------------------------------------------------
    # Sorted-list view
    # ------------------------------------------------------------------
    def _sorted_items(self) -> List[GradedItem]:
        if self._sorted_cache is None:
            self._sorted_cache = sorted(
                GradedItem(obj, g) for obj, g in self._grades.items()
            )
        return self._sorted_cache

    def __iter__(self) -> Iterator[GradedItem]:
        return iter(self._sorted_items())

    def items(self) -> Iterator[GradedItem]:
        """Alias for iteration in nonincreasing grade order."""
        return iter(self)

    def top(self, k: int) -> "GradedSet":
        """Return a new graded set holding the ``k`` best-graded objects.

        Ties at the cut are broken deterministically by object id, which
        is one of the arbitrary-but-valid tie breaks the paper permits.
        """
        if k < 0:
            raise ValueError(f"k must be nonnegative, got {k}")
        return GradedSet(self._sorted_items()[:k])

    def best(self) -> Optional[GradedItem]:
        """Return the best-graded item, or None if the set is empty."""
        items = self._sorted_items()
        return items[0] if items else None

    def kth_grade(self, k: int) -> float:
        """Grade of the k-th best object (1-based); 0.0 if fewer than k."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        items = self._sorted_items()
        return items[k - 1].grade if len(items) >= k else 0.0

    # ------------------------------------------------------------------
    # Fuzzy set algebra
    # ------------------------------------------------------------------
    def combine(
        self,
        other: "GradedSet",
        rule: Callable[[float, float], float],
        *,
        absent: float = 0.0,
    ) -> "GradedSet":
        """Combine two graded sets pointwise with a binary ``rule``.

        Objects absent from one side contribute grade ``absent`` there.
        This is the generic engine behind :meth:`intersection` and
        :meth:`union`.
        """
        result = GradedSet()
        for obj in set(self._grades) | set(other._grades):
            result[obj] = rule(self.grade(obj, absent), other.grade(obj, absent))
        return result

    def intersection(
        self, other: "GradedSet", tnorm: Optional[Callable[[float, float], float]] = None
    ) -> "GradedSet":
        """Fuzzy intersection under a t-norm (default: Zadeh's min rule)."""
        rule = tnorm if tnorm is not None else min
        return self.combine(other, rule)

    def union(
        self, other: "GradedSet", conorm: Optional[Callable[[float, float], float]] = None
    ) -> "GradedSet":
        """Fuzzy union under a t-co-norm (default: Zadeh's max rule)."""
        rule = conorm if conorm is not None else max
        return self.combine(other, rule)

    def complement(
        self, negation: Optional[Callable[[float], float]] = None
    ) -> "GradedSet":
        """Fuzzy complement (default: Zadeh's ``1 - g`` rule).

        Only objects present in the set are complemented; the universe is
        taken to be the support of the set.
        """
        neg = negation if negation is not None else (lambda g: 1.0 - g)
        return GradedSet({obj: neg(g) for obj, g in self._grades.items()})

    def support(self, threshold: float = 0.0) -> "GradedSet":
        """Objects whose grade strictly exceeds ``threshold``."""
        return GradedSet(
            {obj: g for obj, g in self._grades.items() if g > threshold}
        )

    def alpha_cut(self, alpha: float, *, strong: bool = False) -> frozenset:
        """The (strong) alpha-cut: the crisp set of objects with grade
        >= alpha (> alpha when ``strong``).

        Alpha-cuts are the classical bridge from fuzzy sets back to
        crisp sets [Za65]; a filter condition "the color score is at
        least .2" (section 4.1) is exactly the 0.2-cut of the atomic
        query's graded set.
        """
        validate_grade(alpha)
        if strong:
            return frozenset(
                obj for obj, g in self._grades.items() if g > alpha
            )
        return frozenset(obj for obj, g in self._grades.items() if g >= alpha)

    def is_crisp(self) -> bool:
        """True if every grade is exactly 0 or 1 (a traditional set)."""
        return all(g in (0.0, 1.0) for g in self._grades.values())

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------
    def grades_equal(self, other: "GradedSet", tol: float = 1e-9) -> bool:
        """True if both sets hold the same objects with grades within tol."""
        if set(self._grades) != set(other._grades):
            return False
        return all(
            abs(g - other._grades[obj]) <= tol for obj, g in self._grades.items()
        )

    def same_grade_multiset(self, other: "GradedSet", tol: float = 1e-9) -> bool:
        """True if the two sets have the same multiset of grades.

        This is the right equality for comparing *top-k answers*: the
        paper allows ties to be broken arbitrarily, so two correct top-k
        answers may contain different objects yet must carry identical
        grade multisets.
        """
        if len(self) != len(other):
            return False
        mine = sorted(self._grades.values())
        theirs = sorted(other._grades.values())
        return all(abs(a - b) <= tol for a, b in zip(mine, theirs))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GradedSet):
            return NotImplemented
        return self._grades == other._grades

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{item.object_id!r}: {item.grade:.4g}" for item in self._sorted_items()[:6]
        )
        suffix = ", ..." if len(self) > 6 else ""
        return f"GradedSet({{{preview}{suffix}}})"


def from_sorted_list(pairs: Iterable[Tuple[ObjectId, float]]) -> GradedSet:
    """Build a graded set from an already-sorted ``(object, grade)`` list.

    Raises :class:`GradeError` if the grades are not nonincreasing, which
    guards against subsystems that violate the sorted-access contract.
    """
    result = GradedSet()
    previous = 1.0
    for object_id, grade in pairs:
        value = validate_grade(grade)
        if value > previous + GRADE_TOLERANCE:
            raise GradeError(
                "sorted list violates nonincreasing grade order: "
                f"{value} follows {previous}"
            )
        previous = value
        result[object_id] = value
    return result
