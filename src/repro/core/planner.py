"""Strategy selection for top-k evaluation (sections 4.1–4.2).

The paper describes several evaluation strategies, each best in a
different regime:

* the **Boolean-conjunct-first** strategy when a conjunct is a selective
  relational predicate (the Beatles example);
* the **m*k max algorithm** when the scoring function is the standard
  fuzzy disjunction;
* **Fagin's algorithm A0** (or its TA/NRA refinements) for general
  monotone scoring functions;
* the **naive scan** as the always-correct fallback.

"In order to use an optimizer, we need to understand the cost of applying
various operators over various data in various repositories" (section
4.2) — :func:`plan_top_k` is that optimizer in miniature: it inspects the
sources (Boolean? random access supported? how selective?) and the
scoring function, estimates each applicable strategy's cost under the
paper's model, and picks the cheapest.  The produced :class:`Plan`
records the reason for the choice, and :func:`execute` runs it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.core.boolean_first import boolean_first_top_k
from repro.core.disjunction import disjunction_top_k
from repro.core.fagin import fagin_top_k
from repro.core.naive import naive_top_k
from repro.core.result import TopKResult
from repro.core.sources import GradedSource, check_same_objects
from repro.core.threshold import nra_top_k, threshold_top_k
from repro.errors import PlanError
from repro.scoring.base import ScoringFunction, as_scoring_function
from repro.scoring.conorms import MaximumConorm
from repro.scoring.tnorms import MIN


class Strategy(Enum):
    """The evaluation strategies the planner can choose among."""

    FAGIN = "fagin-a0"
    THRESHOLD = "threshold-ta"
    NRA = "nra"
    DISJUNCTION = "disjunction-max"
    BOOLEAN_FIRST = "boolean-first"
    NAIVE = "naive"


@dataclass
class Plan:
    """A chosen strategy plus the planner's cost rationale.

    ``storage`` summarizes each source's physical backend (innermost of
    its wrapper chain: list/array/memmap, shard layout) — the paper's
    cost model is storage-agnostic, so the summary is informational and
    never steers the strategy choice; EXPLAIN renders it.

    ``theta`` is the Fagin–Lotem–Naor θ-approximation knob (1.0 =
    exact).  Only TA and NRA have θ-relaxed stopping rules; the other
    strategies always return exact answers, which trivially satisfy any
    θ ≥ 1, so the knob never changes the strategy choice.
    """

    strategy: Strategy
    scoring: ScoringFunction
    k: int
    reason: str
    estimated_cost: float
    boolean_index: Optional[int] = None
    storage: Optional[List[Dict[str, object]]] = None
    theta: float = 1.0

    def __repr__(self) -> str:
        return (
            f"Plan({self.strategy.value}, k={self.k}, "
            f"est={self.estimated_cost:.0f}, reason={self.reason!r})"
        )


def _annihilates_at_zero(rule: ScoringFunction, arity: int) -> bool:
    """True if a 0 grade in any slot forces the overall grade to 0.

    Checked empirically at a handful of points; every t-norm satisfies
    it by A-conservation + monotonicity, the arithmetic mean does not.
    """
    probes = (0.25, 0.5, 0.75, 1.0)
    for position in range(arity):
        for level in probes:
            vector = [level] * arity
            vector[position] = 0.0
            if rule(vector) > 0.0:
                return False
    return True


def _is_max_rule(rule: ScoringFunction, arity: int) -> bool:
    """True if the rule coincides with max on a probe grid."""
    if isinstance(rule, MaximumConorm):
        return True
    probes = (0.0, 0.1, 0.35, 0.5, 0.8, 1.0)
    for i, a in enumerate(probes):
        for b in probes[i:]:
            vector = [a] * arity
            vector[-1] = b
            if abs(rule(vector) - max(a, b)) > 1e-12:
                return False
    return True


def _boolean_selectivity(source: GradedSource) -> Optional[int]:
    """Number of grade-1 objects in a Boolean source, if it advertises one."""
    count = getattr(source, "positive_count", None)
    if count is not None:
        return int(count)
    return None


def plan_top_k(
    sources: Sequence[GradedSource],
    scoring,
    k: int,
    *,
    prefer: Optional[Strategy] = None,
    theta: float = 1.0,
) -> Plan:
    """Choose an evaluation strategy and estimate its access cost.

    ``prefer`` forces a specific strategy (the planner still refuses a
    strategy whose preconditions fail, e.g. TA over a sorted-only
    source).  Cost estimates use the paper's formulas: ``m * N`` naive,
    ``m * k`` disjunction, ``|S| * m`` Boolean-first, and the Theorem 4.1
    law ``m * N^{(m-1)/m} * k^{1/m}`` (sorted) plus one random probe per
    seen object for A0/TA.  ``theta`` rides along on the plan and is
    honored by the strategies with θ-relaxed stopping rules (TA, NRA).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if theta < 1.0:
        raise ValueError(f"theta must be >= 1.0, got {theta}")
    rule = as_scoring_function(scoring)
    n = check_same_objects(sources)
    m = len(sources)
    k_eff = min(k, n)
    # Dynamic, not just protocol-level: a resilient source whose
    # random-access circuit breaker is open reports unavailable here, so
    # the planner picks a sorted-only strategy up front instead of
    # letting the execution degrade mid-query.
    random_ok = all(s.random_access_available() for s in sources)

    candidates: Dict[Strategy, Plan] = {}

    def offer(strategy: Strategy, cost: float, reason: str, **kw) -> None:
        candidates[strategy] = Plan(strategy, rule, k_eff, reason, cost, **kw)

    offer(Strategy.NAIVE, float(m * n), "always-correct full scan")
    if rule.is_monotone:
        offer(
            Strategy.NRA,
            2.0 * m * n ** ((m - 1) / m) * k_eff ** (1 / m) if m > 1 else float(k_eff),
            "sorted access only; works without random access",
        )
    if _is_max_rule(rule, m):
        offer(
            Strategy.DISJUNCTION,
            float(m * k_eff),
            "max rule: m*k algorithm, cost independent of N",
        )
    if random_ok and rule.is_monotone:
        fa_sorted = m * n ** ((m - 1) / m) * k_eff ** (1 / m) if m > 1 else float(k_eff)
        offer(
            Strategy.FAGIN,
            fa_sorted + (m - 1) * fa_sorted / max(m, 1),
            "Theorem 4.1 law for independent lists",
        )
        offer(
            Strategy.THRESHOLD,
            fa_sorted,  # TA never does more sorted access than A0
            "instance-optimal refinement of A0",
        )
        if rule.is_monotone and _annihilates_at_zero(rule, m):
            for i, source in enumerate(sources):
                if not source.is_boolean:
                    continue
                selected = _boolean_selectivity(source)
                if selected is None:
                    continue
                cost = selected * m + 1
                previous = candidates.get(Strategy.BOOLEAN_FIRST)
                if previous is None or cost < previous.estimated_cost:
                    offer(
                        Strategy.BOOLEAN_FIRST,
                        float(cost),
                        f"Boolean conjunct {source.name!r} selects "
                        f"{selected}/{n} objects",
                        boolean_index=i,
                    )

    def summarized(plan: Plan) -> Plan:
        from repro.storage import describe_source_storage

        plan.storage = [describe_source_storage(s) for s in sources]
        plan.theta = theta
        return plan

    if prefer is not None:
        if prefer not in candidates:
            raise PlanError(
                f"strategy {prefer.value!r} is not applicable here "
                f"(applicable: {[s.value for s in candidates]})"
            )
        return summarized(candidates[prefer])
    # Tie break by simplicity: a specialized strategy (disjunction,
    # Boolean-first) beats a general one, and random-access strategies
    # beat NRA's bound bookkeeping, at equal estimated cost.
    preference = {
        Strategy.DISJUNCTION: 0,
        Strategy.BOOLEAN_FIRST: 1,
        Strategy.THRESHOLD: 2,
        Strategy.FAGIN: 3,
        Strategy.NRA: 4,
        Strategy.NAIVE: 5,
    }
    return summarized(
        min(
            candidates.values(),
            key=lambda plan: (plan.estimated_cost, preference[plan.strategy]),
        )
    )


def execute(
    plan: Plan,
    sources: Sequence[GradedSource],
    *,
    tracer=None,
    executor=None,
    kernel: Optional[str] = None,
    nra_snapshot: Optional[Dict] = None,
) -> TopKResult:
    """Run a plan produced by :func:`plan_top_k` over the same sources.

    ``tracer`` (an optional
    :class:`~repro.observability.tracer.QueryTracer`) is forwarded to the
    chosen algorithm, which emits its phase spans and per-access events.
    ``executor`` (an optional
    :class:`~repro.parallel.ParallelAccessExecutor`) overlaps each
    round's independent subsystem accesses; results are byte-identical
    to serial execution.  ``kernel`` (``"auto"``/``"vector"``/
    ``"scalar"``, ``None`` = configured default) selects the scoring
    kernel for the algorithms that have a vectorized implementation —
    see :mod:`repro.kernels`.  ``nra_snapshot`` (a dict) collects a
    clean NRA run's resumable state for the result cache's warm-start
    tier; it is ignored by every other strategy.
    """
    if plan.strategy is Strategy.NAIVE:
        return naive_top_k(
            sources,
            plan.scoring,
            plan.k,
            tracer=tracer,
            executor=executor,
            kernel=kernel,
        )
    if plan.strategy is Strategy.DISJUNCTION:
        return disjunction_top_k(sources, plan.k, tracer=tracer, executor=executor)
    if plan.strategy is Strategy.FAGIN:
        return fagin_top_k(
            sources,
            plan.scoring,
            plan.k,
            tracer=tracer,
            executor=executor,
            kernel=kernel,
        )
    if plan.strategy is Strategy.THRESHOLD:
        return threshold_top_k(
            sources,
            plan.scoring,
            plan.k,
            theta=plan.theta,
            tracer=tracer,
            executor=executor,
            kernel=kernel,
        )
    if plan.strategy is Strategy.NRA:
        return nra_top_k(
            sources,
            plan.scoring,
            plan.k,
            theta=plan.theta,
            tracer=tracer,
            executor=executor,
            kernel=kernel,
            snapshot_out=nra_snapshot,
        )
    if plan.strategy is Strategy.BOOLEAN_FIRST:
        if plan.boolean_index is None:
            raise PlanError("Boolean-first plan lacks a boolean_index")
        return boolean_first_top_k(
            sources,
            plan.scoring,
            plan.k,
            boolean_index=plan.boolean_index,
            tracer=tracer,
            executor=executor,
        )
    raise PlanError(f"unknown strategy {plan.strategy!r}")


def top_k(
    sources: Sequence[GradedSource],
    scoring=MIN,
    k: int = 10,
    *,
    prefer: Optional[Strategy] = None,
    theta: float = 1.0,
    tracer=None,
    executor=None,
    kernel: Optional[str] = None,
) -> TopKResult:
    """Plan and execute in one call — the library's main entry point."""
    plan = plan_top_k(sources, scoring, k, prefer=prefer, theta=theta)
    if tracer is not None:
        # θ is traced only when it can change the execution, so θ = 1.0
        # traces stay byte-identical to the exact path's goldens.
        extra = {"theta": theta} if theta > 1.0 else {}
        tracer.event(
            "plan",
            strategy=plan.strategy.value,
            reason=plan.reason,
            estimated_cost=plan.estimated_cost,
            k=plan.k,
            **extra,
        )
    return execute(plan, sources, tracer=tracer, executor=executor, kernel=kernel)
