"""The paper's primary contribution: graded sets, fuzzy query semantics,
and the top-k algorithms of section 4 with their cost accounting."""

from repro.core.adversary import (
    expected_best_object,
    hard_instance,
    minimum_depth_for_top_one,
    reversed_grades,
)
from repro.core.batching import BatchedSource, LatencyModel, batched
from repro.core.boolean_first import boolean_first_top_k
from repro.core.cost import (
    RANDOM_EXPENSIVE,
    SORTED_EXPENSIVE,
    UNIFORM,
    AccessCounter,
    CostMeter,
    CostModel,
    CostReport,
)
from repro.core.disjunction import disjunction_top_k
from repro.core.evaluation import compile_query, evaluate
from repro.core.fagin import FaginAlgorithm, fagin_top_k
from repro.core.filter_condition import filter_condition_top_k, filter_retrieve
from repro.core.graded import (
    GradedItem,
    GradedSet,
    ObjectId,
    from_sorted_list,
    validate_grade,
)
from repro.core.naive import grade_everything, naive_top_k
from repro.core.planner import Plan, Strategy, execute, plan_top_k, top_k
from repro.core.query import (
    And,
    Atomic,
    Not,
    Or,
    Query,
    Scored,
    Weighted,
    conjunction_of,
    disjunction_of,
)
from repro.core.result import (
    ApproximationCertificate,
    DegradedResult,
    TopKResult,
    certified_ratio,
)
from repro.core.sources import (
    DEFAULT_BATCH_SIZE,
    ArraySource,
    GradedSource,
    ListSource,
    SortedCursor,
    SortedOnlySource,
    VerifyingSource,
    check_same_objects,
    iter_wrapper_chain,
    sources_from_columns,
)
from repro.core.threshold import combined_top_k, nra_top_k, threshold_top_k

__all__ = [
    "GradedItem",
    "GradedSet",
    "ObjectId",
    "validate_grade",
    "from_sorted_list",
    "Query",
    "Atomic",
    "And",
    "Or",
    "Not",
    "Scored",
    "Weighted",
    "conjunction_of",
    "disjunction_of",
    "evaluate",
    "compile_query",
    "AccessCounter",
    "CostModel",
    "CostReport",
    "CostMeter",
    "UNIFORM",
    "SORTED_EXPENSIVE",
    "RANDOM_EXPENSIVE",
    "GradedSource",
    "ListSource",
    "ArraySource",
    "SortedOnlySource",
    "VerifyingSource",
    "SortedCursor",
    "DEFAULT_BATCH_SIZE",
    "sources_from_columns",
    "check_same_objects",
    "iter_wrapper_chain",
    "TopKResult",
    "ApproximationCertificate",
    "DegradedResult",
    "certified_ratio",
    "BatchedSource",
    "LatencyModel",
    "batched",
    "FaginAlgorithm",
    "fagin_top_k",
    "naive_top_k",
    "grade_everything",
    "disjunction_top_k",
    "threshold_top_k",
    "nra_top_k",
    "combined_top_k",
    "boolean_first_top_k",
    "filter_condition_top_k",
    "filter_retrieve",
    "hard_instance",
    "reversed_grades",
    "expected_best_object",
    "minimum_depth_for_top_one",
    "Plan",
    "Strategy",
    "plan_top_k",
    "execute",
    "top_k",
]
