"""The middleware access model: sorted access and random access (section 4).

A multimedia middleware system (Garlic) obtains information from its
subsystems in exactly two ways:

* **sorted access** — the subsystem outputs its graded set "one by one,
  along with their grades, in sorted order based on grade" until told to
  stop, and can later *resume where it left off*;
* **random access** — the subsystem reports the grade of one named
  object under the query.

:class:`GradedSource` models one ranked list (one atomic subquery bound
to one subsystem) offering both access modes, with every access charged
to an :class:`~repro.core.cost.AccessCounter` *inside* the source, so no
algorithm can under-report its cost.  :class:`SortedCursor` is the
resumable sorted-access stream; keeping the cursor alive across calls is
what lets Fagin's algorithm "continue where we left off" to fetch the
next k answers (section 4.1).

:class:`ListSource` is the standard in-memory implementation used by the
synthetic workloads; subsystems in :mod:`repro.middleware` and
:mod:`repro.multimedia` expose their atomic queries through the same
interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.cost import AccessCounter
from repro.core.graded import GradedItem, GradedSet, ObjectId, validate_grade
from repro.errors import AccessError, UnknownObjectError


class SortedCursor:
    """A resumable sorted-access stream over one source.

    ``next()`` returns the next :class:`GradedItem` in nonincreasing
    grade order (charging one sorted access), or ``None`` once the list
    is exhausted.  ``position`` counts items already delivered.
    """

    def __init__(self, source: "GradedSource") -> None:
        self._source = source
        self.position = 0

    def next(self) -> Optional[GradedItem]:
        item = self._source._item_at(self.position)
        if item is None:
            return None
        self.position += 1
        self._source.counter.record_sorted()
        return item

    def peek_grade(self) -> Optional[float]:
        """Grade the next sorted access would return, without paying.

        Not part of the paper's access model — used only by tests and
        internal invariant checks, never by the algorithms.
        """
        item = self._source._item_at(self.position)
        return None if item is None else item.grade

    @property
    def exhausted(self) -> bool:
        return self._source._item_at(self.position) is None


class GradedSource(ABC):
    """One ranked list with sorted and random access, cost-accounted.

    Subclasses implement :meth:`_item_at` (the i-th best item, 0-based)
    and :meth:`_grade_of` (the grade of a named object); the public
    methods layer the accounting on top.
    """

    #: False for repositories reachable only through sorted access
    #: ("it may be possible to obtain data from some multimedia
    #: repositories in only limited ways", section 4).
    supports_random_access = True
    #: True when every grade is 0 or 1 (a traditional relational
    #: predicate such as Artist='Beatles').  The planner uses this to
    #: pick the Boolean-conjunct-first strategy of section 4.1.
    is_boolean = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.counter = AccessCounter()

    # -- implementation hooks -------------------------------------------------
    @abstractmethod
    def _item_at(self, index: int) -> Optional[GradedItem]:
        """The index-th item of the sorted list, or None past the end."""

    @abstractmethod
    def _grade_of(self, object_id: ObjectId) -> float:
        """The grade of the object; raise UnknownObjectError if absent."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of objects in the list (the database size N)."""

    # -- public access modes ---------------------------------------------------
    def cursor(self) -> SortedCursor:
        """Open a fresh sorted-access cursor at the top of the list."""
        return SortedCursor(self)

    def random_access(self, object_id: ObjectId) -> float:
        """Grade of ``object_id`` under this source's query (one access)."""
        grade = self._grade_of(object_id)
        self.counter.record_random()
        return grade

    # -- conveniences ----------------------------------------------------------
    def object_ids(self) -> Iterable[ObjectId]:
        """All object ids, in sorted-list order.  Free (used by tests
        and the naive baseline's result checking, not by algorithms)."""
        index = 0
        while True:
            item = self._item_at(index)
            if item is None:
                return
            yield item.object_id
            index += 1

    def as_graded_set(self) -> GradedSet:
        """Materialize the full list as a graded set (accounting-free)."""
        result = GradedSet()
        index = 0
        while True:
            item = self._item_at(index)
            if item is None:
                return result
            result[item.object_id] = item.grade
            index += 1

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} n={len(self)}>"


class ListSource(GradedSource):
    """In-memory graded list: the workhorse source for synthetic workloads.

    Accepts a :class:`GradedSet`, a mapping, or ``(object, grade)`` pairs.
    Sorted order is computed once; random access is a dict lookup.  Ties
    are ordered deterministically (by object id) so runs are repeatable.
    """

    def __init__(
        self,
        items: Union[GradedSet, Mapping[ObjectId, float], Iterable[Tuple[ObjectId, float]]],
        name: str = "list",
    ) -> None:
        super().__init__(name)
        if isinstance(items, GradedSet):
            graded = items
        else:
            graded = GradedSet(items)
        self._sorted: List[GradedItem] = list(graded)
        self._grades: Dict[ObjectId, float] = graded.as_dict()

    def _item_at(self, index: int) -> Optional[GradedItem]:
        if 0 <= index < len(self._sorted):
            return self._sorted[index]
        return None

    def _grade_of(self, object_id: ObjectId) -> float:
        try:
            return self._grades[object_id]
        except KeyError:
            raise UnknownObjectError(
                f"source {self.name!r} holds no object {object_id!r}"
            ) from None

    def __len__(self) -> int:
        return len(self._sorted)


class SortedOnlySource(GradedSource):
    """A source whose repository supports only sorted access.

    Some multimedia repositories expose data "in only limited ways"
    (section 4): random access raises
    :class:`~repro.errors.UnsupportedAccessError`.  The no-random-access
    (NRA) algorithm in :mod:`repro.core.threshold` is the strategy that
    copes with such sources.
    """

    supports_random_access = False

    def __init__(self, inner: GradedSource) -> None:
        super().__init__(f"sorted-only({inner.name})")
        self._inner = inner
        # Share the inner counter so costs are attributed consistently.
        self.counter = inner.counter

    def _item_at(self, index: int) -> Optional[GradedItem]:
        return self._inner._item_at(index)

    def _grade_of(self, object_id: ObjectId) -> float:
        from repro.errors import UnsupportedAccessError

        raise UnsupportedAccessError(
            f"source {self.name!r} does not support random access"
        )

    def __len__(self) -> int:
        return len(self._inner)


class VerifyingSource(GradedSource):
    """A defensive wrapper over an untrusted subsystem's ranked list.

    Section 4.2's real-world issues include subsystems the middleware
    does not control.  Every top-k algorithm here *assumes* the sorted
    stream is nonincreasing and that random access agrees with sorted
    access; a subsystem violating either yields silently wrong answers.
    This wrapper turns both violations into immediate
    :class:`~repro.errors.AccessError` failures:

    * sorted access raises if a delivered grade exceeds its predecessor;
    * random access raises if the returned grade contradicts a grade the
      sorted stream already delivered for the same object.

    The checks are O(1) per access; the counter is shared with the
    wrapped source so accounting is unchanged.
    """

    def __init__(self, inner: GradedSource, *, tolerance: float = 1e-9) -> None:
        super().__init__(f"verified({inner.name})")
        self._inner = inner
        self._tolerance = tolerance
        self.counter = inner.counter
        self.supports_random_access = inner.supports_random_access
        self.is_boolean = inner.is_boolean
        #: grades already delivered under sorted access, for consistency
        self._delivered: Dict[ObjectId, float] = {}
        self._max_position_grade: Optional[Tuple[int, float]] = None

    def _item_at(self, index: int) -> Optional[GradedItem]:
        item = self._inner._item_at(index)
        if item is None:
            return None
        if self._max_position_grade is not None:
            deepest, grade_there = self._max_position_grade
            if index > deepest and item.grade > grade_there + self._tolerance:
                raise AccessError(
                    f"subsystem {self._inner.name!r} violated sorted order: "
                    f"grade {item.grade} at position {index} exceeds "
                    f"{grade_there} at position {deepest}"
                )
        if self._max_position_grade is None or index > self._max_position_grade[0]:
            self._max_position_grade = (index, item.grade)
        self._delivered[item.object_id] = item.grade
        return item

    def _grade_of(self, object_id: ObjectId) -> float:
        grade = self._inner._grade_of(object_id)
        seen = self._delivered.get(object_id)
        if seen is not None and abs(seen - grade) > self._tolerance:
            raise AccessError(
                f"subsystem {self._inner.name!r} is inconsistent: object "
                f"{object_id!r} graded {seen} under sorted access but "
                f"{grade} under random access"
            )
        return grade

    def __len__(self) -> int:
        return len(self._inner)


def sources_from_columns(
    grades_by_object: Mapping[ObjectId, Sequence[float]],
    names: Optional[Sequence[str]] = None,
) -> List[ListSource]:
    """Build one :class:`ListSource` per grade column.

    ``grades_by_object`` maps each object to its grade vector
    ``(g_1, ..., g_m)``; the result is the m ranked lists the section-4
    algorithms consume.  All vectors must share the same length.
    """
    arities = {len(v) for v in grades_by_object.values()}
    if len(arities) > 1:
        raise AccessError(f"inconsistent grade-vector lengths: {sorted(arities)}")
    m = arities.pop() if arities else 0
    if names is not None and len(names) != m:
        raise AccessError(f"expected {m} names, got {len(names)}")
    sources = []
    for i in range(m):
        column = {
            obj: validate_grade(vector[i])
            for obj, vector in grades_by_object.items()
        }
        label = names[i] if names is not None else f"A{i + 1}"
        sources.append(ListSource(column, name=label))
    return sources


def check_same_objects(sources: Sequence[GradedSource]) -> int:
    """Verify all sources rank the same object universe; return its size.

    Fagin's algorithm assumes each subsystem grades *every* object (an
    object absent from a list would silently act as grade 0 under sorted
    access but raise under random access).  The middleware's ID-mapping
    layer (:mod:`repro.middleware.idmap`) establishes this before
    algorithms run; this helper is the cheap sanity check used by the
    algorithm entry points.
    """
    if not sources:
        raise AccessError("at least one source is required")
    sizes = {len(s) for s in sources}
    if len(sizes) > 1:
        raise AccessError(f"sources disagree on database size: {sorted(sizes)}")
    return sizes.pop()
