"""The middleware access model: sorted access and random access (section 4).

A multimedia middleware system (Garlic) obtains information from its
subsystems in exactly two ways:

* **sorted access** — the subsystem outputs its graded set "one by one,
  along with their grades, in sorted order based on grade" until told to
  stop, and can later *resume where it left off*;
* **random access** — the subsystem reports the grade of one named
  object under the query.

:class:`GradedSource` models one ranked list (one atomic subquery bound
to one subsystem) offering both access modes, with every access charged
to an :class:`~repro.core.cost.AccessCounter` *inside* the source, so no
algorithm can under-report its cost.  :class:`SortedCursor` is the
resumable sorted-access stream; keeping the cursor alive across calls is
what lets Fagin's algorithm "continue where we left off" to fetch the
next k answers (section 4.1).

:class:`ListSource` is the standard in-memory implementation used by the
synthetic workloads; subsystems in :mod:`repro.middleware` and
:mod:`repro.multimedia` expose their atomic queries through the same
interface.  :mod:`repro.storage` provides the out-of-core
(:class:`~repro.storage.memmap.MemmapSource`) and scatter-gather
(:class:`~repro.storage.sharded.ShardedSource`) backends behind the same
seam; :func:`sources_from_columns` selects among them via ``backend``
and ``shards``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.cost import AccessCounter
from repro.core.graded import GradedItem, GradedSet, ObjectId, validate_grade
from repro.errors import AccessError, GradeError, UnknownObjectError

try:  # numpy is a declared dependency, but keep the core importable without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

#: Default window size for the algorithms' bulk sorted access.  One
#: ``next_batch`` per list per round replaces ``batch_size`` Python call
#: chains; 128 keeps the overshoot-free peek windows small while
#: amortizing the per-call overhead by two orders of magnitude.
DEFAULT_BATCH_SIZE = 128


def validate_grade_array(values, name: str, *, require_sorted: bool = False):
    """Validate a float64 grade array in one vectorized pass.

    Checks every grade is finite and lies in [0, 1]; with
    ``require_sorted`` also that the sequence is nonincreasing (the
    sorted-access contract).  Raises :class:`~repro.errors.GradeError`
    (a ``ValueError``) naming the first offending position, so a bad
    bulk load fails loudly instead of silently producing wrong bounds
    downstream.  Returns the validated array.
    """
    if _np is None:  # pragma: no cover - exercised only without numpy
        raise AccessError("array-backed sources require numpy")
    try:
        values = _np.asarray(values, dtype=_np.float64)
    except (TypeError, ValueError) as exc:
        raise GradeError(
            f"source {name!r}: grades must be real numbers: {exc}"
        ) from exc
    if values.ndim != 1:
        raise GradeError(
            f"source {name!r}: grades must be one-dimensional, got shape "
            f"{values.shape}"
        )
    if values.size:
        bad = ~((values >= 0.0) & (values <= 1.0))  # catches NaN/inf too
        if bad.any():
            index = int(bad.argmax())
            raise GradeError(
                f"source {name!r}: grade {values[index]!r} at position "
                f"{index} is not a finite number in [0, 1]"
            )
        if require_sorted and values.size > 1:
            rising = values[1:] > values[:-1]
            if rising.any():
                index = int(rising.argmax())
                raise GradeError(
                    f"source {name!r}: grades are not sorted nonincreasing: "
                    f"{float(values[index + 1])} at position {index + 1} "
                    f"exceeds {float(values[index])} at position {index}"
                )
    return values


def _fast_item(object_id: ObjectId, grade: float) -> GradedItem:
    """Build a :class:`GradedItem` bypassing ``__post_init__`` validation.

    Only for grades already validated in bulk (e.g. one vectorized check
    at :class:`ArraySource` construction) — re-validating per item would
    put a Python call back on the hot path the bulk protocol removes.
    """
    item = object.__new__(GradedItem)
    object.__setattr__(item, "object_id", object_id)
    object.__setattr__(item, "grade", grade)
    return item


class SortedCursor:
    """A resumable sorted-access stream over one source.

    ``next()`` returns the next :class:`GradedItem` in nonincreasing
    grade order (charging one sorted access), or ``None`` once the list
    is exhausted.  ``position`` counts items already delivered.

    ``next_batch(n)`` is the bulk form of the same access mode — the
    paper's "ask the subsystem for, say, the top 10 objects … then
    request the next 10".  It delivers up to ``n`` items in one call
    (fewer only at the end of the list) and charges exactly one sorted
    access per delivered item, so batch draining and item-at-a-time
    draining of the same prefix cost the same under the paper's uniform
    measure.  ``peek_batch(n)`` is the accounting-free, side-effect-free
    lookahead the algorithms use to decide how much of a batch to
    actually consume.
    """

    __slots__ = ("_source", "position")

    def __init__(self, source: "GradedSource") -> None:
        self._source = source
        self.position = 0

    def next(self) -> Optional[GradedItem]:
        item = self._source._item_at(self.position)
        if item is None:
            return None
        start = self.position
        self.position += 1
        self._source.counter.record_sorted()
        self._source._attribute_sorted(start, 1)
        return item

    def next_batch(self, n: int) -> List[GradedItem]:
        """The next ``n`` items in sorted order (charging one sorted
        access per item delivered).  Returns fewer than ``n`` items only
        when the list runs out; an exhausted cursor returns ``[]``."""
        if n <= 0:
            return []
        start = self.position
        items = self._source._items_range(start, n)
        if items:
            self.position += len(items)
            self._source.counter.record_sorted(len(items))
            self._source._attribute_sorted(start, len(items))
        return items

    def peek_batch(self, n: int) -> List[GradedItem]:
        """Up to ``n`` upcoming items, without paying or advancing.

        Peeks are side-effect-free: no counter is charged, no wrapper
        state (verification history, batch windows, caches) moves.
        """
        if n <= 0:
            return []
        return self._source._peek_range(self.position, n)

    def next_batch_columns(self, n: int) -> Tuple[List[ObjectId], "object"]:
        """Columnar :meth:`next_batch`: parallel (ids, float64 grades).

        Identical accounting and delivery semantics — one sorted access
        charged per delivered item, position advanced — but the grades
        stay in an array instead of being boxed into per-item
        :class:`GradedItem` objects.  Only bare columnar backends
        (``supports_columnar``) expose the raw hook; anything wrapped
        (verification, fault injection, tracing, ...) falls back to
        :meth:`next_batch` so wrapper bookkeeping observes every
        delivered item exactly as on the scalar path.
        """
        if n <= 0:
            return [], _np.empty(0)
        hook = getattr(self._source, "_columns_range", None)
        if hook is None:
            items = self.next_batch(n)
            return (
                [item.object_id for item in items],
                _np.asarray([item.grade for item in items], dtype=_np.float64),
            )
        start = self.position
        ids, grades = hook(start, n)
        if ids:
            self.position += len(ids)
            self._source.counter.record_sorted(len(ids))
            self._source._attribute_sorted(start, len(ids))
        return ids, grades

    def peek_batch_columns(self, n: int) -> Tuple[List[ObjectId], "object"]:
        """Columnar :meth:`peek_batch`: charge-free, position unchanged."""
        if n <= 0:
            return [], _np.empty(0)
        hook = getattr(self._source, "_columns_range", None)
        if hook is None:
            items = self.peek_batch(n)
            return (
                [item.object_id for item in items],
                _np.asarray([item.grade for item in items], dtype=_np.float64),
            )
        return hook(self.position, n)

    def peek_grade(self) -> Optional[float]:
        """Grade the next sorted access would return, without paying.

        Not part of the paper's access model — used by the algorithms'
        batch planning, tests, and internal invariant checks.
        """
        item = self._source._peek_at(self.position)
        return None if item is None else item.grade

    @property
    def exhausted(self) -> bool:
        return self._source._peek_at(self.position) is None


class GradedSource(ABC):
    """One ranked list with sorted and random access, cost-accounted.

    Subclasses implement :meth:`_item_at` (the i-th best item, 0-based)
    and :meth:`_grade_of` (the grade of a named object); the public
    methods layer the accounting on top.
    """

    #: False for repositories reachable only through sorted access
    #: ("it may be possible to obtain data from some multimedia
    #: repositories in only limited ways", section 4).
    supports_random_access = True
    #: True when every grade is 0 or 1 (a traditional relational
    #: predicate such as Artist='Beatles').  The planner uses this to
    #: pick the Boolean-conjunct-first strategy of section 4.1.
    is_boolean = False
    #: True only for bare columnar backends whose sorted prefix can be
    #: read as raw (ids, grades-array) columns (``_columns_range``).
    #: Wrappers deliberately leave this False: their per-item side
    #: effects must observe every delivery, so the vector kernels fall
    #: back to item-based access through them, and ``auto`` kernel
    #: selection only goes vectorized over all-columnar sources.
    supports_columnar = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.counter = AccessCounter()

    #: chunk size used by the accounting-free materialization helpers
    _MATERIALIZE_CHUNK = 1024

    # -- implementation hooks -------------------------------------------------
    @abstractmethod
    def _item_at(self, index: int) -> Optional[GradedItem]:
        """The index-th item of the sorted list, or None past the end."""

    @abstractmethod
    def _grade_of(self, object_id: ObjectId) -> float:
        """The grade of the object; raise UnknownObjectError if absent."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of objects in the list (the database size N)."""

    # -- bulk implementation hooks --------------------------------------------
    # Wrappers MUST override these to delegate to the wrapped source's
    # bulk hooks; otherwise wrapping silently degrades bulk access back
    # to one Python call per item.  Backends (ListSource, ArraySource)
    # override them with slice/vector implementations.
    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        """Items ``start .. start+count-1`` of the sorted list (short at
        the end).  May carry the same side effects as ``_item_at``
        (verification, batch-window charging, cache extension)."""
        items: List[GradedItem] = []
        for index in range(start, start + count):
            item = self._item_at(index)
            if item is None:
                break
            items.append(item)
        return items

    def _peek_at(self, index: int) -> Optional[GradedItem]:
        """Like ``_item_at`` but guaranteed side-effect- and charge-free.

        The default assumes ``_item_at`` is already pure (true for plain
        backends); stateful wrappers override this to bypass their
        delivery bookkeeping.
        """
        return self._item_at(index)

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        """Bulk, side-effect-free lookahead (see :meth:`_peek_at`)."""
        items: List[GradedItem] = []
        for index in range(start, start + count):
            item = self._peek_at(index)
            if item is None:
                break
            items.append(item)
        return items

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        """Grades of the named objects, without accounting (bulk form of
        ``_grade_of``); raise UnknownObjectError if any is absent."""
        return {object_id: self._grade_of(object_id) for object_id in object_ids}

    # -- storage attribution hooks ---------------------------------------------
    # Composite backends (ShardedSource) break charged totals down to
    # their physical constituents.  Both hooks forward along the wrapper
    # chain by default, so a sharded source keeps exact per-shard
    # accounting no matter how deep it sits in a wrapper stack; wrappers
    # that *translate* object ids (MappedSource) override the random
    # hook to translate before forwarding.  Neither hook charges the
    # source's own counter — that already happened at the call site.
    def _attribute_sorted(self, start: int, count: int) -> None:
        """Attribute ``count`` consumed sorted accesses from position
        ``start`` to the owning physical constituents, if any."""
        inner = getattr(self, "_inner", None)
        if inner is not None:
            inner._attribute_sorted(start, count)

    def _attribute_random(self, object_ids: Sequence[ObjectId]) -> None:
        """Attribute charged random probes of ``object_ids`` to the
        owning physical constituents, if any."""
        inner = getattr(self, "_inner", None)
        if inner is not None:
            inner._attribute_random(object_ids)

    def _record_random_probes(self, object_ids: Sequence[ObjectId]) -> None:
        """Charge random accesses whose grades were already read through
        the free bulk path.

        The vector kernels prefetch probe grades via
        :meth:`_grades_of_many` (free) and then charge exactly the
        probes the scalar path would have performed; this is the single
        charge point for that replay, so composite backends keep their
        per-constituent accounting in sync with the paper's measure.
        """
        if object_ids:
            self.counter.record_random(len(object_ids))
            self._attribute_random(object_ids)

    def prefetch_sorted(self, depth: int, *, executor=None) -> None:
        """Free hint: the caller will soon read the sorted prefix up to
        ``depth`` items.

        Never charges and never changes delivery semantics — backends
        may use it to warm caches (memmap pages, shard-merge buffers),
        optionally overlapping per-constituent reads on ``executor`` (a
        :class:`~repro.parallel.ParallelAccessExecutor`; must only be
        driven from the coordinating thread).  The default forwards
        along the wrapper chain; plain backends ignore it.
        """
        inner = getattr(self, "_inner", None)
        if inner is not None:
            inner.prefetch_sorted(depth, executor=executor)

    # -- public access modes ---------------------------------------------------
    def cursor(self) -> SortedCursor:
        """Open a fresh sorted-access cursor at the top of the list."""
        return SortedCursor(self)

    def random_access_available(self) -> bool:
        """Whether random access is currently worth attempting.

        The static ``supports_random_access`` flag says what the
        repository's protocol offers; this dynamic check also reflects
        runtime health (a resilient wrapper whose random-access circuit
        breaker is open reports False here so the planner can choose a
        sorted-only strategy up front).
        """
        return self.supports_random_access

    def random_access(self, object_id: ObjectId) -> float:
        """Grade of ``object_id`` under this source's query (one access)."""
        grade = self._grade_of(object_id)
        self.counter.record_random()
        self._attribute_random((object_id,))
        return grade

    def random_access_many(
        self, object_ids: Iterable[ObjectId]
    ) -> Dict[ObjectId, float]:
        """Grades of the named objects in one bulk request.

        The bulk form of :meth:`random_access`: one access is charged
        per requested object, so probing a set in bulk costs exactly
        what probing it one object at a time would — the call only
        amortizes the round trip, never the paper's cost measure.
        Callers should pass distinct ids (duplicates are charged per
        request, like repeated :meth:`random_access` calls would be).

        Sources that override :meth:`random_access` with special
        accounting must override this method consistently.
        """
        ids = list(object_ids)
        if not ids:
            return {}
        grades = self._grades_of_many(ids)
        self.counter.record_random(len(ids))
        self._attribute_random(ids)
        return grades

    # -- conveniences ----------------------------------------------------------
    def object_ids(self) -> Iterable[ObjectId]:
        """All object ids, in sorted-list order.  Free (used by tests
        and the naive baseline's result checking, not by algorithms);
        routed through the peek path so no wrapper charges for it.

        Columnar backends (``_columns_range``) stream raw id chunks
        instead of boxing one :class:`GradedItem` per object — on an
        N=10^7 source that is the difference between a flat generator
        and tens of millions of throwaway objects.
        """
        chunk_size = self._MATERIALIZE_CHUNK
        hook = getattr(self, "_columns_range", None)
        index = 0
        if hook is not None:
            while True:
                ids, _ = hook(index, chunk_size)
                yield from ids
                if len(ids) < chunk_size:
                    return
                index += chunk_size
        while True:
            chunk = self._peek_range(index, chunk_size)
            for item in chunk:
                yield item.object_id
            if len(chunk) < chunk_size:
                return
            index += chunk_size

    def as_graded_set(self) -> GradedSet:
        """Materialize the full list as a graded set (accounting-free).

        Uses the side-effect-free peek path, so it stays free even
        through wrappers with their own charging rules (e.g. a
        :class:`~repro.core.batching.BatchedSource` charging whole
        batches per read).  Columnar backends skip the per-item
        :class:`GradedItem` boxing entirely: chunks of raw (id, grade)
        columns land straight in the result's mapping — the grades were
        already validated in bulk when the backend was built.
        """
        result = GradedSet()
        chunk_size = self._MATERIALIZE_CHUNK
        hook = getattr(self, "_columns_range", None)
        index = 0
        if hook is not None:
            grades_map = result._grades
            while True:
                ids, grades = hook(index, chunk_size)
                grades_map.update(zip(ids, grades.tolist()))
                if len(ids) < chunk_size:
                    return result
                index += chunk_size
        while True:
            chunk = self._peek_range(index, chunk_size)
            for item in chunk:
                result[item.object_id] = item.grade
            if len(chunk) < chunk_size:
                return result
            index += chunk_size

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} n={len(self)}>"


class ListSource(GradedSource):
    """In-memory graded list: the workhorse source for synthetic workloads.

    Accepts a :class:`GradedSet`, a mapping, or ``(object, grade)`` pairs.
    Sorted order is computed once; random access is a dict lookup.  Ties
    are ordered deterministically (by object id) so runs are repeatable.
    """

    def __init__(
        self,
        items: Union[GradedSet, Mapping[ObjectId, float], Iterable[Tuple[ObjectId, float]]],
        name: str = "list",
    ) -> None:
        super().__init__(name)
        if isinstance(items, GradedSet):
            graded = items
        else:
            graded = GradedSet(items)
        self._sorted: List[GradedItem] = list(graded)
        self._grades: Dict[ObjectId, float] = graded.as_dict()

    def _item_at(self, index: int) -> Optional[GradedItem]:
        if 0 <= index < len(self._sorted):
            return self._sorted[index]
        return None

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        return self._sorted[start : start + count]

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        return self._sorted[start : start + count]

    def _grade_of(self, object_id: ObjectId) -> float:
        try:
            return self._grades[object_id]
        except KeyError:
            raise UnknownObjectError(
                f"source {self.name!r} holds no object {object_id!r}"
            ) from None

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        grades = self._grades
        try:
            return {object_id: grades[object_id] for object_id in object_ids}
        except KeyError as exc:
            raise UnknownObjectError(
                f"source {self.name!r} holds no object {exc.args[0]!r}"
            ) from None

    def as_graded_set(self) -> GradedSet:
        return GradedSet(self._grades)

    def __len__(self) -> int:
        return len(self._sorted)


class ArraySource(GradedSource):
    """Columnar, numpy-backed graded list — a drop-in ListSource alternative.

    Grades live in one contiguous ``float64`` array; sorted order is one
    ``argsort`` at construction (descending grade, ties by stringified
    object id — exactly :class:`ListSource`'s order, so the two backends
    are interchangeable object-for-object, not just grade-for-grade).
    Bulk sorted access (``_items_range``/``_peek_range``) is an array
    slice instead of one Python call per item, and grade validation is a
    single vectorized check instead of N ``validate_grade`` calls, which
    is where the bulk-access protocol's wall-clock win comes from on
    large synthetic workloads (benchmark E19).

    Accounting is identical to :class:`ListSource`: the base class
    charges one sorted access per delivered item and one random access
    per probed object, whichever access form the caller uses.
    """

    supports_columnar = True

    def __init__(
        self,
        items: Union[GradedSet, Mapping[ObjectId, float], Iterable[Tuple[ObjectId, float]]],
        name: str = "array",
    ) -> None:
        if isinstance(items, GradedSet):
            mapping: Dict[ObjectId, float] = items.as_dict()
        elif isinstance(items, Mapping):
            mapping = dict(items)
        else:
            mapping = dict(items)  # pairs or GradedItems (both unpack)
        self._init_from_arrays(list(mapping.keys()), list(mapping.values()), name)

    @classmethod
    def from_arrays(
        cls,
        object_ids: Sequence[ObjectId],
        grades,
        name: str = "array",
        *,
        presorted: bool = False,
    ) -> "ArraySource":
        """Fast path: build directly from parallel id/grade sequences.

        ``grades`` may be any array-like; every grade is validated in
        one vectorized pass to be a finite number in [0, 1], raising
        :class:`~repro.errors.GradeError` (a ``ValueError``) naming the
        first offending position.  Ids must be distinct (unlike the
        mapping constructor there is no dict to absorb duplicates, so
        they are rejected loudly).

        ``presorted=True`` trusts the *order* of the input — skipping
        the construction lexsort — but still validates that the grades
        are sorted nonincreasing (again a clear ``GradeError`` instead
        of silently wrong bounds downstream).  The caller must also
        have broken grade ties by ascending ``str(id)`` for the source
        to match the canonical order; the grade order itself is always
        checked.
        """
        source = cls.__new__(cls)
        source._init_from_arrays(
            list(object_ids), grades, name, presorted=presorted
        )
        if len(source._grades) != len(source._sorted_ids):
            raise AccessError(
                f"source {name!r}: duplicate object ids in from_arrays input"
            )
        return source

    def _init_from_arrays(
        self, ids: List[ObjectId], grades, name: str, *, presorted: bool = False
    ) -> None:
        if _np is None:  # pragma: no cover - exercised only without numpy
            raise AccessError(
                "ArraySource requires numpy; install it or use ListSource"
            )
        super().__init__(name)
        values = validate_grade_array(grades, name, require_sorted=presorted)
        if len(ids) != values.shape[0]:
            raise AccessError(
                f"source {name!r}: expected one grade per object, got "
                f"{len(ids)} ids and shape {values.shape} grades"
            )
        if presorted:
            self._sorted_grades = values
            self._sorted_ids: List[ObjectId] = list(ids)
        else:
            # One argsort replaces N log N Python comparisons.  lexsort's
            # last key is primary: descending grade, then ascending
            # str(id) — the exact GradedItem sort key, so ties break as
            # ListSource's do.
            tie_break = _np.asarray([str(obj) for obj in ids])
            order = _np.lexsort((tie_break, -values))
            self._sorted_grades = values[order]
            self._sorted_ids = [ids[j] for j in order]
        self._grades: Dict[ObjectId, float] = dict(zip(ids, values.tolist()))

    def _item_at(self, index: int) -> Optional[GradedItem]:
        if 0 <= index < len(self._sorted_ids):
            return _fast_item(
                self._sorted_ids[index], float(self._sorted_grades[index])
            )
        return None

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        ids = self._sorted_ids[start : start + count]
        grades = self._sorted_grades[start : start + count].tolist()
        return [_fast_item(obj, grade) for obj, grade in zip(ids, grades)]

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        return self._items_range(start, count)

    def _columns_range(self, start: int, count: int) -> Tuple[List[ObjectId], "object"]:
        """Raw columnar sorted prefix: (ids, float64 grade array).

        The vector kernels' zero-boxing read path (``SortedCursor.
        next_batch_columns``); charge-free by itself — the cursor does
        the accounting, exactly as with ``_items_range``.
        """
        return (
            self._sorted_ids[start : start + count],
            self._sorted_grades[start : start + count],
        )

    def _grade_of(self, object_id: ObjectId) -> float:
        try:
            return self._grades[object_id]
        except KeyError:
            raise UnknownObjectError(
                f"source {self.name!r} holds no object {object_id!r}"
            ) from None

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        grades = self._grades
        try:
            return {object_id: grades[object_id] for object_id in object_ids}
        except KeyError as exc:
            raise UnknownObjectError(
                f"source {self.name!r} holds no object {exc.args[0]!r}"
            ) from None

    def object_ids(self) -> Iterable[ObjectId]:
        return iter(self._sorted_ids)

    def as_graded_set(self) -> GradedSet:
        return GradedSet(self._grades)

    def __len__(self) -> int:
        return len(self._sorted_ids)


class SortedOnlySource(GradedSource):
    """A source whose repository supports only sorted access.

    Some multimedia repositories expose data "in only limited ways"
    (section 4): random access raises
    :class:`~repro.errors.UnsupportedAccessError`.  The no-random-access
    (NRA) algorithm in :mod:`repro.core.threshold` is the strategy that
    copes with such sources.
    """

    supports_random_access = False

    def __init__(self, inner: GradedSource) -> None:
        super().__init__(f"sorted-only({inner.name})")
        self._inner = inner
        # Share the inner counter so costs are attributed consistently.
        self.counter = inner.counter

    def _item_at(self, index: int) -> Optional[GradedItem]:
        return self._inner._item_at(index)

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        return self._inner._items_range(start, count)

    def _peek_at(self, index: int) -> Optional[GradedItem]:
        return self._inner._peek_at(index)

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        return self._inner._peek_range(start, count)

    def _grade_of(self, object_id: ObjectId) -> float:
        from repro.errors import UnsupportedAccessError

        raise UnsupportedAccessError(
            f"source {self.name!r} does not support random access"
        )

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        # Bulk random access is just as unsupported as the single form.
        from repro.errors import UnsupportedAccessError

        raise UnsupportedAccessError(
            f"source {self.name!r} does not support random access"
        )

    def __len__(self) -> int:
        return len(self._inner)


class VerifyingSource(GradedSource):
    """A defensive wrapper over an untrusted subsystem's ranked list.

    Section 4.2's real-world issues include subsystems the middleware
    does not control.  Every top-k algorithm here *assumes* the sorted
    stream is nonincreasing and that random access agrees with sorted
    access; a subsystem violating either yields silently wrong answers.
    This wrapper turns both violations into immediate
    :class:`~repro.errors.AccessError` failures:

    * sorted access raises if a delivered grade exceeds its predecessor;
    * random access raises if the returned grade contradicts a grade the
      sorted stream already delivered for the same object.

    The checks are O(1) per access; the counter is shared with the
    wrapped source so accounting is unchanged.
    """

    def __init__(self, inner: GradedSource, *, tolerance: float = 1e-9) -> None:
        super().__init__(f"verified({inner.name})")
        self._inner = inner
        self._tolerance = tolerance
        self.counter = inner.counter
        self.supports_random_access = inner.supports_random_access
        self.is_boolean = inner.is_boolean
        #: grades already delivered under sorted access, for consistency
        self._delivered: Dict[ObjectId, float] = {}
        self._max_position_grade: Optional[Tuple[int, float]] = None

    def _observe_delivery(self, index: int, item: GradedItem) -> None:
        """Record one sorted delivery, raising on an order violation."""
        if self._max_position_grade is not None:
            deepest, grade_there = self._max_position_grade
            if index > deepest and item.grade > grade_there + self._tolerance:
                raise AccessError(
                    f"subsystem {self._inner.name!r} violated sorted order: "
                    f"grade {item.grade} at position {index} exceeds "
                    f"{grade_there} at position {deepest}"
                )
        if self._max_position_grade is None or index > self._max_position_grade[0]:
            self._max_position_grade = (index, item.grade)
        self._delivered[item.object_id] = item.grade

    def _check_consistent(self, object_id: ObjectId, grade: float) -> None:
        seen = self._delivered.get(object_id)
        if seen is not None and abs(seen - grade) > self._tolerance:
            raise AccessError(
                f"subsystem {self._inner.name!r} is inconsistent: object "
                f"{object_id!r} graded {seen} under sorted access but "
                f"{grade} under random access"
            )

    def _item_at(self, index: int) -> Optional[GradedItem]:
        item = self._inner._item_at(index)
        if item is None:
            return None
        self._observe_delivery(index, item)
        return item

    def _items_range(self, start: int, count: int) -> List[GradedItem]:
        items = self._inner._items_range(start, count)
        for offset, item in enumerate(items):
            self._observe_delivery(start + offset, item)
        return items

    def _peek_at(self, index: int) -> Optional[GradedItem]:
        # Peeks are not deliveries: no verification state moves, so a
        # peek can never alter what a later random access is checked
        # against (the algorithms only ever *pay* for what they use).
        return self._inner._peek_at(index)

    def _peek_range(self, start: int, count: int) -> List[GradedItem]:
        return self._inner._peek_range(start, count)

    def _grade_of(self, object_id: ObjectId) -> float:
        grade = self._inner._grade_of(object_id)
        self._check_consistent(object_id, grade)
        return grade

    def _grades_of_many(self, object_ids: Sequence[ObjectId]) -> Dict[ObjectId, float]:
        grades = self._inner._grades_of_many(object_ids)
        for object_id, grade in grades.items():
            self._check_consistent(object_id, grade)
        return grades

    def __len__(self) -> int:
        return len(self._inner)


#: backend names accepted by :func:`sources_from_columns` and the
#: ``--backend`` plumbing (CLI, workloads, engine).
BACKEND_CHOICES = ("array", "list", "memmap")


def sources_from_columns(
    grades_by_object: Mapping[ObjectId, Sequence[float]],
    names: Optional[Sequence[str]] = None,
    *,
    backend: str = "array",
    shards: int = 1,
    directory: Optional[str] = None,
) -> List[GradedSource]:
    """Build one ranked-list source per grade column.

    ``grades_by_object`` maps each object to its grade vector
    ``(g_1, ..., g_m)``; the result is the m ranked lists the section-4
    algorithms consume.  All vectors must share the same length.

    ``backend`` selects the storage: ``"array"`` (default) builds
    numpy-backed :class:`ArraySource` columns in one vectorized pass,
    ``"list"`` the classic per-item :class:`ListSource`, and
    ``"memmap"`` out-of-core
    :class:`~repro.storage.memmap.MemmapSource` columns under
    ``directory`` (a temporary directory owned by the sources when
    omitted).  All backends produce the same sorted order and the same
    accounting; without numpy the array backend silently degrades to
    lists so callers never have to care.

    ``shards > 1`` hash-partitions every column into that many shards
    of the chosen backend behind a
    :class:`~repro.storage.sharded.ShardedSource` — answers, costs, and
    traces stay byte-identical to the monolithic build.
    """
    arities = {len(v) for v in grades_by_object.values()}
    if len(arities) > 1:
        raise AccessError(f"inconsistent grade-vector lengths: {sorted(arities)}")
    m = arities.pop() if arities else 0
    if names is not None and len(names) != m:
        raise AccessError(f"expected {m} names, got {len(names)}")
    if backend not in BACKEND_CHOICES:
        raise AccessError(
            f"unknown source backend {backend!r}; use "
            + ", ".join(BACKEND_CHOICES)
        )
    if shards < 1:
        raise AccessError(f"shards must be >= 1, got {shards}")
    labels = [
        names[i] if names is not None else f"A{i + 1}" for i in range(m)
    ]
    if shards > 1 or backend == "memmap":
        # The out-of-core and scatter-gather backends live behind the
        # storage seam; imported lazily to keep the core dependency-free.
        from repro.storage import build_column_sources

        return build_column_sources(
            grades_by_object,
            labels,
            backend=backend,
            shards=shards,
            directory=directory,
        )
    sources: List[GradedSource] = []
    if backend == "array" and _np is not None and m > 0:
        objects = list(grades_by_object.keys())
        try:
            matrix = _np.asarray(
                [grades_by_object[obj] for obj in objects], dtype=_np.float64
            )
        except (TypeError, ValueError) as exc:
            raise GradeError(f"grades must be real numbers: {exc}") from exc
        for i in range(m):
            sources.append(
                ArraySource.from_arrays(objects, matrix[:, i], name=labels[i])
            )
        return sources
    for i in range(m):
        column = {
            obj: validate_grade(vector[i])
            for obj, vector in grades_by_object.items()
        }
        sources.append(ListSource(column, name=labels[i]))
    return sources


def iter_wrapper_chain(source: GradedSource):
    """Yield a source and every source it wraps, outermost first.

    The wrapper convention throughout the library is an ``_inner``
    attribute pointing at the wrapped source (verifying, sorted-only,
    fault-injecting, resilient, mapped, tracing wrappers all follow it).
    Observability consumers — the resilience report, EXPLAIN's per-atom
    statistics — walk the chain through this helper instead of
    re-implementing the traversal.
    """
    node: Optional[GradedSource] = source
    while node is not None:
        yield node
        node = getattr(node, "_inner", None)


def check_same_objects(sources: Sequence[GradedSource]) -> int:
    """Verify all sources rank the same object universe; return its size.

    Fagin's algorithm assumes each subsystem grades *every* object (an
    object absent from a list would silently act as grade 0 under sorted
    access but raise under random access).  The middleware's ID-mapping
    layer (:mod:`repro.middleware.idmap`) establishes this before
    algorithms run; this helper is the cheap sanity check used by the
    algorithm entry points.
    """
    if not sources:
        raise AccessError("at least one source is required")
    sizes = {len(s) for s in sources}
    if len(sizes) > 1:
        raise AccessError(f"sources disagree on database size: {sorted(sizes)}")
    return sizes.pop()
