"""The m*k algorithm for disjunctions under the max rule (section 4.1).

"If the scoring function t is not strict, then A0 is not necessarily
optimal.  An interesting example arises when t is max, which corresponds
to the standard fuzzy disjunction.  In this case there is a simple
algorithm whose database access cost is only m*k, *independent of the
size N of the database*."

The algorithm: take the top k of each of the m lists under sorted access
(m*k accesses total, no random access at all), pool the candidates, and
output the k best by the maximum of their *seen* grades.

Why the seen maximum is the true grade for every emitted object: suppose
object x is emitted but its true best grade lives in a list j that never
output x.  Every one of the k objects in list j's prefix then has seen
grade >= that hidden grade > x's seen maximum, giving k candidates that
outrank x — contradicting x's selection.  And any object never seen at
all is dominated, in every list, by that list's k-object prefix, so the
pool always contains a valid top k.  Experiment E4 confirms the flat
m*k cost profile across database sizes.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, Sequence

from repro.core.cost import CostMeter
from repro.core.graded import GradedSet, ObjectId
from repro.core.result import TopKResult
from repro.core.sources import GradedSource, check_same_objects
from repro.parallel import fan_out, raise_first_error


def _prefix(source: GradedSource, depth: int):
    """The list's ``depth``-item prefix as ``(item, position)`` pairs."""
    cursor = source.cursor()
    taken = []
    for _ in range(depth):
        item = cursor.next()
        if item is None:
            break
        taken.append((item, cursor.position))
    return taken


def disjunction_top_k(
    sources: Sequence[GradedSource], k: int, *, tracer=None, executor=None
) -> TopKResult:
    """Top k answers of ``A_1 OR ... OR A_m`` under the max scoring rule.

    Costs exactly ``min(k, N) * m`` sorted accesses and zero random
    accesses.  The reported grades are exact overall grades.  The m
    prefix scans are independent, so an ``executor`` overlaps them
    whole; the candidate pool is merged in source order either way.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    database_size = check_same_objects(sources)
    depth = min(k, database_size)
    meter = CostMeter(sources)

    best_seen: Dict[ObjectId, float] = {}
    with nullcontext() if tracer is None else tracer.phase("mk-scan"):
        outcomes = fan_out(
            executor, [(lambda s=source: _prefix(s, depth)) for source in sources]
        )
        raise_first_error(outcomes)
        for source, outcome in zip(sources, outcomes):
            for item, position in outcome.value:
                if tracer is not None:
                    tracer.record_sorted(
                        source.name,
                        item.object_id,
                        item.grade,
                        position=position,
                    )
                current = best_seen.get(item.object_id)
                if current is None or item.grade > current:
                    best_seen[item.object_id] = item.grade

    pool = GradedSet(best_seen)
    return TopKResult(
        answers=pool.top(depth),
        cost=meter.report(),
        algorithm="disjunction-max",
        sorted_depth=depth,
    )
