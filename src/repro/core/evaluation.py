"""Grade semantics for Boolean combinations of atomic queries (section 3).

Given grades for the atomic queries, :func:`evaluate` computes the grade
``mu_Q(x)`` of an object under an arbitrary query AST: conjunctions by the
semantics' t-norm, disjunctions by its co-norm, negation by its negation
rule, :class:`~repro.core.query.Scored` nodes by their own scoring
function, and :class:`~repro.core.query.Weighted` nodes by the
Fagin–Wimmers formula.

:func:`compile_query` turns a query over *distinct* atoms into a single
m-ary :class:`~repro.scoring.base.ScoringFunction` of the atom grades —
the form the top-k algorithms of section 4 consume.  The compiled
function's ``is_monotone`` / ``is_strict`` flags are derived structurally
(conservatively for strictness), because the algorithms' correctness and
optimality depend on exactly those properties.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence, Union

from repro.core import query as q
from repro.core.graded import validate_grade
from repro.errors import ScoringError
from repro.scoring.base import FunctionScoring, ScoringFunction
from repro.scoring.weighted import weighted_score
from repro.scoring.zadeh import ZADEH, FuzzySemantics

#: How callers supply atom grades: a mapping keyed by Atomic (or by
#: attribute name), or a callable from Atomic to grade.
AtomGrades = Union[Mapping, Callable[[q.Atomic], float]]


def _atom_grade(atom: q.Atomic, grades: AtomGrades) -> float:
    if callable(grades) and not isinstance(grades, Mapping):
        return validate_grade(grades(atom))
    if atom in grades:
        return validate_grade(grades[atom])
    if atom.attribute in grades:
        return validate_grade(grades[atom.attribute])
    raise ScoringError(f"no grade supplied for atomic query {atom}")


def evaluate(
    node: q.Query, grades: AtomGrades, semantics: FuzzySemantics = ZADEH
) -> float:
    """Compute ``mu_Q(x)`` from the object's atomic grades.

    ``grades`` maps each atomic query (or its attribute name) to the
    object's grade under that atom; ``semantics`` supplies the
    conjunction/disjunction/negation rules (Zadeh's min/max/1-x by
    default).
    """
    if isinstance(node, q.Atomic):
        return _atom_grade(node, grades)
    if isinstance(node, q.Not):
        return semantics.negation(evaluate(node.child, grades, semantics))
    if isinstance(node, q.And):
        child_grades = [evaluate(c, grades, semantics) for c in node.children]
        return semantics.conjunction(child_grades)
    if isinstance(node, q.Or):
        child_grades = [evaluate(c, grades, semantics) for c in node.children]
        return semantics.disjunction(child_grades)
    if isinstance(node, q.Scored):
        child_grades = [evaluate(c, grades, semantics) for c in node.children]
        return node.scoring(child_grades)
    if isinstance(node, q.Weighted):
        child_grades = [evaluate(c, grades, semantics) for c in node.children]
        return weighted_score(node.base, node.weights, child_grades)
    raise ScoringError(f"unknown query node {node!r}")


def _structural_flags(node: q.Query, semantics: FuzzySemantics) -> tuple:
    """Return (is_monotone, is_strict) derived from the AST.

    Monotone: every connective on the path is monotone and there is no
    negation.  Strict (conservative): atoms are strict; an And/Scored/
    Weighted node is strict iff its rule is strict and all children are;
    an Or node is never credited with strictness (max reaches 1 off the
    corner).  Conservative means we may under-claim strictness, never
    over-claim it.
    """
    if isinstance(node, q.Atomic):
        return True, True
    if isinstance(node, q.Not):
        return False, False
    child_flags = [
        _structural_flags(c, semantics)
        for c in getattr(node, "children", ())
    ]
    children_monotone = all(f[0] for f in child_flags)
    children_strict = all(f[1] for f in child_flags)
    if isinstance(node, q.And):
        rule = semantics.conjunction
    elif isinstance(node, q.Or):
        rule = semantics.disjunction
    elif isinstance(node, q.Scored):
        rule = node.scoring
    elif isinstance(node, q.Weighted):
        # Weighted inherits from its base per [FW97]; strict only when
        # every weight is positive (zero-weight children are droppable).
        monotone = node.base.is_monotone and children_monotone
        strict = (
            node.base.is_strict
            and children_strict
            and all(w > 0 for w in node.weights)
        )
        return monotone, strict
    else:
        raise ScoringError(f"unknown query node {node!r}")
    return (
        rule.is_monotone and children_monotone,
        rule.is_strict and children_strict,
    )


def compile_query(
    node: q.Query, semantics: FuzzySemantics = ZADEH
) -> ScoringFunction:
    """Compile a query into one m-ary scoring function over its atoms.

    The atoms are taken in ``node.atoms()`` order and must be distinct
    (an atom occurring twice would receive two independent argument
    slots, changing the semantics).  The result is what the section-4
    algorithms take as their scoring function ``t``.
    """
    atoms = node.atoms()
    if len(set(atoms)) != len(atoms):
        raise ScoringError(
            "compile_query requires distinct atoms; "
            f"duplicates in {[str(a) for a in atoms]}"
        )
    positions = {atom: i for i, atom in enumerate(atoms)}

    def combined(grades: Sequence[float]) -> float:
        if len(grades) != len(atoms):
            raise ScoringError(
                f"expected {len(atoms)} grades, got {len(grades)}"
            )
        assignment = {atom: grades[i] for atom, i in positions.items()}
        return evaluate(node, assignment, semantics)

    monotone, strict = _structural_flags(node, semantics)
    return FunctionScoring(
        combined,
        name=f"compiled[{node}]",
        is_monotone=monotone,
        is_strict=strict,
        is_symmetric=False,
    )
