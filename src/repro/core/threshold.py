"""Threshold-style improvements over algorithm A0 (section 4.1's remark).

The paper notes that "there are various improvements that can be made to
algorithm A0".  The two classical ones — published by Fagin, Lotem and
Naor as TA and NRA shortly after this survey — are implemented here as
the library's extension algorithms and exercised by ablation E12:

* **TA (threshold algorithm)** — under sorted access, immediately random
  access every other list for each newly seen object, maintain the k
  best fully-graded objects, and stop as soon as the k-th best grade
  reaches the *threshold* ``t(bottom_1, ..., bottom_m)`` computed from
  the last grade seen in each list.  Correct for every monotone ``t``;
  never performs more sorted access than A0 and is instance-optimal.

* **NRA (no random access)** — for repositories that only support sorted
  access (:class:`~repro.core.sources.SortedOnlySource`).  Maintains, for
  every seen object, a lower bound (missing grades replaced by 0) and an
  upper bound (missing grades replaced by the list bottoms), and stops
  when the k best lower bounds dominate every other object's upper bound.
  By default it keeps going until the winners' bounds also converge, so
  reported grades are exact; pass ``exact_grades=False`` to stop at
  set-correctness and accept lower-bound grades.

* **CA (combined algorithm)** — interpolates between the two when a
  random access costs ``ratio`` times a sorted access (the situation the
  paper's cost-measure discussion anticipates): run NRA-style sorted
  rounds, and only once every ``ratio`` rounds spend random accesses to
  resolve the most promising incomplete object.

All require a *monotone* scoring function, like A0.

**Graceful degradation.**  NRA was defined for repositories where random
access is *unavailable* — which in a production middleware is not a
static property but a runtime one: a subsystem's random access can die
mid-query (its circuit breaker opens, see
:mod:`repro.middleware.resilience`).  The NRA core here is therefore a
resumable continuation, :func:`_nra_run`, that can start from *any*
accumulated :class:`_NraState` bookkeeping; TA maintains that
bookkeeping as it goes, and when a random probe fails degradably it
hands its cursors, bottoms, and states to the NRA continuation instead
of aborting.  If sorted streams later die too, the continuation returns
a best-effort partial answer carrying NRA lower/upper grade bounds and a
structured :class:`~repro.core.result.DegradedResult` report.
"""

from __future__ import annotations

import heapq
from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence

from repro.core.cost import CostMeter
from repro.core.graded import GradedSet, ObjectId
from repro.core.result import (
    ApproximationCertificate,
    DegradedResult,
    TopKResult,
)
from repro.core.sources import (
    DEFAULT_BATCH_SIZE,
    GradedSource,
    _fast_item,
    check_same_objects,
)
from repro.kernels import (
    GradeMatrix,
    _np,
    iter_str_keys,
    resolve_kernel,
    top_k_from_arrays,
)
from repro.parallel import fan_out, raise_first_error
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    MonotonicityError,
    TransientAccessError,
)
from repro.scoring.base import ScoringFunction, as_scoring_function

#: Failures an in-flight algorithm may survive by degrading instead of
#: aborting: retryable errors whose retries were already exhausted by
#: the resilience layer, open circuits, and blown deadline budgets.
DEGRADABLE_ACCESS_ERRORS = (
    TransientAccessError,
    CircuitOpenError,
    DeadlineExceededError,
)


def _require_monotone(rule: ScoringFunction, algorithm: str) -> None:
    if not rule.is_monotone:
        raise MonotonicityError(
            f"scoring function {rule.name!r} is declared non-monotone; "
            f"{algorithm} is only correct for monotone rules"
        )


class _NraState:
    """Bookkeeping for one seen object during NRA."""

    __slots__ = ("known",)

    def __init__(self) -> None:
        self.known: Dict[int, float] = {}

    def lower(self, rule: ScoringFunction, m: int) -> float:
        vector = [self.known.get(j, 0.0) for j in range(m)]
        return rule(vector)

    def upper(self, rule: ScoringFunction, m: int, bottoms: List[float]) -> float:
        vector = [self.known.get(j, bottoms[j]) for j in range(m)]
        return rule(vector)

    def complete(self, m: int) -> bool:
        return len(self.known) == m


def _fill_nra_snapshot(
    snapshot: Dict,
    *,
    states: Dict,
    bottoms: List[float],
    positions: List[int],
    exhausted: List[bool],
    depth: int,
    rounds: int,
    next_check: int,
    batch_size: int,
    stop_check_growth: float,
    exact_grades: bool,
    tol: float,
) -> None:
    """Record a finished NRA run's resumable state into ``snapshot``.

    Everything is copied into plain built-in containers: the snapshot
    must stay valid (and immutable in practice) after the run's own
    bookkeeping is garbage-collected or mutated by a later continuation.
    ``states`` maps object id -> {list index -> known grade} in
    first-seen order, which is exactly the insertion order a resumed
    run's bookkeeping must reproduce.
    """
    snapshot.clear()
    snapshot.update(
        kind="nra",
        states=states,
        bottoms=list(bottoms),
        positions=list(positions),
        exhausted=list(exhausted),
        depth=depth,
        rounds=rounds,
        next_check=next_check,
        batch_size=batch_size,
        stop_check_growth=stop_check_growth,
        exact_grades=exact_grades,
        tol=tol,
    )


def _nra_run(
    sources: Sequence[GradedSource],
    rule: ScoringFunction,
    k: int,
    *,
    cursors,
    states: Dict[ObjectId, _NraState],
    bottoms: List[float],
    exhausted: List[bool],
    meter: CostMeter,
    depth: int = 0,
    exact_grades: bool = True,
    tol: float = 1e-12,
    theta: float = 1.0,
    batch_size: int = 4096,
    algorithm: str = "nra",
    prior_failures: Optional[Dict[str, str]] = None,
    failed_sorted: Optional[Dict[int, str]] = None,
    tracer=None,
    phase_name: str = "nra",
    executor=None,
    stop_check_growth: float = 2.0,
    kernel: str = "scalar",
    grade_matrix: Optional[GradeMatrix] = None,
    writeback_states: bool = False,
    rounds: int = 0,
    next_check: int = 1,
    initial_check: bool = False,
    snapshot_out: Optional[Dict] = None,
) -> TopKResult:
    """The NRA main loop, resumable from arbitrary accumulated state.

    :func:`nra_top_k` calls it with fresh cursors and empty state; the
    degradation paths of TA and A0 call it mid-query with everything
    they already learned (their cursors keep their positions, so sorted
    work is never re-paid).

    The stopping condition is evaluated on a geometric schedule
    controlled by ``stop_check_growth``: after a check at round r, the
    next check happens at round ``max(int(r * stop_check_growth),
    r + 1)``.  The default of 2.0 is the classic doubling schedule
    (rounds 1, 2, 4, 8, ...) rather than checking after every access:
    recomputing every seen object's upper bound is O(seen * m), and
    checking each round would make the algorithm quadratic in the
    database size.  A growth of g can overshoot the minimal stopping
    depth by at most a factor of g (checking every round, g = 1, stops
    at the minimal depth); the default leaves the cost's asymptotic
    shape intact.

    ``kernel`` selects the implementation: ``"scalar"`` is this
    per-object dict loop, ``"vector"`` the columnar numpy kernel
    (:func:`_nra_run_vector`) with byte-identical accesses, answers and
    traces.  ``grade_matrix`` optionally seeds the vector kernel with
    already-columnar state (TA's vectorized fallback path);
    ``writeback_states`` makes the vector kernel flush what it learned
    back into ``states`` on exit (A0's degradation path reads it).

    Because the stop test only ever runs at those scheduled rounds, the
    rounds between two checks can be drained with one ``next_batch`` per
    list — there is no decision to make in between, so bulk draining
    consumes (and charges) exactly the same accesses as item-at-a-time
    draining.  ``batch_size`` merely caps how many rounds one request
    may cover.

    A sorted stream that fails with one of
    :data:`DEGRADABLE_ACCESS_ERRORS` is marked dead: its bottom freezes
    at the last grade it delivered (still a sound upper bound for its
    unseen grades) and the loop continues on the surviving lists.  When
    no list can progress and the stop test still fails, the best-effort
    top k by *lower* bound is returned with ``grades_exact=False`` and a
    ``partial-bounds`` :class:`~repro.core.result.DegradedResult`.

    **Warm-start continuations** (the result cache's tier 3) hand back a
    finished run's position on the stop-check schedule via ``rounds`` and
    ``next_check``, and set ``initial_check=True`` so the continuation
    replays the stop check its snapshot was taken at — for a shallower k
    the fill run stopped there, and a cold run at the deeper k evaluates
    that same check at the same depth before draining further, so the
    resumed access stream stays byte-identical to cold.  ``snapshot_out``
    (a dict, filled in place) captures the finished run's resumable state
    — per-object known grades, list bottoms/positions, schedule position
    — when the run completed cleanly; nothing is written after a
    degraded run, whose frozen streams cannot be resumed faithfully.

    **θ-approximation (NRA-θ).**  ``theta >= 1.0`` relaxes the stop
    test to the Fagin–Lotem–Naor rule: accept as soon as ``theta *
    kth_lower >= rivals_upper`` (and, for θ > 1, without waiting for
    the winners' own bounds to converge even under ``exact_grades``).
    Every true grade outside the answer set is then provably ≤ θ times
    every true grade inside it.  A θ > 1 stop attaches an
    :class:`~repro.core.result.ApproximationCertificate` with the
    *achieved* ratio and per-answer grade intervals; θ = 1.0 is
    decision-for-decision identical to the exact algorithm (``1.0 * x
    == x`` in IEEE-754) and attaches nothing.  Independently of θ, a
    forced partial stop (all streams dead — deadline blown, circuits
    open) certifies whatever the accumulated bounds prove as an
    *anytime* certificate instead of returning bare partial answers.
    """
    if stop_check_growth < 1.0:
        raise ValueError(
            f"stop_check_growth must be >= 1, got {stop_check_growth}"
        )
    if kernel == "vector":
        return _nra_run_vector(
            sources,
            rule,
            k,
            cursors=cursors,
            states=states,
            bottoms=bottoms,
            exhausted=exhausted,
            meter=meter,
            depth=depth,
            exact_grades=exact_grades,
            tol=tol,
            theta=theta,
            batch_size=batch_size,
            algorithm=algorithm,
            prior_failures=prior_failures,
            failed_sorted=failed_sorted,
            tracer=tracer,
            phase_name=phase_name,
            executor=executor,
            stop_check_growth=stop_check_growth,
            grade_matrix=grade_matrix,
            writeback_states=writeback_states,
            rounds=rounds,
            next_check=next_check,
            initial_check=initial_check,
            snapshot_out=snapshot_out,
        )
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    m = len(sources)
    #: lists whose sorted stream is dead, index -> reason; seeded by the
    #: caller when a stream already died before the continuation started
    #: (those indexes must also be pre-marked in ``exhausted``).
    sorted_failures: Dict[int, str] = dict(failed_sorted or {})
    answers: Optional[GradedSet] = None
    converged = True
    partial = False
    stop_kth = 0.0
    stop_bound = 0.0

    def rivals_bound(top) -> float:
        """The best overall grade any object outside ``top`` could have."""
        bound = rule(bottoms) if len(states) < database_size else 0.0
        for obj, state in states.items():
            if obj in top:
                continue
            bound = max(bound, state.upper(rule, m, bottoms))
        return bound

    def evaluate_stop() -> Optional[GradedSet]:
        nonlocal converged, stop_kth, stop_bound
        if len(states) < k:
            return None
        scored = GradedSet(
            {obj: state.lower(rule, m) for obj, state in states.items()}
        )
        top = scored.top(k)
        kth_lower = top.kth_grade(k)
        # The best any *unseen* object could achieve.
        rivals_upper = rivals_bound(top)
        if tracer is not None:
            tracer.sample("nra.kth_lower", kth_lower)
            tracer.sample("nra.rivals_upper", rivals_upper)
            tracer.sample("nra.buffer_objects", float(len(states)))
        if theta * kth_lower + tol < rivals_upper:
            return None
        if exact_grades and theta == 1.0:
            for item in top:
                state = states[item.object_id]
                if state.upper(rule, m, bottoms) - item.grade > tol:
                    return None
            converged = True
        else:
            converged = all(
                states[item.object_id].upper(rule, m, bottoms) - item.grade <= tol
                for item in top
            )
        stop_kth = kth_lower
        stop_bound = rivals_upper
        return top

    with nullcontext() if tracer is None else tracer.phase(phase_name):
        if initial_check:
            # Replay the check the snapshot was taken at, WITHOUT moving
            # the schedule: the fill run already advanced next_check past
            # this round, and a cold run at the deeper k fails this very
            # check before draining on.
            answers = evaluate_stop()
        while answers is None:
            # Drain everything up to the next scheduled stop check in one
            # batch per list; nothing is decided between checks, so this is
            # access-for-access identical to one-item rounds.
            window = min(max(next_check - rounds, 1), batch_size)
            progressed = False
            drained = 0
            # One round of sorted access across the surviving lists is m
            # independent pulls: fan them out, then merge in list-index
            # order so the accumulated state is identical to serial.
            active = [i for i in range(m) if not exhausted[i]]
            for i in active:
                # free shard-aware hint before the draining fan-out:
                # shard merges/page faults overlap here, on the
                # coordinating thread, so the consuming thunks below
                # never nest a fan-out inside the pool
                sources[i].prefetch_sorted(
                    cursors[i].position + window, executor=executor
                )
            outcomes = fan_out(
                executor,
                [
                    (lambda c=cursors[i], w=window: c.next_batch(w))
                    for i in active
                ],
            )
            for i, outcome in zip(active, outcomes):
                if outcome.error is not None:
                    if not isinstance(outcome.error, DEGRADABLE_ACCESS_ERRORS):
                        raise outcome.error
                    # Dead stream: freeze its bottom (a sound upper bound
                    # for everything it never delivered) and carry on.
                    exhausted[i] = True
                    sorted_failures[i] = str(outcome.error)
                    if tracer is not None:
                        tracer.event(
                            "sorted-stream-failed",
                            source=sources[i].name,
                            reason=str(outcome.error),
                        )
                    continue
                batch = outcome.value
                cursor = cursors[i]
                if not batch:
                    exhausted[i] = True
                    bottoms[i] = 0.0
                    continue
                progressed = True
                if tracer is not None:
                    tracer.record_sorted_batch(
                        sources[i].name, batch, cursor.position - len(batch)
                    )
                bottoms[i] = batch[-1].grade
                depth = max(depth, cursor.position)
                drained = max(drained, len(batch))
                for item in batch:
                    states.setdefault(item.object_id, _NraState()).known[i] = item.grade
            rounds += drained if progressed else 1
            if rounds >= next_check or not progressed:
                answers = evaluate_stop()
                next_check = max(int(rounds * stop_check_growth), rounds + 1)
            if not progressed and answers is None:
                # Nothing can progress.  Without failures every grade is
                # known (the lists were fully drained), so the lower bounds
                # are the true grades; with dead streams this is the
                # best-effort ranking by lower bound.
                scored = GradedSet(
                    {obj: state.lower(rule, m) for obj, state in states.items()}
                )
                answers = scored.top(k)
                stop_kth = answers.kth_grade(k) if len(answers) >= k else 0.0
                if sorted_failures:
                    partial = True
                    converged = False
                    stop_bound = rivals_bound(answers)
                else:
                    converged = True
                    stop_bound = stop_kth

    failures: Dict[str, str] = dict(prior_failures or {})
    for i, reason in sorted_failures.items():
        failures[sources[i].name] = reason
    degraded: Optional[DegradedResult] = None
    if failures:
        degraded = DegradedResult(
            failed_sources=failures,
            fallback="partial-bounds" if partial else "nra-sorted-only",
            complete=not partial,
            bounds={
                item.object_id: (
                    states[item.object_id].lower(rule, m),
                    states[item.object_id].upper(rule, m, bottoms),
                )
                for item in answers
            },
        )

    if snapshot_out is not None and not failures:
        _fill_nra_snapshot(
            snapshot_out,
            states={obj: dict(state.known) for obj, state in states.items()},
            bottoms=bottoms,
            positions=[cursor.position for cursor in cursors],
            exhausted=exhausted,
            depth=depth,
            rounds=rounds,
            next_check=next_check,
            batch_size=batch_size,
            stop_check_growth=stop_check_growth,
            exact_grades=exact_grades,
            tol=tol,
        )

    certificate: Optional[ApproximationCertificate] = None
    if partial or theta > 1.0:
        certificate = ApproximationCertificate.build(
            theta=theta,
            kth_grade=stop_kth,
            bound=stop_bound,
            intervals={
                item.object_id: (
                    states[item.object_id].lower(rule, m),
                    states[item.object_id].upper(rule, m, bottoms),
                )
                for item in answers
            },
            anytime=partial,
        )
        if tracer is not None and theta > 1.0:
            tracer.event(
                "theta-certified",
                theta=theta,
                achieved=certificate.achieved,
                kth=certificate.kth_grade,
                bound=certificate.bound,
                anytime=certificate.anytime,
            )

    return TopKResult(
        answers=answers,
        cost=meter.report(),
        algorithm=algorithm,
        sorted_depth=depth,
        grades_exact=converged,
        degraded=degraded,
        approximation=certificate,
    )


def _nra_run_vector(
    sources: Sequence[GradedSource],
    rule: ScoringFunction,
    k: int,
    *,
    cursors,
    states: Dict[ObjectId, _NraState],
    bottoms: List[float],
    exhausted: List[bool],
    meter: CostMeter,
    depth: int = 0,
    exact_grades: bool = True,
    tol: float = 1e-12,
    theta: float = 1.0,
    batch_size: int = 4096,
    algorithm: str = "nra",
    prior_failures: Optional[Dict[str, str]] = None,
    failed_sorted: Optional[Dict[int, str]] = None,
    tracer=None,
    phase_name: str = "nra",
    executor=None,
    stop_check_growth: float = 2.0,
    grade_matrix: Optional[GradeMatrix] = None,
    writeback_states: bool = False,
    rounds: int = 0,
    next_check: int = 1,
    initial_check: bool = False,
    snapshot_out: Optional[Dict] = None,
) -> TopKResult:
    """Columnar NRA: the same loop as :func:`_nra_run`, with the seen
    set in a :class:`~repro.kernels.GradeMatrix` and every stop check a
    handful of array operations.

    Byte-identity with the scalar loop is structural, not approximate:
    sorted draining follows the identical window/check schedule (so the
    charged accesses and trace records match item for item), lower and
    upper bounds are the same IEEE-754 folds via
    ``ScoringFunction.combine_matrix``, and the top-k selection uses the
    same ``(-grade, str(id))`` key through ``numpy.lexsort``.
    """
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    m = len(sources)
    matrix = (
        grade_matrix
        if grade_matrix is not None
        else GradeMatrix.from_states(states, m)
    )
    sorted_failures: Dict[int, str] = dict(failed_sorted or {})
    answers: Optional[GradedSet] = None
    answer_rows = None
    converged = True
    partial = False
    stop_kth = 0.0
    stop_bound = 0.0

    def evaluate_stop() -> Optional[GradedSet]:
        nonlocal converged, answer_rows, stop_kth, stop_bound
        if matrix.count < k:
            return None
        lower = matrix.lower_bounds(rule)
        upper = matrix.upper_bounds(rule, bottoms)
        order = matrix.top_order(lower)
        kth_lower = float(lower[order[k - 1]])
        # The best any *unseen* object could achieve.
        rivals_upper = rule(bottoms) if matrix.count < database_size else 0.0
        rest = order[k:]
        if rest.size:
            rivals_upper = max(rivals_upper, float(upper[rest].max()))
        if tracer is not None:
            tracer.sample("nra.kth_lower", kth_lower)
            tracer.sample("nra.rivals_upper", rivals_upper)
            tracer.sample("nra.buffer_objects", float(matrix.count))
        if theta * kth_lower + tol < rivals_upper:
            return None
        top_rows = order[:k]
        gaps_converged = bool(
            ((upper[top_rows] - lower[top_rows]) <= tol).all()
        )
        if exact_grades and theta == 1.0:
            if not gaps_converged:
                return None
            converged = True
        else:
            converged = gaps_converged
        stop_kth = kth_lower
        stop_bound = rivals_upper
        answer_rows = top_rows
        values = lower[top_rows].tolist()
        return GradedSet(
            {matrix.ids[row]: values[i] for i, row in enumerate(top_rows.tolist())}
        )

    with nullcontext() if tracer is None else tracer.phase(phase_name):
        if initial_check:
            # See the scalar loop: replay the snapshot's final stop check
            # without advancing the schedule.
            answers = evaluate_stop()
        while answers is None:
            window = min(max(next_check - rounds, 1), batch_size)
            progressed = False
            drained = 0
            active = [i for i in range(m) if not exhausted[i]]
            for i in active:
                # free shard-aware hint (see the scalar NRA loop)
                sources[i].prefetch_sorted(
                    cursors[i].position + window, executor=executor
                )
            outcomes = fan_out(
                executor,
                [
                    (lambda c=cursors[i], w=window: c.next_batch_columns(w))
                    for i in active
                ],
            )
            for i, outcome in zip(active, outcomes):
                if outcome.error is not None:
                    if not isinstance(outcome.error, DEGRADABLE_ACCESS_ERRORS):
                        raise outcome.error
                    exhausted[i] = True
                    sorted_failures[i] = str(outcome.error)
                    if tracer is not None:
                        tracer.event(
                            "sorted-stream-failed",
                            source=sources[i].name,
                            reason=str(outcome.error),
                        )
                    continue
                ids, grades = outcome.value
                cursor = cursors[i]
                if not ids:
                    exhausted[i] = True
                    bottoms[i] = 0.0
                    continue
                progressed = True
                if tracer is not None:
                    tracer.record_sorted_batch(
                        sources[i].name,
                        [
                            _fast_item(object_id, grade)
                            for object_id, grade in zip(ids, grades.tolist())
                        ],
                        cursor.position - len(ids),
                    )
                bottoms[i] = float(grades[-1])
                depth = max(depth, cursor.position)
                drained = max(drained, len(ids))
                matrix.add_column_batch(i, ids, grades)
            rounds += drained if progressed else 1
            if rounds >= next_check or not progressed:
                answers = evaluate_stop()
                next_check = max(int(rounds * stop_check_growth), rounds + 1)
            if not progressed and answers is None:
                lower = matrix.lower_bounds(rule)
                order = matrix.top_order(lower)
                answer_rows = order[:k]
                values = lower[answer_rows].tolist()
                answers = GradedSet(
                    {
                        matrix.ids[row]: values[i]
                        for i, row in enumerate(answer_rows.tolist())
                    }
                )
                stop_kth = (
                    float(lower[order[k - 1]]) if matrix.count >= k else 0.0
                )
                if sorted_failures:
                    partial = True
                    converged = False
                    upper = matrix.upper_bounds(rule, bottoms)
                    stop_bound = (
                        rule(bottoms) if matrix.count < database_size else 0.0
                    )
                    rest = order[k:]
                    if rest.size:
                        stop_bound = max(stop_bound, float(upper[rest].max()))
                else:
                    converged = True
                    stop_bound = stop_kth

    failures: Dict[str, str] = dict(prior_failures or {})
    for i, reason in sorted_failures.items():
        failures[sources[i].name] = reason
    degraded: Optional[DegradedResult] = None
    if failures:
        final_lower = matrix.lower_bounds(rule)
        final_upper = matrix.upper_bounds(rule, bottoms)
        degraded = DegradedResult(
            failed_sources=failures,
            fallback="partial-bounds" if partial else "nra-sorted-only",
            complete=not partial,
            bounds={
                matrix.ids[row]: (float(final_lower[row]), float(final_upper[row]))
                for row in answer_rows.tolist()
            },
        )

    if writeback_states:
        matrix.flush_to_states(states, _NraState)

    if snapshot_out is not None and not failures:
        # ``flush_to_states`` into a scratch dict converts the columnar
        # seen-set to the same {id: {column: grade}} shape the scalar
        # loop snapshots, appending rows in first-seen order — so a
        # snapshot restores identically whichever kernel wrote it.
        scratch: Dict[ObjectId, _NraState] = {}
        matrix.flush_to_states(scratch, _NraState)
        _fill_nra_snapshot(
            snapshot_out,
            states={obj: dict(state.known) for obj, state in scratch.items()},
            bottoms=bottoms,
            positions=[cursor.position for cursor in cursors],
            exhausted=exhausted,
            depth=depth,
            rounds=rounds,
            next_check=next_check,
            batch_size=batch_size,
            stop_check_growth=stop_check_growth,
            exact_grades=exact_grades,
            tol=tol,
        )

    certificate: Optional[ApproximationCertificate] = None
    if partial or theta > 1.0:
        cert_lower = matrix.lower_bounds(rule)
        cert_upper = matrix.upper_bounds(rule, bottoms)
        certificate = ApproximationCertificate.build(
            theta=theta,
            kth_grade=stop_kth,
            bound=stop_bound,
            intervals={
                matrix.ids[row]: (
                    float(cert_lower[row]),
                    float(cert_upper[row]),
                )
                for row in answer_rows.tolist()
            },
            anytime=partial,
        )
        if tracer is not None and theta > 1.0:
            tracer.event(
                "theta-certified",
                theta=theta,
                achieved=certificate.achieved,
                kth=certificate.kth_grade,
                bound=certificate.bound,
                anytime=certificate.anytime,
            )

    return TopKResult(
        answers=answers,
        cost=meter.report(),
        algorithm=algorithm,
        sorted_depth=depth,
        grades_exact=converged,
        degraded=degraded,
        approximation=certificate,
    )


def threshold_top_k(
    sources: Sequence[GradedSource],
    scoring,
    k: int,
    *,
    require_monotone: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
    degrade: bool = True,
    theta: float = 1.0,
    tracer=None,
    executor=None,
    kernel: Optional[str] = None,
) -> TopKResult:
    """Top k answers via the threshold algorithm (TA).

    Sorted access is drained in bulk: each super-round peeks a window of
    ``batch_size`` upcoming items per list (free), replays TA's
    one-item-per-list rounds over the windows in memory — issuing the
    random probes for each round's newly seen objects as one bulk
    request per list — and then consumes exactly the rounds processed
    with one ``next_batch`` per list.  The stopping rule is still
    evaluated between rounds, so the access counts are identical to
    item-at-a-time TA for every ``batch_size`` (1 reproduces the
    per-item pattern exactly).

    TA keeps NRA's per-list bookkeeping as it goes, so when ``degrade``
    is True (the default) and a random probe fails with one of
    :data:`DEGRADABLE_ACCESS_ERRORS` — e.g. the source's random-access
    circuit breaker opened — the execution does not abort: it consumes
    the sorted rows it already used and continues as an NRA run over the
    same cursors and accumulated state, still returning correct top-k
    answers from sorted access alone.  With ``degrade=False`` the error
    propagates (the E20 ablation).

    Under a ``tracer``, accesses are emitted at *logical* time — each
    row's sorted deliveries as TA's round processes them (even though
    the underlying cursor consumes them in bulk afterwards), each random
    probe when its grade arrives — and the threshold trajectory is
    sampled as ``ta.tau`` / ``ta.kth_grade`` once per round.

    ``executor`` is an optional
    :class:`~repro.parallel.ParallelAccessExecutor`: each round's bulk
    random probes (one request per list) and each super-round's sorted
    consumes fan out across its workers, with results merged in list
    order in the coordinating thread, so answers, cost, and traces are
    identical to serial execution.  ``None`` keeps the classic serial
    path.

    ``kernel`` selects the implementation (``None`` means the configured
    default): ``"scalar"`` is this per-object loop, ``"vector"`` the
    columnar kernel (:func:`_threshold_top_k_vector`), ``"auto"`` picks
    vector exactly when byte-identity is guaranteed (batch-exact rule,
    columnar sources) — see :func:`repro.kernels.resolve_kernel`.

    **θ-approximation (TA-θ).**  ``theta >= 1.0`` relaxes the stopping
    rule to ``theta * kth_grade >= τ`` (Fagin–Lotem–Naor): every
    unreported object's true grade is then provably ≤ θ times every
    reported grade.  Reported grades stay exact (TA fully resolves each
    seen object), so a θ > 1 stop attaches an
    :class:`~repro.core.result.ApproximationCertificate` with the
    achieved ratio τ/kth and no intervals; θ = 1.0 is
    decision-for-decision identical to exact TA.  The mid-query
    degradation path hands θ to the NRA continuation unchanged.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if theta < 1.0:
        raise ValueError(f"theta must be >= 1.0, got {theta}")
    rule = as_scoring_function(scoring)
    if require_monotone:
        _require_monotone(rule, "TA")
    if resolve_kernel(kernel, sources, rule) == "vector":
        return _threshold_top_k_vector(
            sources,
            rule,
            k,
            batch_size=batch_size,
            degrade=degrade,
            theta=theta,
            tracer=tracer,
            executor=executor,
        )
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    m = len(sources)
    meter = CostMeter(sources)

    cursors = [s.cursor() for s in sources]
    others = [[j for j in range(m) if j != i] for i in range(m)]
    bottoms = [1.0] * m
    #: NRA-style per-list bookkeeping, doubling as TA's seen-set; kept
    #: current so a mid-query fallback starts fully informed.
    states: Dict[ObjectId, _NraState] = {}
    overall: Dict[ObjectId, float] = {}
    # Min-heap of the k best overall grades seen so far, so the stopping
    # test is O(log k) per object instead of a re-sort per round.
    best_k: List[float] = []
    depth = 0
    stop = False
    stop_tau = 0.0

    def fall_back(
        consumed_rows: int,
        windows,
        prior_failures: Dict[str, str],
        dead: Optional[Dict[int, str]] = None,
    ) -> TopKResult:
        """Consume the sorted rows already used, then continue as NRA.

        A stream that dies while shipping those rows (``dead``, or a
        fresh failure during the consume here) is frozen in place and
        handed to the continuation as already-exhausted; the surviving
        lists carry the query.
        """
        nonlocal depth
        if tracer is not None:
            tracer.event(
                "degraded",
                algorithm="threshold-ta",
                fallback="nra",
                failures={**prior_failures, **{sources[i].name: r for i, r in (dead or {}).items()}},
            )
        failed_sorted: Dict[int, str] = dict(dead or {})
        pre_exhausted = [i in failed_sorted for i in range(m)]
        takers = [
            i
            for i in range(m)
            if not pre_exhausted[i] and min(consumed_rows, len(windows[i])) > 0
        ]
        consume_outcomes = fan_out(
            executor,
            [
                (
                    lambda c=cursors[i], t=min(consumed_rows, len(windows[i])): (
                        c.next_batch(t)
                    )
                )
                for i in takers
            ],
        )
        for i, outcome in zip(takers, consume_outcomes):
            if outcome.error is not None:
                if not isinstance(outcome.error, DEGRADABLE_ACCESS_ERRORS):
                    raise outcome.error
                failed_sorted[i] = str(outcome.error)
                pre_exhausted[i] = True
                continue
            depth = max(depth, cursors[i].position)
        return _nra_run(
            sources,
            rule,
            k,
            cursors=cursors,
            states=states,
            bottoms=bottoms,
            exhausted=pre_exhausted,
            meter=meter,
            depth=depth,
            theta=theta,
            batch_size=max(batch_size, 1),
            algorithm="threshold-ta+nra",
            prior_failures=prior_failures,
            failed_sorted=failed_sorted,
            tracer=tracer,
            phase_name="nra-fallback",
            executor=executor,
        )

    with nullcontext() if tracer is None else tracer.phase("ta"):
        while not stop:
            for i in range(m):
                # free shard-aware hint: warm the upcoming peek window
                # (memmap pages, shard-merge buffers), overlapping
                # per-shard reads on the executor when one is configured
                sources[i].prefetch_sorted(
                    cursors[i].position + batch_size, executor=executor
                )
            windows = [cursor.peek_batch(batch_size) for cursor in cursors]
            rows = max((len(window) for window in windows), default=0)
            if rows == 0:
                break  # no list can progress: exhausted
            consumed = 0
            for row in range(rows):
                # One TA round: the row-th item of every list, with bulk
                # random probes for the objects this round saw first.
                # Under a tracer each delivery is recorded here, at
                # logical access time, not at the deferred bulk consume.
                fresh: List[tuple] = []
                for i, window in enumerate(windows):
                    if row >= len(window):
                        continue
                    item = window[row]
                    if tracer is not None:
                        tracer.record_sorted(
                            sources[i].name,
                            item.object_id,
                            item.grade,
                            position=cursors[i].position + row + 1,
                        )
                    bottoms[i] = item.grade
                    state = states.get(item.object_id)
                    if state is None:
                        state = states[item.object_id] = _NraState()
                        fresh.append((item.object_id, i))
                    state.known[i] = item.grade
                consumed = row + 1
                if fresh:
                    needed: List[List[ObjectId]] = [[] for _ in range(m)]
                    for object_id, first in fresh:
                        for j in others[first]:
                            needed[j].append(object_id)
                    # The round's random probes are one bulk request per
                    # list: fan them out, merge grades (and emit trace
                    # events) in list order.  The first failure, taken
                    # in list order, is handled exactly as serial TA
                    # handles it; probes beyond it are discarded.
                    targets = [(j, ids) for j, ids in enumerate(needed) if ids]
                    probe_outcomes = fan_out(
                        executor,
                        [
                            (lambda s=sources[j], i=ids: s.random_access_many(i))
                            for j, ids in targets
                        ],
                        stop_on_error=True,
                    )
                    for (j, ids), outcome in zip(targets, probe_outcomes):
                        if not outcome.ran:
                            break
                        if outcome.error is not None:
                            if not isinstance(
                                outcome.error, DEGRADABLE_ACCESS_ERRORS
                            ):
                                raise outcome.error
                            if not degrade:
                                raise outcome.error
                            return fall_back(
                                consumed,
                                windows,
                                {sources[j].name: str(outcome.error)},
                            )
                        fetched = outcome.value
                        if tracer is not None:
                            for object_id in ids:
                                tracer.record_random(
                                    sources[j].name, object_id, fetched[object_id]
                                )
                        for object_id, grade in fetched.items():
                            states[object_id].known[j] = grade
                    for object_id, _ in fresh:
                        known = states[object_id].known
                        grade = rule([known[j] for j in range(m)])
                        overall[object_id] = grade
                        if len(best_k) < k:
                            heapq.heappush(best_k, grade)
                        elif grade > best_k[0]:
                            heapq.heapreplace(best_k, grade)
                if tracer is not None:
                    tracer.sample("ta.tau", rule(bottoms))
                    if len(best_k) >= k:
                        tracer.sample("ta.kth_grade", best_k[0])
                if len(best_k) >= k and theta * best_k[0] >= rule(bottoms):
                    stop = True
                    stop_tau = rule(bottoms)
                    if tracer is not None:
                        if theta > 1.0:
                            tracer.event(
                                "stop", tau=stop_tau, kth=best_k[0], theta=theta
                            )
                        else:
                            tracer.event("stop", tau=stop_tau, kth=best_k[0])
                    break
            died: Dict[int, str] = {}
            takers = [
                i for i in range(m) if min(consumed, len(windows[i])) > 0
            ]
            consume_outcomes = fan_out(
                executor,
                [
                    (
                        lambda c=cursors[i], t=min(consumed, len(windows[i])): (
                            c.next_batch(t)
                        )
                    )
                    for i in takers
                ],
            )
            for i, outcome in zip(takers, consume_outcomes):
                if outcome.error is not None:
                    if not isinstance(outcome.error, DEGRADABLE_ACCESS_ERRORS):
                        raise outcome.error
                    if not degrade:
                        raise outcome.error
                    died[i] = str(outcome.error)
                    continue
                depth = max(depth, cursors[i].position)
            if died and not stop:
                # A sorted stream died mid-round; its cursor is stuck, so the
                # next peek would replay the same rows forever.  Hand the
                # accumulated state to NRA with the dead list frozen out.
                return fall_back(0, windows, {}, dead=died)

    answers = GradedSet(overall).top(k)
    certificate: Optional[ApproximationCertificate] = None
    if theta > 1.0:
        # TA's reported grades are exact, so the k-th answer grade IS
        # the proven k-th best; exhaustion (no θ-stop) means exact.
        kth = best_k[0] if len(best_k) >= k else 0.0
        certificate = ApproximationCertificate.build(
            theta=theta,
            kth_grade=kth,
            bound=stop_tau if stop else kth,
        )
        if tracer is not None:
            tracer.event(
                "theta-certified",
                theta=theta,
                achieved=certificate.achieved,
                kth=certificate.kth_grade,
                bound=certificate.bound,
                anytime=False,
            )
    return TopKResult(
        answers=answers,
        cost=meter.report(),
        algorithm="threshold-ta",
        sorted_depth=depth,
        approximation=certificate,
    )


def _threshold_top_k_vector(
    sources: Sequence[GradedSource],
    rule: ScoringFunction,
    k: int,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    degrade: bool = True,
    theta: float = 1.0,
    tracer=None,
    executor=None,
) -> TopKResult:
    """Columnar TA: the same super-round structure as
    :func:`threshold_top_k` with the per-object bookkeeping vectorized.

    Per super-round the peeked windows stay columnar (no
    :class:`GradedItem` boxing on array backends), the whole window's
    threshold trajectory ``tau[row] = t(bottoms at row)`` is one
    ``combine_matrix`` call over the forward-filled bottoms matrix, and
    the final answer ranking is one lexsort instead of a full
    ``GradedSet`` sort.  The row loop itself — freshness detection,
    bulk random probes, the stop test against ``tau[row]`` — replays
    TA's rounds exactly, so accesses are charged in the same order and
    quantity as the scalar path and traces match record for record.

    Instead of maintaining NRA states dicts as it goes, the kernel keeps
    an append-only log of consumed window slices and probe results;
    when a degradable failure forces the NRA fallback, the log is
    replayed into a :class:`~repro.kernels.GradeMatrix` (content equals
    the scalar states; row order is unobservable through NRA's total
    answer order) and handed to :func:`_nra_run_vector`.
    """
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    m = len(sources)
    meter = CostMeter(sources)

    cursors = [s.cursor() for s in sources]
    others = [[j for j in range(m) if j != i] for i in range(m)]
    # Bare columnar backends cannot fail and serve random access from an
    # in-memory map, so each super-round's probe grades can be read in
    # bulk through the free peek-style path up front; the row loop then
    # charges the counters and emits the trace events for exactly the
    # probes the scalar path would perform, in the same order.  Wrapped
    # sources keep the per-row random_access_many calls so their
    # accounting (and fault behavior) observes every probe.
    columnar = m > 1 and all(
        getattr(source, "supports_columnar", False) for source in sources
    )
    bottoms = [1.0] * m
    seen = set()
    overall_ids: List[ObjectId] = []
    overall_grades: List[float] = []
    best_k: List[float] = []
    depth = 0
    stop = False
    stop_tau = 0.0
    #: consumed sorted deliveries, (list index, ids, grades) per window
    #: slice, in consumption order — replayed into a GradeMatrix if the
    #: run has to degrade to NRA.
    sorted_log: List[tuple] = []
    #: applied random-probe results, (list index, {id: grade}).
    probe_log: List[tuple] = []
    combine = rule._combine

    def bulk_round(windows, lengths, rows, tau, grades_lists):
        """One whole super-round without per-object Python: discover the
        window's fresh objects, score them in one ``combine_matrix``
        call, and replay TA's per-row heap/stop protocol over the
        precomputed grades.  Only objects first delivered at or before
        the stop row are committed, and the random-probe charge equals
        the per-row charge op for op, so cost accounting and answers
        are byte-identical to the row-at-a-time path.

        Taken only for bare columnar backends (reads are free to
        prefetch, accesses cannot fail) with a batch-exact rule and no
        tracer (per-access events would reintroduce the per-object
        loop).  Returns ``(consumed_rows, stopped)``.
        """
        nonlocal stop_tau
        window_fresh: List[tuple] = []
        fresh_by_row: List[List[int]] = [[] for _ in range(rows)]
        window_seen = set()
        for row in range(rows):
            for i in range(m):
                if row >= lengths[i]:
                    continue
                object_id = windows[i][0][row]
                if object_id in seen or object_id in window_seen:
                    continue
                window_seen.add(object_id)
                fresh_by_row[row].append(len(window_fresh))
                window_fresh.append((object_id, i))
        scores: List[float] = []
        if window_fresh:
            fresh_ids = [object_id for object_id, _ in window_fresh]
            matrix = _np.empty((len(fresh_ids), m))
            for j, source in enumerate(sources):
                fetched = source._grades_of_many(fresh_ids)
                matrix[:, j] = [fetched[object_id] for object_id in fresh_ids]
            scores = rule.combine_matrix(matrix).tolist()
        stop_row = None
        for row in range(rows):
            for index in fresh_by_row[row]:
                grade = scores[index]
                if len(best_k) < k:
                    heapq.heappush(best_k, grade)
                elif grade > best_k[0]:
                    heapq.heapreplace(best_k, grade)
            if len(best_k) >= k and theta * best_k[0] >= tau[row]:
                stop_row = row
                stop_tau = tau[row]
                break
        consumed = rows if stop_row is None else stop_row + 1
        probe_ids: List[List[ObjectId]] = [[] for _ in range(m)]
        for row in range(consumed):
            for index in fresh_by_row[row]:
                object_id, first = window_fresh[index]
                seen.add(object_id)
                overall_ids.append(object_id)
                overall_grades.append(scores[index])
                for j in others[first]:
                    probe_ids[j].append(object_id)
        for j in range(m):
            # single charge point for the prefetched reads: charges the
            # probes the scalar path would perform and attributes them
            # to composite backends' physical shards
            sources[j]._record_random_probes(probe_ids[j])
        for i in range(m):
            rows_used = min(consumed, lengths[i])
            if rows_used:
                bottoms[i] = grades_lists[i][rows_used - 1]
        return consumed, stop_row is not None

    def fall_back(
        windows,
        consume_rows: int,
        state_rows: int,
        prior_failures: Dict[str, str],
        dead: Optional[Dict[int, str]] = None,
    ) -> TopKResult:
        """Consume the sorted rows already used, replay the access log
        into columnar NRA state, and continue as vectorized NRA.

        ``consume_rows`` is how many rows of the current windows still
        need consuming (0 when the failure happened *during* the
        consume); ``state_rows`` how many were processed into TA state
        and so must be replayed regardless.
        """
        nonlocal depth
        if tracer is not None:
            tracer.event(
                "degraded",
                algorithm="threshold-ta",
                fallback="nra",
                failures={**prior_failures, **{sources[i].name: r for i, r in (dead or {}).items()}},
            )
        for i, (window_ids, window_grades) in enumerate(windows):
            rows_used = min(state_rows, len(window_ids))
            if rows_used:
                sorted_log.append(
                    (i, window_ids[:rows_used], window_grades[:rows_used])
                )
        failed_sorted: Dict[int, str] = dict(dead or {})
        pre_exhausted = [i in failed_sorted for i in range(m)]
        takers = [
            i
            for i in range(m)
            if not pre_exhausted[i]
            and min(consume_rows, len(windows[i][0])) > 0
        ]
        consume_outcomes = fan_out(
            executor,
            [
                (
                    lambda c=cursors[i], t=min(consume_rows, len(windows[i][0])): (
                        c.next_batch_columns(t)
                    )
                )
                for i in takers
            ],
        )
        for i, outcome in zip(takers, consume_outcomes):
            if outcome.error is not None:
                if not isinstance(outcome.error, DEGRADABLE_ACCESS_ERRORS):
                    raise outcome.error
                failed_sorted[i] = str(outcome.error)
                pre_exhausted[i] = True
                continue
            depth = max(depth, cursors[i].position)
        matrix = GradeMatrix(m, capacity=max(len(seen), 16))
        for i, ids, grades in sorted_log:
            matrix.add_column_batch(i, ids, grades)
        for j, fetched in probe_log:
            for object_id, grade in fetched.items():
                matrix.set_grade(object_id, j, grade)
        return _nra_run_vector(
            sources,
            rule,
            k,
            cursors=cursors,
            states={},
            bottoms=bottoms,
            exhausted=pre_exhausted,
            meter=meter,
            depth=depth,
            theta=theta,
            batch_size=max(batch_size, 1),
            algorithm="threshold-ta+nra",
            prior_failures=prior_failures,
            failed_sorted=failed_sorted,
            tracer=tracer,
            phase_name="nra-fallback",
            executor=executor,
            grade_matrix=matrix,
        )

    with nullcontext() if tracer is None else tracer.phase("ta"):
        while not stop:
            for i in range(m):
                # free shard-aware window warm-up (see scalar loop)
                sources[i].prefetch_sorted(
                    cursors[i].position + batch_size, executor=executor
                )
            windows = [cursor.peek_batch_columns(batch_size) for cursor in cursors]
            lengths = [len(window_ids) for window_ids, _ in windows]
            rows = max(lengths, default=0)
            if rows == 0:
                break  # no list can progress: exhausted
            # tau for every prospective row of this super-round in one
            # batched fold: forward-fill each list's grades over rows it
            # cannot serve (its bottom freezes), then combine rows.
            bottoms_matrix = _np.empty((rows, m))
            for i, (window_ids, window_grades) in enumerate(windows):
                length = lengths[i]
                if length:
                    bottoms_matrix[:length, i] = window_grades
                    bottoms_matrix[length:, i] = window_grades[length - 1]
                else:
                    bottoms_matrix[:, i] = bottoms[i]
            tau = rule.combine_matrix(bottoms_matrix).tolist()
            grades_lists = [grades.tolist() for _, grades in windows]
            scan_rows = rows
            prefetched = None
            if columnar and tracer is None and rule.batch_exact:
                consumed, stop = bulk_round(
                    windows, lengths, rows, tau, grades_lists
                )
                scan_rows = 0  # the bulk round already did the row scan
            else:
                consumed = 0
                if columnar:
                    candidates = [
                        object_id
                        for window_ids, _ in windows
                        for object_id in window_ids
                        if object_id not in seen
                    ]
                    if candidates:
                        candidates = list(dict.fromkeys(candidates))
                        prefetched = [
                            source._grades_of_many(candidates)
                            for source in sources
                        ]
            for row in range(scan_rows):
                fresh: List[tuple] = []
                fresh_known: Dict[ObjectId, Dict[int, float]] = {}
                for i in range(m):
                    if row >= lengths[i]:
                        continue
                    object_id = windows[i][0][row]
                    grade = grades_lists[i][row]
                    if tracer is not None:
                        tracer.record_sorted(
                            sources[i].name,
                            object_id,
                            grade,
                            position=cursors[i].position + row + 1,
                        )
                    bottoms[i] = grade
                    if object_id not in seen:
                        seen.add(object_id)
                        fresh.append((object_id, i))
                        fresh_known[object_id] = {i: grade}
                    elif object_id in fresh_known:
                        # Same object surfacing in two lists this round:
                        # second delivery lands in its in-flight grades.
                        fresh_known[object_id][i] = grade
                consumed = row + 1
                if fresh:
                    needed: List[List[ObjectId]] = [[] for _ in range(m)]
                    for object_id, first in fresh:
                        for j in others[first]:
                            needed[j].append(object_id)
                    targets = [(j, ids) for j, ids in enumerate(needed) if ids]
                    if prefetched is not None:
                        # Replay the prefetched bulk reads: same per-
                        # source charge, same trace events, same grades
                        # and ordering as random_access_many would give
                        # on this backend — without a Python call fan
                        # per row.
                        for j, ids in targets:
                            lookup = prefetched[j]
                            fetched = {
                                object_id: lookup[object_id]
                                for object_id in ids
                            }
                            sources[j]._record_random_probes(ids)
                            if tracer is not None:
                                for object_id in ids:
                                    tracer.record_random(
                                        sources[j].name,
                                        object_id,
                                        fetched[object_id],
                                    )
                            probe_log.append((j, fetched))
                            for object_id, grade in fetched.items():
                                fresh_known[object_id][j] = grade
                    else:
                        probe_outcomes = fan_out(
                            executor,
                            [
                                (lambda s=sources[j], i=ids: s.random_access_many(i))
                                for j, ids in targets
                            ],
                            stop_on_error=True,
                        )
                        for (j, ids), outcome in zip(targets, probe_outcomes):
                            if not outcome.ran:
                                break
                            if outcome.error is not None:
                                if not isinstance(
                                    outcome.error, DEGRADABLE_ACCESS_ERRORS
                                ):
                                    raise outcome.error
                                if not degrade:
                                    raise outcome.error
                                return fall_back(
                                    windows,
                                    consumed,
                                    consumed,
                                    {sources[j].name: str(outcome.error)},
                                )
                            fetched = outcome.value
                            if tracer is not None:
                                for object_id in ids:
                                    tracer.record_random(
                                        sources[j].name,
                                        object_id,
                                        fetched[object_id],
                                    )
                            probe_log.append((j, fetched))
                            for object_id, grade in fetched.items():
                                fresh_known[object_id][j] = grade
                    for object_id, _ in fresh:
                        known = fresh_known[object_id]
                        grade = combine(tuple(known[j] for j in range(m)))
                        overall_ids.append(object_id)
                        overall_grades.append(grade)
                        if len(best_k) < k:
                            heapq.heappush(best_k, grade)
                        elif grade > best_k[0]:
                            heapq.heapreplace(best_k, grade)
                if tracer is not None:
                    tracer.sample("ta.tau", tau[row])
                    if len(best_k) >= k:
                        tracer.sample("ta.kth_grade", best_k[0])
                if len(best_k) >= k and theta * best_k[0] >= tau[row]:
                    stop = True
                    stop_tau = tau[row]
                    if tracer is not None:
                        if theta > 1.0:
                            tracer.event(
                                "stop", tau=tau[row], kth=best_k[0], theta=theta
                            )
                        else:
                            tracer.event("stop", tau=tau[row], kth=best_k[0])
                    break
            died: Dict[int, str] = {}
            takers = [i for i in range(m) if min(consumed, lengths[i]) > 0]
            consume_outcomes = fan_out(
                executor,
                [
                    (
                        lambda c=cursors[i], t=min(consumed, lengths[i]): (
                            c.next_batch_columns(t)
                        )
                    )
                    for i in takers
                ],
            )
            for i, outcome in zip(takers, consume_outcomes):
                if outcome.error is not None:
                    if not isinstance(outcome.error, DEGRADABLE_ACCESS_ERRORS):
                        raise outcome.error
                    if not degrade:
                        raise outcome.error
                    died[i] = str(outcome.error)
                    continue
                depth = max(depth, cursors[i].position)
            if died and not stop:
                return fall_back(windows, 0, consumed, {}, dead=died)
            for i in range(m):
                rows_used = min(consumed, lengths[i])
                if rows_used:
                    sorted_log.append(
                        (i, windows[i][0][:rows_used], windows[i][1][:rows_used])
                    )

    if overall_ids:
        answers = GradedSet(
            top_k_from_arrays(
                overall_ids,
                iter_str_keys(overall_ids),
                _np.asarray(overall_grades, dtype=_np.float64),
                k,
            )
        )
    else:
        answers = GradedSet()
    certificate: Optional[ApproximationCertificate] = None
    if theta > 1.0:
        # See the scalar path: TA grades are exact, and exhaustion
        # without a θ-stop certifies the answer as exact (ratio 1.0).
        kth = best_k[0] if len(best_k) >= k else 0.0
        certificate = ApproximationCertificate.build(
            theta=theta,
            kth_grade=kth,
            bound=stop_tau if stop else kth,
        )
        if tracer is not None:
            tracer.event(
                "theta-certified",
                theta=theta,
                achieved=certificate.achieved,
                kth=certificate.kth_grade,
                bound=certificate.bound,
                anytime=False,
            )
    return TopKResult(
        answers=answers,
        cost=meter.report(),
        algorithm="threshold-ta",
        sorted_depth=depth,
        approximation=certificate,
    )


def nra_top_k(
    sources: Sequence[GradedSource],
    scoring,
    k: int,
    *,
    require_monotone: bool = True,
    exact_grades: bool = True,
    tol: float = 1e-12,
    theta: float = 1.0,
    batch_size: int = 4096,
    tracer=None,
    executor=None,
    stop_check_growth: float = 2.0,
    kernel: Optional[str] = None,
    snapshot_out: Optional[Dict] = None,
) -> TopKResult:
    """Top k answers using sorted access only (NRA).

    A thin wrapper over :func:`_nra_run` with fresh cursors and empty
    state; see there for the batching/stop-schedule mechanics and the
    behaviour when sorted streams die mid-run.

    ``stop_check_growth`` controls the geometric stop-check schedule
    (see :func:`_nra_run`); ``theta`` the Fagin–Lotem–Naor
    θ-approximation knob (1.0 = exact; see :func:`_nra_run`); ``kernel``
    selects the scalar or vectorized implementation (``None`` =
    configured default, resolved by
    :func:`repro.kernels.resolve_kernel`).  ``snapshot_out`` captures a
    clean run's resumable state for the result cache's warm-start tier
    (see :func:`_nra_run`).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if theta < 1.0:
        raise ValueError(f"theta must be >= 1.0, got {theta}")
    rule = as_scoring_function(scoring)
    if require_monotone:
        _require_monotone(rule, "NRA")
    m = len(sources)
    return _nra_run(
        sources,
        rule,
        k,
        cursors=[s.cursor() for s in sources],
        states={},
        bottoms=[1.0] * m,
        exhausted=[False] * m,
        meter=CostMeter(sources),
        exact_grades=exact_grades,
        tol=tol,
        theta=theta,
        batch_size=batch_size,
        tracer=tracer,
        executor=executor,
        stop_check_growth=stop_check_growth,
        kernel=resolve_kernel(kernel, sources, rule),
        snapshot_out=snapshot_out,
    )


def combined_top_k(
    sources: Sequence[GradedSource],
    scoring,
    k: int,
    *,
    ratio: float = 8.0,
    require_monotone: bool = True,
    tracer=None,
    executor=None,
    kernel: Optional[str] = None,
) -> TopKResult:
    """Top k answers via the combined algorithm (CA).

    ``ratio`` models how much more a random access costs than a sorted
    access; CA performs one resolution step — completing the incomplete
    object with the highest upper bound via random access — only every
    ``ceil(ratio)`` sorted rounds, so the random-access budget tracks
    the sorted-access budget scaled by the price ratio.

    Correctness mirrors NRA: the algorithm stops once the k best
    *exactly known* grades dominate both every incomplete object's upper
    bound and the unseen threshold ``t(bottoms)``.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if ratio < 1.0:
        raise ValueError(f"ratio must be >= 1, got {ratio}")
    rule = as_scoring_function(scoring)
    if require_monotone:
        _require_monotone(rule, "CA")
    if resolve_kernel(kernel, sources, rule) == "vector":
        return _combined_top_k_vector(
            sources, rule, k, ratio=ratio, tracer=tracer, executor=executor
        )
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    m = len(sources)
    meter = CostMeter(sources)

    cursors = [s.cursor() for s in sources]
    exhausted = [False] * m
    bottoms = [1.0] * m
    states: Dict[ObjectId, _NraState] = {}
    complete: Dict[ObjectId, float] = {}
    best_k: List[float] = []
    resolve_every = max(1, int(ratio))
    depth = 0
    rounds = 0
    next_check = 1

    def record_complete(object_id: ObjectId, grade: float) -> None:
        complete[object_id] = grade
        if len(best_k) < k:
            heapq.heappush(best_k, grade)
        elif grade > best_k[0]:
            heapq.heapreplace(best_k, grade)

    def resolve_best_incomplete() -> None:
        best_id = None
        best_upper = -1.0
        for object_id, state in states.items():
            if object_id in complete:
                continue
            upper = state.upper(rule, m, bottoms)
            if upper > best_upper:
                best_upper = upper
                best_id = object_id
        if best_id is None:
            return
        grades = states[best_id].known
        missing = [j for j in range(m) if j not in grades]
        probe_outcomes = fan_out(
            executor,
            [
                (lambda s=sources[j], o=best_id: s.random_access(o))
                for j in missing
            ],
            stop_on_error=True,
        )
        for j, outcome in zip(missing, probe_outcomes):
            if not outcome.ran:
                break
            if outcome.error is not None:
                raise outcome.error
            grades[j] = outcome.value
            if tracer is not None:
                tracer.record_random(sources[j].name, best_id, grades[j])
        record_complete(best_id, rule([grades[j] for j in range(m)]))

    def should_stop() -> bool:
        if len(best_k) < k:
            return False
        kth = best_k[0]
        if len(states) < database_size and rule(bottoms) > kth:
            return False
        for object_id, state in states.items():
            if object_id in complete:
                continue
            if state.upper(rule, m, bottoms) > kth:
                return False
        return True

    with nullcontext() if tracer is None else tracer.phase("ca"):
        while True:
            progressed = False
            active = [i for i in range(m) if not exhausted[i]]
            round_outcomes = fan_out(
                executor,
                [(lambda c=cursors[i]: c.next()) for i in active],
                stop_on_error=True,
            )
            for i, outcome in zip(active, round_outcomes):
                if not outcome.ran:
                    break
                if outcome.error is not None:
                    raise outcome.error
                item = outcome.value
                cursor = cursors[i]
                if item is None:
                    exhausted[i] = True
                    bottoms[i] = 0.0
                    continue
                progressed = True
                if tracer is not None:
                    tracer.record_sorted(
                        sources[i].name,
                        item.object_id,
                        item.grade,
                        position=cursor.position,
                    )
                bottoms[i] = item.grade
                depth = max(depth, cursor.position)
                state = states.setdefault(item.object_id, _NraState())
                state.known[i] = item.grade
                if item.object_id not in complete and state.complete(m):
                    record_complete(
                        item.object_id,
                        rule([state.known[j] for j in range(m)]),
                    )
            rounds += 1
            if rounds % resolve_every == 0:
                resolve_best_incomplete()
            if rounds >= next_check or not progressed:
                if should_stop():
                    break
                next_check = rounds * 2
            if not progressed:
                # Lists exhausted: every grade known via sorted access.
                for object_id, state in states.items():
                    if object_id not in complete:
                        record_complete(
                            object_id, rule([state.known[j] for j in range(m)])
                        )
                break

    return TopKResult(
        answers=GradedSet(complete).top(k),
        cost=meter.report(),
        algorithm="combined-ca",
        sorted_depth=depth,
    )


def _combined_top_k_vector(
    sources: Sequence[GradedSource],
    rule: ScoringFunction,
    k: int,
    *,
    ratio: float = 8.0,
    tracer=None,
    executor=None,
) -> TopKResult:
    """Columnar CA: :func:`combined_top_k` with the per-object
    bookkeeping in a :class:`~repro.kernels.GradeMatrix`.

    CA's sorted rounds are inherently one item per list (the resolution
    budget is metered per round), so the round loop stays; what gets
    vectorized is the O(seen * m) work — the stop test and the
    best-incomplete selection scan every seen object's upper bound,
    which here become single ``combine_matrix`` folds plus an argmax.
    Scalar iteration order (dict insertion order) equals matrix row
    order, so "first strict maximum" resolves the same object and the
    stop decisions are byte-identical.
    """
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    m = len(sources)
    meter = CostMeter(sources)

    cursors = [s.cursor() for s in sources]
    exhausted = [False] * m
    bottoms = [1.0] * m
    matrix = GradeMatrix(m)
    complete: Dict[ObjectId, float] = {}
    best_k: List[float] = []
    resolve_every = max(1, int(ratio))
    depth = 0
    rounds = 0
    next_check = 1
    combine = rule._combine

    def record_complete(object_id: ObjectId, grade: float) -> None:
        complete[object_id] = grade
        if len(best_k) < k:
            heapq.heappush(best_k, grade)
        elif grade > best_k[0]:
            heapq.heapreplace(best_k, grade)

    def resolve_best_incomplete() -> None:
        incomplete_rows = _np.nonzero(~matrix.complete_mask())[0]
        if not incomplete_rows.size:
            return
        upper = matrix.upper_bounds(rule, bottoms)
        # argmax = first occurrence of the maximum, in row (= insertion)
        # order — the same object the scalar strict-max scan picks.
        best_row = int(incomplete_rows[int(_np.argmax(upper[incomplete_rows]))])
        best_id = matrix.ids[best_row]
        row_values = matrix.known()[best_row]
        missing = [j for j in range(m) if row_values[j] != row_values[j]]
        probe_outcomes = fan_out(
            executor,
            [
                (lambda s=sources[j], o=best_id: s.random_access(o))
                for j in missing
            ],
            stop_on_error=True,
        )
        for j, outcome in zip(missing, probe_outcomes):
            if not outcome.ran:
                break
            if outcome.error is not None:
                raise outcome.error
            row_values[j] = outcome.value
            if tracer is not None:
                tracer.record_random(sources[j].name, best_id, outcome.value)
        record_complete(best_id, combine(tuple(row_values.tolist())))

    def should_stop() -> bool:
        if len(best_k) < k:
            return False
        kth = best_k[0]
        if matrix.count < database_size and rule(bottoms) > kth:
            return False
        incomplete = ~matrix.complete_mask()
        if incomplete.any():
            upper = matrix.upper_bounds(rule, bottoms)
            if float(upper[incomplete].max()) > kth:
                return False
        return True

    with nullcontext() if tracer is None else tracer.phase("ca"):
        while True:
            progressed = False
            active = [i for i in range(m) if not exhausted[i]]
            round_outcomes = fan_out(
                executor,
                [(lambda c=cursors[i]: c.next()) for i in active],
                stop_on_error=True,
            )
            for i, outcome in zip(active, round_outcomes):
                if not outcome.ran:
                    break
                if outcome.error is not None:
                    raise outcome.error
                item = outcome.value
                cursor = cursors[i]
                if item is None:
                    exhausted[i] = True
                    bottoms[i] = 0.0
                    continue
                progressed = True
                if tracer is not None:
                    tracer.record_sorted(
                        sources[i].name,
                        item.object_id,
                        item.grade,
                        position=cursor.position,
                    )
                bottoms[i] = item.grade
                depth = max(depth, cursor.position)
                object_id = item.object_id
                row = matrix.row_of(object_id)
                values = matrix.known()[row]
                values[i] = item.grade
                if object_id not in complete and not _np.isnan(values).any():
                    record_complete(object_id, combine(tuple(values.tolist())))
            rounds += 1
            if rounds % resolve_every == 0:
                resolve_best_incomplete()
            if rounds >= next_check or not progressed:
                if should_stop():
                    break
                next_check = rounds * 2
            if not progressed:
                # Lists exhausted: every grade known via sorted access.
                known = matrix.known()
                for row in range(matrix.count):
                    object_id = matrix.ids[row]
                    if object_id not in complete:
                        record_complete(
                            object_id, combine(tuple(known[row].tolist()))
                        )
                break

    return TopKResult(
        answers=GradedSet(complete).top(k),
        cost=meter.report(),
        algorithm="combined-ca",
        sorted_depth=depth,
    )
