"""Threshold-style improvements over algorithm A0 (section 4.1's remark).

The paper notes that "there are various improvements that can be made to
algorithm A0".  The two classical ones — published by Fagin, Lotem and
Naor as TA and NRA shortly after this survey — are implemented here as
the library's extension algorithms and exercised by ablation E12:

* **TA (threshold algorithm)** — under sorted access, immediately random
  access every other list for each newly seen object, maintain the k
  best fully-graded objects, and stop as soon as the k-th best grade
  reaches the *threshold* ``t(bottom_1, ..., bottom_m)`` computed from
  the last grade seen in each list.  Correct for every monotone ``t``;
  never performs more sorted access than A0 and is instance-optimal.

* **NRA (no random access)** — for repositories that only support sorted
  access (:class:`~repro.core.sources.SortedOnlySource`).  Maintains, for
  every seen object, a lower bound (missing grades replaced by 0) and an
  upper bound (missing grades replaced by the list bottoms), and stops
  when the k best lower bounds dominate every other object's upper bound.
  By default it keeps going until the winners' bounds also converge, so
  reported grades are exact; pass ``exact_grades=False`` to stop at
  set-correctness and accept lower-bound grades.

* **CA (combined algorithm)** — interpolates between the two when a
  random access costs ``ratio`` times a sorted access (the situation the
  paper's cost-measure discussion anticipates): run NRA-style sorted
  rounds, and only once every ``ratio`` rounds spend random accesses to
  resolve the most promising incomplete object.

All require a *monotone* scoring function, like A0.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set

from repro.core.cost import CostMeter
from repro.core.graded import GradedSet, ObjectId
from repro.core.result import TopKResult
from repro.core.sources import DEFAULT_BATCH_SIZE, GradedSource, check_same_objects
from repro.errors import MonotonicityError
from repro.scoring.base import ScoringFunction, as_scoring_function


def _require_monotone(rule: ScoringFunction, algorithm: str) -> None:
    if not rule.is_monotone:
        raise MonotonicityError(
            f"scoring function {rule.name!r} is declared non-monotone; "
            f"{algorithm} is only correct for monotone rules"
        )


def threshold_top_k(
    sources: Sequence[GradedSource],
    scoring,
    k: int,
    *,
    require_monotone: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> TopKResult:
    """Top k answers via the threshold algorithm (TA).

    Sorted access is drained in bulk: each super-round peeks a window of
    ``batch_size`` upcoming items per list (free), replays TA's
    one-item-per-list rounds over the windows in memory — issuing the
    random probes for each round's newly seen objects as one bulk
    request per list — and then consumes exactly the rounds processed
    with one ``next_batch`` per list.  The stopping rule is still
    evaluated between rounds, so the access counts are identical to
    item-at-a-time TA for every ``batch_size`` (1 reproduces the
    per-item pattern exactly).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    rule = as_scoring_function(scoring)
    if require_monotone:
        _require_monotone(rule, "TA")
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    m = len(sources)
    meter = CostMeter(sources)

    cursors = [s.cursor() for s in sources]
    others = [[j for j in range(m) if j != i] for i in range(m)]
    bottoms = [1.0] * m
    overall: Dict[ObjectId, float] = {}
    # Min-heap of the k best overall grades seen so far, so the stopping
    # test is O(log k) per object instead of a re-sort per round.
    best_k: List[float] = []
    depth = 0
    stop = False

    while not stop:
        windows = [cursor.peek_batch(batch_size) for cursor in cursors]
        rows = max((len(window) for window in windows), default=0)
        if rows == 0:
            break  # no list can progress: exhausted
        consumed = 0
        for row in range(rows):
            # One TA round: the row-th item of every list, with bulk
            # random probes for the objects this round saw first.
            fresh: List[tuple] = []
            for i, window in enumerate(windows):
                if row >= len(window):
                    continue
                item = window[row]
                bottoms[i] = item.grade
                if item.object_id not in overall:
                    overall[item.object_id] = 0.0  # placeholder: seen
                    fresh.append((item.object_id, i, item.grade))
            if fresh:
                probes: List[Dict[ObjectId, float]] = [{} for _ in range(m)]
                needed: List[List[ObjectId]] = [[] for _ in range(m)]
                for object_id, first, _ in fresh:
                    for j in others[first]:
                        needed[j].append(object_id)
                for j, ids in enumerate(needed):
                    if ids:
                        probes[j] = sources[j].random_access_many(ids)
                for object_id, first, sorted_grade in fresh:
                    grades = [probes[j][object_id] for j in range(m) if j != first]
                    grades.insert(first, sorted_grade)
                    grade = rule(grades)
                    overall[object_id] = grade
                    if len(best_k) < k:
                        heapq.heappush(best_k, grade)
                    elif grade > best_k[0]:
                        heapq.heapreplace(best_k, grade)
            consumed = row + 1
            if len(best_k) >= k and best_k[0] >= rule(bottoms):
                stop = True
                break
        for i, cursor in enumerate(cursors):
            take = min(consumed, len(windows[i]))
            if take:
                cursor.next_batch(take)
                depth = max(depth, cursor.position)

    return TopKResult(
        answers=GradedSet(overall).top(k),
        cost=meter.report(),
        algorithm="threshold-ta",
        sorted_depth=depth,
    )


class _NraState:
    """Bookkeeping for one seen object during NRA."""

    __slots__ = ("known",)

    def __init__(self) -> None:
        self.known: Dict[int, float] = {}

    def lower(self, rule: ScoringFunction, m: int) -> float:
        vector = [self.known.get(j, 0.0) for j in range(m)]
        return rule(vector)

    def upper(self, rule: ScoringFunction, m: int, bottoms: List[float]) -> float:
        vector = [self.known.get(j, bottoms[j]) for j in range(m)]
        return rule(vector)

    def complete(self, m: int) -> bool:
        return len(self.known) == m


def nra_top_k(
    sources: Sequence[GradedSource],
    scoring,
    k: int,
    *,
    require_monotone: bool = True,
    exact_grades: bool = True,
    tol: float = 1e-12,
    batch_size: int = 4096,
) -> TopKResult:
    """Top k answers using sorted access only (NRA).

    The stopping condition is evaluated on a doubling schedule (rounds
    1, 2, 4, 8, ...) rather than after every access: recomputing every
    seen object's upper bound is O(seen * m), and checking each round
    would make the algorithm quadratic in the database size.  The
    schedule can overshoot the minimal stopping depth by at most a
    factor of two, which leaves the cost's asymptotic shape intact.

    Because the stop test only ever runs at those scheduled rounds, the
    rounds between two checks can be drained with one ``next_batch`` per
    list — there is no decision to make in between, so bulk draining
    consumes (and charges) exactly the same accesses as item-at-a-time
    draining.  ``batch_size`` merely caps how many rounds one request
    may cover.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    rule = as_scoring_function(scoring)
    if require_monotone:
        _require_monotone(rule, "NRA")
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    m = len(sources)
    meter = CostMeter(sources)

    cursors = [s.cursor() for s in sources]
    exhausted = [False] * m
    bottoms = [1.0] * m
    states: Dict[ObjectId, _NraState] = {}
    depth = 0
    rounds = 0
    next_check = 1
    answers: Optional[GradedSet] = None
    converged = True

    def evaluate_stop() -> Optional[GradedSet]:
        nonlocal converged
        if len(states) < k:
            return None
        scored = GradedSet(
            {obj: state.lower(rule, m) for obj, state in states.items()}
        )
        top = scored.top(k)
        kth_lower = top.kth_grade(k)
        # The best any *unseen* object could achieve.
        rivals_upper = rule(bottoms) if len(states) < database_size else 0.0
        for obj, state in states.items():
            if obj in top:
                continue
            rivals_upper = max(rivals_upper, state.upper(rule, m, bottoms))
        if kth_lower + tol < rivals_upper:
            return None
        if exact_grades:
            for item in top:
                state = states[item.object_id]
                if state.upper(rule, m, bottoms) - item.grade > tol:
                    return None
            converged = True
        else:
            converged = all(
                states[item.object_id].upper(rule, m, bottoms) - item.grade <= tol
                for item in top
            )
        return top

    while answers is None:
        # Drain everything up to the next scheduled stop check in one
        # batch per list; nothing is decided between checks, so this is
        # access-for-access identical to one-item rounds.
        window = min(max(next_check - rounds, 1), batch_size)
        progressed = False
        drained = 0
        for i, cursor in enumerate(cursors):
            if exhausted[i]:
                continue
            batch = cursor.next_batch(window)
            if not batch:
                exhausted[i] = True
                bottoms[i] = 0.0
                continue
            progressed = True
            bottoms[i] = batch[-1].grade
            depth = max(depth, cursor.position)
            drained = max(drained, len(batch))
            for item in batch:
                states.setdefault(item.object_id, _NraState()).known[i] = item.grade
        rounds += drained if progressed else 1
        if rounds >= next_check or not progressed:
            answers = evaluate_stop()
            next_check = rounds * 2
        if not progressed and answers is None:
            # Lists exhausted: every grade is known, so the lower bounds
            # are the true grades and the pool is the whole database.
            scored = GradedSet(
                {obj: state.lower(rule, m) for obj, state in states.items()}
            )
            answers = scored.top(k)
            converged = True

    return TopKResult(
        answers=answers,
        cost=meter.report(),
        algorithm="nra",
        sorted_depth=depth,
        grades_exact=converged,
    )


def combined_top_k(
    sources: Sequence[GradedSource],
    scoring,
    k: int,
    *,
    ratio: float = 8.0,
    require_monotone: bool = True,
) -> TopKResult:
    """Top k answers via the combined algorithm (CA).

    ``ratio`` models how much more a random access costs than a sorted
    access; CA performs one resolution step — completing the incomplete
    object with the highest upper bound via random access — only every
    ``ceil(ratio)`` sorted rounds, so the random-access budget tracks
    the sorted-access budget scaled by the price ratio.

    Correctness mirrors NRA: the algorithm stops once the k best
    *exactly known* grades dominate both every incomplete object's upper
    bound and the unseen threshold ``t(bottoms)``.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if ratio < 1.0:
        raise ValueError(f"ratio must be >= 1, got {ratio}")
    rule = as_scoring_function(scoring)
    if require_monotone:
        _require_monotone(rule, "CA")
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    m = len(sources)
    meter = CostMeter(sources)

    cursors = [s.cursor() for s in sources]
    exhausted = [False] * m
    bottoms = [1.0] * m
    states: Dict[ObjectId, _NraState] = {}
    complete: Dict[ObjectId, float] = {}
    best_k: List[float] = []
    resolve_every = max(1, int(ratio))
    depth = 0
    rounds = 0
    next_check = 1

    def record_complete(object_id: ObjectId, grade: float) -> None:
        complete[object_id] = grade
        if len(best_k) < k:
            heapq.heappush(best_k, grade)
        elif grade > best_k[0]:
            heapq.heapreplace(best_k, grade)

    def resolve_best_incomplete() -> None:
        best_id = None
        best_upper = -1.0
        for object_id, state in states.items():
            if object_id in complete:
                continue
            upper = state.upper(rule, m, bottoms)
            if upper > best_upper:
                best_upper = upper
                best_id = object_id
        if best_id is None:
            return
        grades = states[best_id].known
        for j, source in enumerate(sources):
            if j not in grades:
                grades[j] = source.random_access(best_id)
        record_complete(best_id, rule([grades[j] for j in range(m)]))

    def should_stop() -> bool:
        if len(best_k) < k:
            return False
        kth = best_k[0]
        if len(states) < database_size and rule(bottoms) > kth:
            return False
        for object_id, state in states.items():
            if object_id in complete:
                continue
            if state.upper(rule, m, bottoms) > kth:
                return False
        return True

    while True:
        progressed = False
        for i, cursor in enumerate(cursors):
            if exhausted[i]:
                continue
            item = cursor.next()
            if item is None:
                exhausted[i] = True
                bottoms[i] = 0.0
                continue
            progressed = True
            bottoms[i] = item.grade
            depth = max(depth, cursor.position)
            state = states.setdefault(item.object_id, _NraState())
            state.known[i] = item.grade
            if item.object_id not in complete and state.complete(m):
                record_complete(
                    item.object_id,
                    rule([state.known[j] for j in range(m)]),
                )
        rounds += 1
        if rounds % resolve_every == 0:
            resolve_best_incomplete()
        if rounds >= next_check or not progressed:
            if should_stop():
                break
            next_check = rounds * 2
        if not progressed:
            # Lists exhausted: every grade known via sorted access.
            for object_id, state in states.items():
                if object_id not in complete:
                    record_complete(
                        object_id, rule([state.known[j] for j in range(m)])
                    )
            break

    return TopKResult(
        answers=GradedSet(complete).top(k),
        cost=meter.report(),
        algorithm="combined-ca",
        sorted_depth=depth,
    )
