"""Parallel multi-subsystem access scheduling (section 4's cost model).

The paper charges database access cost across *m independent
subsystems*; Fagin–Lotem–Naor note explicitly that the sorted accesses
of one round "can be done in parallel" without affecting
instance-optimality, and a real Garlic-style middleware talks to remote
repositories whose latencies overlap for free.  Serially issued, one
algorithm round costs the *sum* of the m per-subsystem latencies;
fanned out, it costs the *max*.

:class:`ParallelAccessExecutor` is the round-based scheduler the
algorithms use for that fan-out.  The unit of work is one *fan-out*: a
short list of independent access thunks — the m sorted-access pops of a
TA/A0/NRA/CA round, or the per-list bulk random probes for a round's
newly seen objects.  :func:`fan_out` runs them (concurrently when the
executor has more than one worker, inline otherwise) and returns one
:class:`Outcome` per thunk **in submission order**, so callers merge
results deterministically by (list index, position) and the answers,
tie-breaks, charged access counts, traces, and resilience reports are
byte-identical to serial execution.

Determinism contract
--------------------
* Thunks are independent: none waits on another, so any worker count
  ``>= 1`` drains a fan-out without deadlock.
* Workers only *perform accesses*.  All state merging — grade
  bookkeeping, trace emission, cost interpretation — happens in the
  coordinating thread, in submission order, after the join.
* Exceptions are captured per thunk and surfaced in submission order;
  the first failing index is handled exactly as serial execution would
  handle it (degradation, fallback, or re-raise).  Under faults a
  parallel run may *charge* accesses a serial run would have skipped
  (thunks after a serial abort point have already run), which never
  affects answer exactness — only fault-free runs promise byte-equal
  cost, and the conformance suite pins exactly that.
* ``max_workers=1`` (or ``executor=None``) runs every thunk inline in
  the calling thread: the serial fallback, with no pool and no threads.

``before_access`` is a test seam: a callable invoked as
``before_access(index)`` immediately before thunk ``index`` runs (in
the worker that runs it).  The concurrency stress suite injects seeded
jitter there to fuzz worker interleavings; production code leaves it
``None``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")

#: Thunks a fan-out runs: zero-argument callables performing one access.
AccessThunk = Callable[[], T]


class Outcome:
    """Result of one thunk of a fan-out: a value or a captured error.

    ``ran`` is False only for thunks skipped by a serial
    ``stop_on_error`` fan-out (parallel fan-outs run everything).
    Callers must check ``error`` before using ``value``.
    """

    __slots__ = ("value", "error", "ran")

    def __init__(self, value=None, error: Optional[Exception] = None, ran: bool = True) -> None:
        self.value = value
        self.error = error
        self.ran = ran

    @property
    def ok(self) -> bool:
        return self.ran and self.error is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.ran:
            return "<Outcome skipped>"
        if self.error is not None:
            return f"<Outcome error={self.error!r}>"
        return f"<Outcome value={self.value!r}>"


def _run_one(thunk: AccessThunk, hook, index: int) -> Outcome:
    try:
        if hook is not None:
            hook(index)
        return Outcome(thunk())
    except Exception as error:  # noqa: BLE001 - re-raised by the merge loop
        return Outcome(None, error)


class ParallelAccessExecutor:
    """Round scheduler fanning independent subsystem accesses across threads.

    Parameters
    ----------
    max_workers:
        Concurrency of one fan-out.  ``1`` (the default) is the serial
        fallback: thunks run inline in the calling thread, in order,
        with no thread pool at all — the zero-overhead configuration
        the conformance suite measures serial equivalence against.
    before_access:
        Optional ``hook(index)`` run immediately before each thunk, in
        whichever thread runs it.  A test seam for interleaving fuzzing;
        it must not raise in production use (a raise is captured as that
        thunk's error).

    The thread pool is created lazily on the first parallel fan-out and
    shut down by :meth:`shutdown` (or the context manager).  Executors
    are reusable across queries — the engine keeps one per configured
    session — and safe to drive from *multiple* coordinating threads
    concurrently: each :meth:`run` call owns its futures and merges only
    its own outcomes, so the query service shares one pool across many
    in-flight queries (see :class:`repro.service.FairShareExecutor` for
    the per-query concurrency cap over such a shared pool).  Distinct
    executors are fully independent.
    """

    def __init__(
        self,
        max_workers: int = 1,
        *,
        before_access: Optional[Callable[[int], None]] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.before_access = before_access
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether fan-outs may actually overlap accesses."""
        return self.max_workers > 1

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-access",
                )
            return self._pool

    # ------------------------------------------------------------------
    def run(
        self, thunks: Sequence[AccessThunk], *, stop_on_error: bool = False
    ) -> List[Outcome]:
        """Run a fan-out; outcomes come back in submission order.

        ``stop_on_error`` reproduces serial short-circuiting *in serial
        mode only*: when a thunk errors, the remaining thunks are
        returned as skipped outcomes (``ran=False``) instead of being
        run — exactly what a serial loop that raises at thunk ``i``
        would have done.  A parallel fan-out always runs every thunk
        (they are already in flight when the error surfaces); the merge
        loop still observes the first error at the same index.
        """
        hook = self.before_access
        if not self.parallel or len(thunks) <= 1:
            outcomes: List[Outcome] = []
            failed = False
            for index, thunk in enumerate(thunks):
                if failed and stop_on_error:
                    outcomes.append(Outcome(None, None, ran=False))
                    continue
                outcome = _run_one(thunk, hook, index)
                outcomes.append(outcome)
                if outcome.error is not None:
                    failed = True
            return outcomes
        pool = self._ensure_pool()
        futures = [
            pool.submit(_run_one, thunk, hook, index)
            for index, thunk in enumerate(thunks)
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Release the worker threads (idempotent; executor unusable
        for parallel fan-outs afterwards only if re-entered — a fresh
        pool is created lazily on the next parallel run)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelAccessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"<ParallelAccessExecutor max_workers={self.max_workers}>"


def fan_out(
    executor: Optional[ParallelAccessExecutor],
    thunks: Sequence[AccessThunk],
    *,
    stop_on_error: bool = False,
) -> List[Outcome]:
    """Run one fan-out under an optional executor.

    ``executor=None`` is the classic serial path — thunks run inline,
    in order, honoring ``stop_on_error`` — so algorithm call sites can
    use one code shape for both modes.
    """
    if executor is not None:
        return executor.run(thunks, stop_on_error=stop_on_error)
    outcomes: List[Outcome] = []
    failed = False
    for thunk in thunks:
        if failed and stop_on_error:
            outcomes.append(Outcome(None, None, ran=False))
            continue
        try:
            outcomes.append(Outcome(thunk()))
        except Exception as error:  # noqa: BLE001 - re-raised by the merge loop
            outcomes.append(Outcome(None, error))
            failed = True
    return outcomes


def raise_first_error(outcomes: Sequence[Outcome]) -> None:
    """Re-raise the first (by submission index) captured error, if any.

    The merge-side helper for call sites with no degradation handling:
    serial execution would have raised at that index, so the parallel
    merge does too.
    """
    for outcome in outcomes:
        if outcome.ran and outcome.error is not None:
            raise outcome.error
