"""Synthetic image model (the substitution for real QBIC image data).

The paper evaluates color/shape queries over IBM-internal image
collections we do not have; per the reproduction plan (DESIGN.md) we
substitute procedurally generated images: a background color plus a few
colored geometric shapes on a unit canvas.  Every downstream computation
— color histograms, the quadratic-form distance of Eq. 1, the
distance-bounding filter of Eq. 2, shape descriptors — operates on the
*rasterized pixels* or the *shape boundaries*, exactly as it would on
real images, so the substitution changes the data, not the code paths.

Shapes know how to rasterize themselves (a boolean mask over the pixel
grid) and how to emit their boundary polygon (for the shape-distance
functions of :mod:`repro.multimedia.shape`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

RGB = Tuple[float, float, float]

#: Named colors for query targets ("Color='red'") and themed generation.
NAMED_COLORS: Dict[str, RGB] = {
    "red": (0.90, 0.10, 0.10),
    "green": (0.10, 0.75, 0.15),
    "blue": (0.15, 0.20, 0.85),
    "yellow": (0.92, 0.85, 0.10),
    "orange": (0.95, 0.55, 0.10),
    "purple": (0.55, 0.15, 0.75),
    "pink": (0.95, 0.55, 0.70),
    "brown": (0.50, 0.30, 0.12),
    "white": (0.95, 0.95, 0.95),
    "black": (0.05, 0.05, 0.05),
    "gray": (0.50, 0.50, 0.50),
    "cyan": (0.10, 0.80, 0.80),
}

#: Shape kinds the generator can draw; 'circle' is the "round" of the
#: paper's running query (Shape='round').
SHAPE_KINDS = ("circle", "square", "rectangle", "triangle", "ellipse")


@dataclass(frozen=True)
class ShapeSpec:
    """One colored shape on the unit canvas.

    ``center`` and ``size`` are in canvas units (the canvas is the unit
    square); ``rotation`` is radians counterclockwise; ``aspect``
    stretches rectangles/ellipses.
    """

    kind: str
    center: Tuple[float, float]
    size: float
    color: RGB
    rotation: float = 0.0
    aspect: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in SHAPE_KINDS:
            raise ValueError(f"unknown shape kind {self.kind!r}; use one of {SHAPE_KINDS}")
        if not 0.0 < self.size <= 1.0:
            raise ValueError(f"size must lie in (0, 1], got {self.size}")

    # ------------------------------------------------------------------
    def _local_frame(self, xs: np.ndarray, ys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Rotate/translate canvas coordinates into the shape's frame."""
        dx = xs - self.center[0]
        dy = ys - self.center[1]
        cos_r = math.cos(-self.rotation)
        sin_r = math.sin(-self.rotation)
        return dx * cos_r - dy * sin_r, dx * sin_r + dy * cos_r

    def mask(self, resolution: int) -> np.ndarray:
        """Boolean pixel mask of the shape on a resolution^2 grid."""
        coords = (np.arange(resolution) + 0.5) / resolution
        xs, ys = np.meshgrid(coords, coords)
        lx, ly = self._local_frame(xs, ys)
        half = self.size / 2.0
        if self.kind == "circle":
            return lx**2 + ly**2 <= half**2
        if self.kind == "ellipse":
            return (lx / half) ** 2 + (ly / (half * self.aspect)) ** 2 <= 1.0
        if self.kind == "square":
            return (np.abs(lx) <= half) & (np.abs(ly) <= half)
        if self.kind == "rectangle":
            return (np.abs(lx) <= half) & (np.abs(ly) <= half * self.aspect)
        # triangle: equilateral, apex up, inscribed in the size circle
        # Half-plane tests against the three edges.
        top = (0.0, half)
        left = (-half * math.sqrt(3) / 2, -half / 2)
        right = (half * math.sqrt(3) / 2, -half / 2)
        inside = np.ones_like(lx, dtype=bool)
        # Vertices run counterclockwise; interior points lie to the left
        # of every directed edge (nonnegative cross product).
        for (ax, ay), (bx, by) in ((top, left), (left, right), (right, top)):
            cross = (bx - ax) * (ly - ay) - (by - ay) * (lx - ax)
            inside &= cross >= 0
        return inside

    def boundary(self, samples: int = 64) -> np.ndarray:
        """The boundary polygon, as a (samples, 2) array in canvas space.

        Polygonal kinds return their corners repeated to ``samples``
        points by uniform arc-length sampling, so every kind yields the
        same point count — what the shape-distance functions expect.
        """
        half = self.size / 2.0
        if self.kind in ("circle", "ellipse"):
            theta = np.linspace(0.0, 2 * math.pi, samples, endpoint=False)
            pts = np.stack(
                [half * np.cos(theta), half * self.aspect * np.sin(theta)], axis=1
            )
            if self.kind == "circle":
                pts[:, 1] = half * np.sin(theta)
        else:
            if self.kind == "square":
                corners = np.array(
                    [(-half, -half), (half, -half), (half, half), (-half, half)]
                )
            elif self.kind == "rectangle":
                h2 = half * self.aspect
                corners = np.array(
                    [(-half, -h2), (half, -h2), (half, h2), (-half, h2)]
                )
            else:  # triangle
                corners = np.array(
                    [
                        (0.0, half),
                        (-half * math.sqrt(3) / 2, -half / 2),
                        (half * math.sqrt(3) / 2, -half / 2),
                    ]
                )
            pts = _resample_polygon(corners, samples)
        cos_r, sin_r = math.cos(self.rotation), math.sin(self.rotation)
        rotated = np.stack(
            [
                pts[:, 0] * cos_r - pts[:, 1] * sin_r,
                pts[:, 0] * sin_r + pts[:, 1] * cos_r,
            ],
            axis=1,
        )
        return rotated + np.asarray(self.center)


def _resample_polygon(corners: np.ndarray, samples: int) -> np.ndarray:
    """Uniform arc-length resampling of a closed polygon's boundary."""
    closed = np.vstack([corners, corners[:1]])
    seg_lengths = np.linalg.norm(np.diff(closed, axis=0), axis=1)
    cumulative = np.concatenate([[0.0], np.cumsum(seg_lengths)])
    total = cumulative[-1]
    targets = np.linspace(0.0, total, samples, endpoint=False)
    points = np.empty((samples, 2))
    segment = 0
    for i, t in enumerate(targets):
        while segment + 1 < len(cumulative) - 1 and cumulative[segment + 1] <= t:
            segment += 1
        span = seg_lengths[segment]
        frac = 0.0 if span == 0 else (t - cumulative[segment]) / span
        points[i] = closed[segment] * (1 - frac) + closed[segment + 1] * frac
    return points


@dataclass(frozen=True)
class SyntheticImage:
    """A complete synthetic image: background + shapes, rasterizable."""

    image_id: str
    background: RGB
    shapes: Tuple[ShapeSpec, ...] = field(default_factory=tuple)

    def rasterize(self, resolution: int = 32) -> np.ndarray:
        """Render to a float RGB array of shape (resolution, resolution, 3).

        Shapes paint in declaration order (later shapes occlude earlier
        ones), matching a painter's-algorithm renderer.
        """
        raster = np.empty((resolution, resolution, 3), dtype=float)
        raster[:, :] = self.background
        for shape in self.shapes:
            mask = shape.mask(resolution)
            raster[mask] = shape.color
        return raster

    def dominant_shape(self) -> Optional[ShapeSpec]:
        """The largest shape by nominal size, or None for plain images."""
        if not self.shapes:
            return None
        return max(self.shapes, key=lambda s: s.size)


class ImageGenerator:
    """Seeded random generator of synthetic images.

    ``themed(color_name)`` biases an image's palette toward a named
    color (used to plant known near-matches for retrieval tests);
    ``corpus`` produces a list with a controllable fraction of themed
    images.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def _random_color(self) -> RGB:
        return (self._rng.random(), self._rng.random(), self._rng.random())

    def _near(self, base: RGB, jitter: float = 0.12) -> RGB:
        return tuple(
            min(1.0, max(0.0, channel + self._rng.uniform(-jitter, jitter)))
            for channel in base
        )  # type: ignore[return-value]

    def _random_shape(self, color: Optional[RGB] = None, kind: Optional[str] = None) -> ShapeSpec:
        return ShapeSpec(
            kind=kind or self._rng.choice(SHAPE_KINDS),
            center=(self._rng.uniform(0.2, 0.8), self._rng.uniform(0.2, 0.8)),
            size=self._rng.uniform(0.2, 0.55),
            color=color or self._random_color(),
            rotation=self._rng.uniform(0.0, 2 * math.pi),
            aspect=self._rng.uniform(0.5, 1.0),
        )

    def random_image(self, image_id: str, max_shapes: int = 3) -> SyntheticImage:
        shapes = tuple(
            self._random_shape() for _ in range(self._rng.randint(1, max_shapes))
        )
        return SyntheticImage(image_id, background=self._random_color(), shapes=shapes)

    def themed(
        self,
        image_id: str,
        color_name: str,
        *,
        shape_kind: Optional[str] = None,
    ) -> SyntheticImage:
        """An image dominated by a named color (and optionally one kind).

        The background and most shapes sit near the theme color (with
        enough jitter to spread across histogram bins); with probability
        1/2 one off-theme accent shape is added, so themed images are
        *close to* the theme rather than identical solid blocks.
        """
        base = NAMED_COLORS[color_name]
        shapes = [
            self._random_shape(color=self._near(base, jitter=0.25), kind=shape_kind)
            for _ in range(self._rng.randint(1, 2))
        ]
        if self._rng.random() < 0.5:
            shapes.append(self._random_shape())
        return SyntheticImage(
            image_id, background=self._near(base, jitter=0.18), shapes=tuple(shapes)
        )

    def corpus(
        self,
        count: int,
        *,
        themed_fraction: float = 0.2,
        theme: str = "red",
        prefix: str = "img",
    ) -> list:
        """A corpus with ``themed_fraction`` of images near the theme color."""
        images = []
        themed_count = int(count * themed_fraction)
        for i in range(count):
            image_id = f"{prefix}{i}"
            if i < themed_count:
                images.append(self.themed(image_id, theme))
            else:
                images.append(self.random_image(image_id))
        self._rng.shuffle(images)
        return images
