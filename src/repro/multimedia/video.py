"""Synthetic video clips and video similarity (the paper's other medium).

"As hardware becomes more powerful ... it is increasingly possible to
make use of multimedia data, such as images and video."  The survey's
examples are all images; this module supplies the video half so the
middleware can grade a fourth atomic-query family.

A :class:`VideoClip` is a short sequence of synthetic frames produced by
animating a :class:`~repro.multimedia.images.SyntheticImage` (shapes
drift along per-shape velocities).  Features:

* **color signature** — the mean frame histogram (what a QBIC-style
  system stores per clip);
* **motion energy** — mean absolute inter-frame luminance change,
  normalized to [0, 1] (a still clip scores 0);

Distances combine signature distance (Eq. 1) and motion difference; the
:class:`VideoSubsystem` exposes ``MotionEnergy = <level>`` and
``ClipColor = <color or clip id>`` atomic queries through the standard
middleware interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.graded import GradedSet
from repro.core.query import Atomic
from repro.core.sources import GradedSource, ListSource
from repro.errors import PlanError
from repro.middleware.interface import Subsystem
from repro.multimedia.histogram import (
    Palette,
    QuadraticFormDistance,
    color_histogram,
    distance_to_grade,
    solid_color_histogram,
)
from repro.multimedia.images import (
    NAMED_COLORS,
    ImageGenerator,
    ShapeSpec,
    SyntheticImage,
)
from repro.multimedia.similarity import laplacian_similarity
from repro.multimedia.texture import to_grayscale


@dataclass(frozen=True)
class VideoClip:
    """A short clip: a base scene plus per-shape velocities.

    ``velocities`` holds one (dx, dy) canvas-units-per-frame vector per
    shape of the base image; frames are rendered by translating each
    shape along its velocity (wrapping at the canvas edge).
    """

    clip_id: str
    base: SyntheticImage
    velocities: Tuple[Tuple[float, float], ...]
    frame_count: int = 8

    def __post_init__(self) -> None:
        if len(self.velocities) != len(self.base.shapes):
            raise PlanError(
                f"clip {self.clip_id!r}: {len(self.base.shapes)} shapes but "
                f"{len(self.velocities)} velocities"
            )
        if self.frame_count < 2:
            raise PlanError("a clip needs at least 2 frames")

    def frame(self, index: int) -> SyntheticImage:
        """The scene at frame ``index`` (shapes translated, wrapped)."""
        moved = []
        for shape, (dx, dy) in zip(self.base.shapes, self.velocities):
            cx = (shape.center[0] + dx * index) % 1.0
            cy = (shape.center[1] + dy * index) % 1.0
            moved.append(
                ShapeSpec(
                    kind=shape.kind,
                    center=(cx, cy),
                    size=shape.size,
                    color=shape.color,
                    rotation=shape.rotation,
                    aspect=shape.aspect,
                )
            )
        return SyntheticImage(
            f"{self.clip_id}[{index}]", self.base.background, tuple(moved)
        )

    def frames(self, resolution: int = 24) -> List[np.ndarray]:
        """Rasterize every frame."""
        return [self.frame(i).rasterize(resolution) for i in range(self.frame_count)]


def color_signature(
    clip: VideoClip, palette: Palette, resolution: int = 24
) -> np.ndarray:
    """Mean frame histogram — the clip's stored color signature."""
    histograms = [
        color_histogram(raster, palette) for raster in clip.frames(resolution)
    ]
    return np.mean(histograms, axis=0)


def motion_energy(clip: VideoClip, resolution: int = 24) -> float:
    """Mean absolute inter-frame luminance change, squashed to [0, 1]."""
    rasters = clip.frames(resolution)
    changes = [
        float(np.abs(to_grayscale(a) - to_grayscale(b)).mean())
        for a, b in zip(rasters, rasters[1:])
    ]
    raw = sum(changes) / len(changes)
    # Typical raw values are small (a moving shape touches few pixels);
    # 1 - exp(-x/s) maps stillness to 0 and saturates smoothly.  The
    # scale is tuned so a mid-size shape at moderate speed lands mid-range.
    return 1.0 - math.exp(-raw / 0.02)


class VideoGenerator:
    """Seeded generator of clips with controllable motion."""

    def __init__(self, seed: int = 0) -> None:
        self._images = ImageGenerator(seed)
        import random

        self._rng = random.Random(seed + 101)

    def clip(
        self,
        clip_id: str,
        *,
        speed: float = 0.05,
        still: bool = False,
        theme: Optional[str] = None,
    ) -> VideoClip:
        base = (
            self._images.themed(clip_id, theme)
            if theme is not None
            else self._images.random_image(clip_id)
        )
        velocities = tuple(
            (0.0, 0.0)
            if still
            else (
                self._rng.uniform(-speed, speed),
                self._rng.uniform(-speed, speed),
            )
            for _ in base.shapes
        )
        return VideoClip(clip_id, base, velocities)

    def corpus(
        self,
        count: int,
        *,
        still_fraction: float = 0.25,
        theme: Optional[str] = None,
        themed_fraction: float = 0.0,
        prefix: str = "clip",
    ) -> List[VideoClip]:
        clips = []
        still_count = int(count * still_fraction)
        themed_count = int(count * themed_fraction)
        for i in range(count):
            clips.append(
                self.clip(
                    f"{prefix}{i}",
                    still=i < still_count,
                    theme=theme if i >= still_count and i < still_count + themed_count else None,
                    speed=self._rng.uniform(0.02, 0.12),
                )
            )
        return clips


#: Named motion levels for atomic queries (MotionEnergy='still' etc.).
NAMED_MOTION: Dict[str, float] = {
    "still": 0.0,
    "slow": 0.3,
    "medium": 0.6,
    "fast": 0.9,
}


class VideoSubsystem(Subsystem):
    """Content-based video search: clip color and motion queries."""

    def __init__(
        self,
        name: str,
        clips: Sequence[VideoClip],
        *,
        palette: Optional[Palette] = None,
        resolution: int = 24,
        color_scale: float = 0.25,
        motion_scale: float = 0.25,
    ) -> None:
        super().__init__(name)
        self.palette = palette if palette is not None else Palette.rgb_cube(4)
        self.distance = QuadraticFormDistance(laplacian_similarity(self.palette))
        self.color_scale = color_scale
        self.motion_scale = motion_scale
        self._signatures: Dict[str, np.ndarray] = {}
        self._motion: Dict[str, float] = {}
        for clip in clips:
            if clip.clip_id in self._signatures:
                raise PlanError(f"duplicate clip id {clip.clip_id!r}")
            self._signatures[clip.clip_id] = color_signature(
                clip, self.palette, resolution
            )
            self._motion[clip.clip_id] = motion_energy(clip, resolution)

    def attributes(self) -> FrozenSet[str]:
        return frozenset({"ClipColor", "MotionEnergy"})

    def __len__(self) -> int:
        return len(self._signatures)

    def motion_of(self, clip_id: str) -> float:
        return self._motion[clip_id]

    def _color_target(self, target) -> np.ndarray:
        if isinstance(target, str):
            if target in self._signatures:
                return self._signatures[target]
            if target in NAMED_COLORS:
                return solid_color_histogram(NAMED_COLORS[target], self.palette)
            raise PlanError(
                f"unknown clip color target {target!r}: not a color or clip id"
            )
        array = np.asarray(target, dtype=float)
        if array.shape == (3,):
            return solid_color_histogram(array, self.palette)
        if array.shape == (self.palette.k,):
            return array
        raise PlanError(f"bad clip color target shape {array.shape}")

    def _motion_target(self, target) -> float:
        if isinstance(target, str):
            try:
                return NAMED_MOTION[target]
            except KeyError:
                raise PlanError(
                    f"unknown motion level {target!r}; "
                    f"use one of {sorted(NAMED_MOTION)}"
                ) from None
        value = float(target)
        if not 0.0 <= value <= 1.0:
            raise PlanError(f"motion target must lie in [0, 1], got {value}")
        return value

    def _bind(self, atom: Atomic) -> GradedSource:
        if atom.attribute == "ClipColor":
            target = self._color_target(atom.target)
            grades = {
                clip_id: distance_to_grade(
                    self.distance(signature, target), self.color_scale
                )
                for clip_id, signature in self._signatures.items()
            }
        elif atom.attribute == "MotionEnergy":
            target = self._motion_target(atom.target)
            grades = {
                clip_id: distance_to_grade(
                    abs(energy - target), self.motion_scale
                )
                for clip_id, energy in self._motion.items()
            }
        else:  # pragma: no cover - Subsystem.bind checks support first
            raise PlanError(f"video subsystem cannot grade {atom.attribute!r}")
        return ListSource(GradedSet(grades), name=f"{self.name}:{atom}")
