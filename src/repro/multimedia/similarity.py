"""Color-similarity matrices A for the quadratic-form distance (Eq. 1).

"A is a (symmetric) matrix whose (i, j)th entry describes the similarity
between color i and color j" — e.g. "an image that contains a lot of red
and a little green might be considered moderately close in color to
another image with a lot of pink and no green."

Two constructions:

* :func:`laplacian_similarity` — ``a_ij = exp(-alpha * ||c_i - c_j||)``,
  the Laplacian kernel over the palette colors.  A kernel matrix, hence
  positive semidefinite by construction: Eq. 1 is a true metric and the
  filter bound of Eq. 2 is sound.
* :func:`qbic_similarity` — the classical QBIC form
  ``a_ij = 1 - d_ij / d_max``.  Not automatically PSD, so it is repaired
  by eigenvalue clipping (the standard fix) before use.

``alpha`` controls cross-bin coupling: larger alpha means less coupling
(A closer to the identity, Eq. 1 closer to plain Euclidean distance).
"""

from __future__ import annotations

import numpy as np

from repro.multimedia.histogram import Palette


def _palette_distances(palette: Palette) -> np.ndarray:
    centers = palette.centers
    diff = centers[:, None, :] - centers[None, :, :]
    return np.linalg.norm(diff, axis=2)


def laplacian_similarity(palette: Palette, alpha: float = 4.0) -> np.ndarray:
    """PSD similarity matrix ``exp(-alpha * ||c_i - c_j||)``."""
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    return np.exp(-alpha * _palette_distances(palette))


def qbic_similarity(palette: Palette, *, ridge: float = 0.0) -> np.ndarray:
    """The QBIC-style ``1 - d_ij / d_max`` matrix, repaired to be PSD.

    Eigenvalues below zero (the matrix is not a kernel in general) are
    clipped and the matrix reassembled; the diagonal is renormalized to
    1 so self-similarity stays maximal.  Pass a small ``ridge`` (e.g.
    1e-6) to make the result strictly positive definite, which the
    distance-bounding filter requires for its projection bound.
    """
    if ridge < 0:
        raise ValueError(f"ridge must be nonnegative, got {ridge}")
    distances = _palette_distances(palette)
    d_max = distances.max()
    if d_max == 0:
        raise ValueError("palette is degenerate: all colors identical")
    matrix = 1.0 - distances / d_max
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    repaired = (eigenvectors * np.clip(eigenvalues, 0.0, None)) @ eigenvectors.T
    if ridge:
        repaired = repaired + ridge * np.eye(palette.k)
    diagonal = np.sqrt(np.clip(np.diag(repaired), 1e-12, None))
    return repaired / np.outer(diagonal, diagonal)


def identity_similarity(palette: Palette) -> np.ndarray:
    """A = I: Eq. 1 degenerates to Euclidean histogram distance.

    The no-cross-bin-coupling baseline for ablations.
    """
    return np.eye(palette.k)
