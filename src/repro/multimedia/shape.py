"""Shape-similarity measures (section 2's survey of shape matching).

"As with colors, there are a number of ways to define closeness between
shapes.  These include methods based on turning angles, on the Hausdorff
distance, on various forms of moments, and on Fourier descriptors."

This module implements one representative of each family over boundary
polygons (``(n, 2)`` numpy arrays, as produced by
:meth:`repro.multimedia.images.ShapeSpec.boundary`):

* :func:`turning_function_distance` — the Arkin et al. metric: L2
  between cumulative-turning-angle step functions, minimized over
  starting point (cyclic shifts) and rotation (vertical offset).
* :func:`hausdorff_distance` — symmetric Hausdorff between boundary
  point sets (translation-sensitive; normalize first for invariance).
* :func:`moment_distance` — L2 between log-scaled Hu moment invariants
  of the filled shapes (translation/scale/rotation invariant).
* :func:`fourier_descriptor_distance` — L2 between magnitude-normalized
  Fourier descriptors of the boundary (translation/scale/rotation
  invariant).

:func:`normalize_polygon` centers a polygon and scales it to unit RMS
radius so the measures compare shape, not placement — the invariances
the cited methods are chosen for.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import IndexError_


def _as_polygon(points: np.ndarray) -> np.ndarray:
    polygon = np.asarray(points, dtype=float)
    if polygon.ndim != 2 or polygon.shape[1] != 2 or polygon.shape[0] < 3:
        raise IndexError_(
            f"a polygon needs shape (n>=3, 2), got {polygon.shape}"
        )
    return polygon


def normalize_polygon(points: np.ndarray) -> np.ndarray:
    """Center at the centroid and scale to unit RMS radius."""
    polygon = _as_polygon(points)
    centered = polygon - polygon.mean(axis=0)
    rms = math.sqrt(float(np.mean(np.sum(centered**2, axis=1))))
    if rms == 0:
        raise IndexError_("degenerate polygon: all points coincide")
    return centered / rms


def turning_function(points: np.ndarray, samples: int = 128) -> np.ndarray:
    """Cumulative turning angle sampled at uniform arc-length steps.

    The turning function of a convex shape increases from 0 to 2*pi;
    it is the representation behind the Arkin et al. metric [ACH+90].
    """
    polygon = _as_polygon(points)
    closed = np.vstack([polygon, polygon[:1]])
    edges = np.diff(closed, axis=0)
    lengths = np.linalg.norm(edges, axis=1)
    keep = lengths > 1e-12
    edges, lengths = edges[keep], lengths[keep]
    if len(edges) < 3:
        raise IndexError_("degenerate polygon: fewer than 3 distinct edges")
    headings = np.arctan2(edges[:, 1], edges[:, 0])
    turns = np.diff(headings, append=headings[:1])
    turns = (turns + math.pi) % (2 * math.pi) - math.pi
    cumulative = np.concatenate([[0.0], np.cumsum(turns[:-1])])
    arc = np.concatenate([[0.0], np.cumsum(lengths)]) / lengths.sum()
    # Sample at interval midpoints: step breakpoints of regular shapes
    # land exactly on multiples of 1/samples, where floating-point
    # jitter would otherwise flip a sample across the step.
    positions = (np.arange(samples) + 0.5) / samples
    indices = np.searchsorted(arc, positions, side="right") - 1
    return cumulative[np.clip(indices, 0, len(cumulative) - 1)]


def turning_function_distance(
    a: np.ndarray, b: np.ndarray, samples: int = 128
) -> float:
    """Arkin-style distance: min over cyclic shift and rotation offset.

    For each cyclic shift of b's turning function, the optimal rotation
    offset is the mean difference (least squares); the distance is the
    smallest resulting RMS gap.
    """
    ta = turning_function(normalize_polygon(a), samples)
    tb = turning_function(normalize_polygon(b), samples)
    best = float("inf")
    for shift in range(samples):
        diff = ta - np.roll(tb, shift)
        diff = diff - diff.mean()  # optimal rotation offset
        best = min(best, float(np.sqrt(np.mean(diff**2))))
    return best


def hausdorff_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric Hausdorff distance between two boundary point sets."""
    pa = _as_polygon(a)
    pb = _as_polygon(b)
    d2 = (
        np.sum(pa**2, axis=1)[:, None]
        - 2 * pa @ pb.T
        + np.sum(pb**2, axis=1)[None, :]
    )
    d = np.sqrt(np.clip(d2, 0.0, None))
    return float(max(d.min(axis=1).max(), d.min(axis=0).max()))


def _hu_moments(mask: np.ndarray) -> np.ndarray:
    """The seven Hu moment invariants of a boolean mask."""
    mask = np.asarray(mask, dtype=float)
    if mask.sum() == 0:
        raise IndexError_("empty mask has no moments")
    ys, xs = np.mgrid[: mask.shape[0], : mask.shape[1]]
    m00 = mask.sum()
    cx = (xs * mask).sum() / m00
    cy = (ys * mask).sum() / m00

    def mu(p: int, q: int) -> float:
        return float((((xs - cx) ** p) * ((ys - cy) ** q) * mask).sum())

    def eta(p: int, q: int) -> float:
        return mu(p, q) / m00 ** (1 + (p + q) / 2)

    n20, n02, n11 = eta(2, 0), eta(0, 2), eta(1, 1)
    n30, n03, n21, n12 = eta(3, 0), eta(0, 3), eta(2, 1), eta(1, 2)
    h1 = n20 + n02
    h2 = (n20 - n02) ** 2 + 4 * n11**2
    h3 = (n30 - 3 * n12) ** 2 + (3 * n21 - n03) ** 2
    h4 = (n30 + n12) ** 2 + (n21 + n03) ** 2
    h5 = (n30 - 3 * n12) * (n30 + n12) * (
        (n30 + n12) ** 2 - 3 * (n21 + n03) ** 2
    ) + (3 * n21 - n03) * (n21 + n03) * (3 * (n30 + n12) ** 2 - (n21 + n03) ** 2)
    h6 = (n20 - n02) * ((n30 + n12) ** 2 - (n21 + n03) ** 2) + 4 * n11 * (
        n30 + n12
    ) * (n21 + n03)
    h7 = (3 * n21 - n03) * (n30 + n12) * (
        (n30 + n12) ** 2 - 3 * (n21 + n03) ** 2
    ) - (n30 - 3 * n12) * (n21 + n03) * (3 * (n30 + n12) ** 2 - (n21 + n03) ** 2)
    return np.array([h1, h2, h3, h4, h5, h6, h7])


def moment_distance(mask_a: np.ndarray, mask_b: np.ndarray) -> float:
    """L2 distance between log-scaled Hu moment invariant vectors.

    The signed-log map is floored at 1e-12 and shifted so that values
    near zero map near zero *continuously* — higher-order Hu invariants
    of symmetric shapes are numerically ~0 with unstable sign, and a
    naive ``sign * log|v|`` would turn that noise into huge distances.
    """

    def log_scale(values: np.ndarray) -> np.ndarray:
        magnitudes = np.log10(np.maximum(np.abs(values), 1e-12)) + 12.0
        return np.sign(values) * magnitudes

    return float(
        np.linalg.norm(log_scale(_hu_moments(mask_a)) - log_scale(_hu_moments(mask_b)))
    )


def fourier_descriptors(points: np.ndarray, coefficients: int = 16) -> np.ndarray:
    """Magnitude-normalized Fourier descriptors of a boundary.

    The boundary is read as a complex signal; dropping the DC term gives
    translation invariance, dividing by the first harmonic's magnitude
    gives scale invariance, and taking magnitudes gives rotation and
    starting-point invariance [Ja89].
    """
    polygon = _as_polygon(points)
    signal = polygon[:, 0] + 1j * polygon[:, 1]
    spectrum = np.fft.fft(signal)
    magnitudes = np.abs(spectrum)
    first = magnitudes[1]
    if first < 1e-12:
        raise IndexError_("degenerate boundary: vanishing first harmonic")
    # Harmonics 1..coefficients and their negative-frequency partners.
    count = min(coefficients, len(signal) // 2 - 1)
    positive = magnitudes[2 : 2 + count]
    negative = magnitudes[-1 : -(count + 1) : -1]
    return np.concatenate([positive, negative]) / first


def fourier_descriptor_distance(
    a: np.ndarray, b: np.ndarray, coefficients: int = 16
) -> float:
    """L2 distance between Fourier descriptor vectors."""
    fa = fourier_descriptors(a, coefficients)
    fb = fourier_descriptors(b, coefficients)
    n = min(len(fa), len(fb))
    return float(np.linalg.norm(fa[:n] - fb[:n]))


def dtw_distance(
    series_a: np.ndarray,
    series_b: np.ndarray,
    *,
    window: Optional[int] = None,
) -> float:
    """Dynamic time warping between two 1-D series (per [MKC+91]).

    DTW finds the monotone alignment minimizing the summed pointwise
    squared gaps; it tolerates local stretching that a rigid L2
    comparison punishes.  ``window`` is an optional Sakoe–Chiba band
    limiting the warp (None = unconstrained).  Returns the RMS gap along
    the optimal path.
    """
    a = np.asarray(series_a, dtype=float).ravel()
    b = np.asarray(series_b, dtype=float).ravel()
    if a.size == 0 or b.size == 0:
        raise IndexError_("DTW needs nonempty series")
    n, m = len(a), len(b)
    band = max(window if window is not None else max(n, m), abs(n - m))
    infinity = float("inf")
    previous = np.full(m + 1, infinity)
    previous[0] = 0.0
    for i in range(1, n + 1):
        current = np.full(m + 1, infinity)
        lo = max(1, i - band)
        hi = min(m, i + band)
        for j in range(lo, hi + 1):
            gap = (a[i - 1] - b[j - 1]) ** 2
            current[j] = gap + min(
                previous[j], previous[j - 1], current[j - 1]
            )
        previous = current
    # Normalize by the path length bound so different sampling rates
    # stay comparable.
    return math.sqrt(previous[m] / (n + m))


def dtw_turning_distance(
    a: np.ndarray, b: np.ndarray, samples: int = 64, window: Optional[int] = 8
) -> float:
    """Shape distance: DTW between turning functions, min over shifts.

    The elastic matching the paper's [MKC+91] citation uses for tracking
    deforming outlines: rotation is removed by mean-centering each
    turning function, starting point by minimizing over cyclic shifts.
    """
    ta = turning_function(normalize_polygon(a), samples)
    tb = turning_function(normalize_polygon(b), samples)
    ta = ta - ta.mean()
    tb = tb - tb.mean()
    best = float("inf")
    # Coarse shift search (every 4th) then refine around the best.
    coarse = range(0, samples, 4)
    best_shift = 0
    for shift in coarse:
        candidate = dtw_distance(ta, np.roll(tb, shift), window=window)
        if candidate < best:
            best = candidate
            best_shift = shift
    for shift in range(best_shift - 3, best_shift + 4):
        candidate = dtw_distance(ta, np.roll(tb, shift % samples), window=window)
        best = min(best, candidate)
    return best


#: Named registry so subsystems and benchmarks can select a method.
SHAPE_DISTANCES: Dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "turning": turning_function_distance,
    "hausdorff": lambda a, b: hausdorff_distance(
        normalize_polygon(a), normalize_polygon(b)
    ),
    "fourier": fourier_descriptor_distance,
    "dtw": dtw_turning_distance,
}
