"""Precomputed pairwise distances (section 2.1's second strategy).

"Another approach, that is especially useful when the database is not
too large ... takes advantage of the fact that in many multimedia
database situations updates are done rarely, if at all.  The idea is to
precompute the distance between each pair of objects, and store the
answers.  If the user asks for those images whose color is close to the
color of some other image in the database, no painful computations such
as that given by the formula (1) needs to be done in real time."

:class:`PairwiseDistanceCache` does exactly that: an all-pairs Eq. 1
distance matrix computed once at build time; queries anchored at an
in-database image are pure lookups.  The cache counts Eq. 1 evaluations
at build time and at query time so experiment E11 can report the
trade-off (build cost amortized over queries vs. evaluate-on-demand).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.core.graded import GradedSet
from repro.errors import UnknownObjectError
from repro.multimedia.histogram import QuadraticFormDistance, distance_to_grade


class PairwiseDistanceCache:
    """All-pairs distance matrix over a fixed corpus of histograms."""

    def __init__(
        self,
        histograms: Mapping[object, np.ndarray],
        distance: QuadraticFormDistance,
    ) -> None:
        self._ids: List[object] = list(histograms)
        self._index: Dict[object, int] = {obj: i for i, obj in enumerate(self._ids)}
        stack = np.stack([np.asarray(histograms[obj], dtype=float) for obj in self._ids])
        self._matrix = distance.pairwise(stack)
        n = len(self._ids)
        #: Eq. 1 evaluations performed at build time (each unordered pair once).
        self.build_evaluations = n * (n - 1) // 2
        #: Eq. 1 evaluations performed at query time (always 0 for
        #: in-database anchors — that is the point).
        self.query_evaluations = 0

    def __len__(self) -> int:
        return len(self._ids)

    def _row(self, object_id: object) -> np.ndarray:
        try:
            return self._matrix[self._index[object_id]]
        except KeyError:
            raise UnknownObjectError(
                f"object {object_id!r} is not in the distance cache"
            ) from None

    def distance_between(self, a: object, b: object) -> float:
        """Stored distance between two in-database objects (a lookup)."""
        return float(self._row(a)[self._index[b]])

    def neighbors(self, object_id: object, k: int) -> List[Tuple[object, float]]:
        """The k nearest other objects to an in-database anchor.

        Pure lookups — no Eq. 1 evaluation happens here.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        row = self._row(object_id)
        anchor = self._index[object_id]
        order = np.argsort(row, kind="stable")
        result: List[Tuple[object, float]] = []
        for index in order:
            if index == anchor:
                continue
            result.append((self._ids[index], float(row[index])))
            if len(result) == k:
                break
        return result

    def ranked_list(self, object_id: object, scale: float = 0.25) -> GradedSet:
        """The full graded set 'Color close to image X', from the cache.

        This is the stored answer list a :class:`ListSubsystem` would
        serve — zero Eq. 1 evaluations at query time.
        """
        row = self._row(object_id)
        return GradedSet(
            {
                self._ids[i]: distance_to_grade(float(row[i]), scale)
                for i in range(len(self._ids))
            }
        )
