"""Texture features (the third QBIC search dimension, section 4).

"QBIC can search for images by various visual characteristics such as
color, shape, and texture."  The classical QBIC texture features are
Tamura's coarseness, contrast, and directionality; this module computes
lightweight versions of the three from a grayscale raster:

* **coarseness** — how large the image's structures are, measured as the
  scale (window size) at which local mean differences peak;
* **contrast** — the spread of intensities (standard deviation sharpened
  by kurtosis, per Tamura);
* **directionality** — how concentrated gradient orientations are.

The features feed :func:`texture_distance`, which the QBIC subsystem
turns into grades for atomic queries like ``Texture='coarse'``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import IndexError_

#: Feature vectors for the named texture targets a query may use.
NAMED_TEXTURES: Dict[str, np.ndarray] = {}


def to_grayscale(raster: np.ndarray) -> np.ndarray:
    """Luminance of an RGB raster (Rec. 601 weights)."""
    raster = np.asarray(raster, dtype=float)
    if raster.ndim != 3 or raster.shape[2] != 3:
        raise IndexError_(f"raster must be (h, w, 3), got {raster.shape}")
    return raster @ np.array([0.299, 0.587, 0.114])


def coarseness(gray: np.ndarray, max_scale: int = 4) -> float:
    """Tamura-style coarseness in [0, 1] (larger = coarser structures).

    For each power-of-two window size, compute the mean absolute
    difference between neighbouring block means; the dominant scale
    (weighted average of scales by their response) is normalized by the
    largest scale considered.
    """
    responses = []
    for scale in range(1, max_scale + 1):
        size = 2**scale
        if size * 2 > min(gray.shape):
            break
        h = (gray.shape[0] // size) * size
        w = (gray.shape[1] // size) * size
        blocks = gray[:h, :w].reshape(h // size, size, w // size, size).mean(axis=(1, 3))
        if blocks.shape[0] < 2 or blocks.shape[1] < 2:
            break
        horizontal = np.abs(np.diff(blocks, axis=1)).mean()
        vertical = np.abs(np.diff(blocks, axis=0)).mean()
        responses.append(max(horizontal, vertical))
    if not responses:
        return 0.0
    responses_arr = np.asarray(responses)
    if responses_arr.sum() == 0:
        return 0.0
    scales = np.arange(1, len(responses) + 1, dtype=float)
    dominant = float((scales * responses_arr).sum() / responses_arr.sum())
    return dominant / max_scale


def contrast(gray: np.ndarray) -> float:
    """Tamura contrast, squashed to [0, 1]."""
    sigma = float(gray.std())
    if sigma < 1e-12:
        return 0.0
    centered = gray - gray.mean()
    kurtosis = float(np.mean(centered**4)) / sigma**4
    raw = sigma / max(kurtosis, 1e-12) ** 0.25
    return min(1.0, raw / 0.5)


def directionality(gray: np.ndarray, orientation_bins: int = 16) -> float:
    """Concentration of gradient orientations in [0, 1].

    1 means all edges share one orientation (highly directional);
    0 means orientations are uniform (isotropic).
    """
    gx = np.diff(gray, axis=1, prepend=gray[:, :1])
    gy = np.diff(gray, axis=0, prepend=gray[:1, :])
    magnitude = np.hypot(gx, gy).ravel()
    if magnitude.sum() < 1e-12:
        return 0.0
    angles = np.arctan2(gy, gx).ravel() % np.pi
    histogram, _ = np.histogram(
        angles, bins=orientation_bins, range=(0.0, np.pi), weights=magnitude
    )
    distribution = histogram / histogram.sum()
    uniform = 1.0 / orientation_bins
    # Total variation distance from uniform, rescaled to [0, 1].
    return float(np.abs(distribution - uniform).sum() / (2 * (1 - uniform)))


def texture_features(raster: np.ndarray) -> np.ndarray:
    """The (coarseness, contrast, directionality) vector of a raster."""
    gray = to_grayscale(raster)
    return np.array([coarseness(gray), contrast(gray), directionality(gray)])


def texture_distance(features_a: np.ndarray, features_b: np.ndarray) -> float:
    """Euclidean distance between texture feature vectors."""
    a = np.asarray(features_a, dtype=float)
    b = np.asarray(features_b, dtype=float)
    if a.shape != b.shape:
        raise IndexError_(f"feature shapes differ: {a.shape} vs {b.shape}")
    return float(np.linalg.norm(a - b))


NAMED_TEXTURES.update(
    {
        # Idealized targets for atomic texture queries.
        "smooth": np.array([0.0, 0.05, 0.1]),
        "coarse": np.array([0.9, 0.5, 0.2]),
        "contrasty": np.array([0.4, 0.95, 0.3]),
        "directional": np.array([0.3, 0.4, 0.95]),
    }
)
