"""The distance-bounding filter strategy of Eq. 2 (section 2.1).

"They associate with each (long) color feature vector x a short (say,
dimension 3) color vector x^ that, intuitively, 'summarizes' x.  They
then give a simple-to-compute distance measure d^ ... and show that
d(x, y) >= d^(x^, y^).  Thus ... x^ is being used as a 'filter' to
eliminate from consideration objects where d^ is too large."

Our short vector is the histogram's **average color** — the 3-vector
``x^ = C^T x`` where C is the (k, 3) palette matrix — exactly the
"dimension 3" summary of [HSE+95].  The provable bound is the projection
(Schur-complement) bound: for Eq. 1's distance with positive definite
similarity matrix A and z = x - y with summary s = C^T z,

    d(x, y)^2 = z^T A z >= min{ w^T A w : C^T w = s }
              = s^T (C^T A^{-1} C)^{-1} s =: d^(x^, y^)^2   (Eq. 2)

(the actual z satisfies the constraint, so it cannot beat the
constrained minimum; the minimum has the closed form above by Lagrange
multipliers).  W = (C^T A^{-1} C)^{-1} is a fixed 3x3 matrix computed
once, so each d^ costs a 3-vector quadratic form — the "simple-to-
compute distance measure" of the paper.  This is the same derivation
[HSE+95] use for their average-color bound.

The filter therefore has **no false dismissals**: any object pruned
because ``d^ > D_k`` (the current k-th best true distance) provably
cannot enter the top k.  Experiment E7 measures the pruning rate and
verifies the zero-false-dismissal guarantee against a linear scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.multimedia.histogram import Palette, QuadraticFormDistance


@dataclass
class FilterSearchResult:
    """k-NN result plus the filter's work statistics."""

    neighbors: List[Tuple[object, float]]
    full_evaluations: int
    pruned: int

    @property
    def pruning_rate(self) -> float:
        total = self.full_evaluations + self.pruned
        return self.pruned / total if total else 0.0


class DistanceBoundingFilter:
    """Filter-and-refine k-NN over histograms via the Eq. 2 lower bound."""

    def __init__(self, palette: Palette, distance: QuadraticFormDistance) -> None:
        if distance.k != palette.k:
            raise IndexError_(
                f"palette has {palette.k} colors but distance expects {distance.k}"
            )
        if distance.min_eigenvalue < 1e-10:
            raise IndexError_(
                "the projection bound needs a positive definite similarity "
                f"matrix (min eigenvalue {distance.min_eigenvalue:.3g}); "
                "add a ridge (see similarity.qbic_similarity(ridge=...))"
            )
        self.palette = palette
        self.distance = distance
        # W = (C^T A^{-1} C)^{-1}, the fixed 3x3 form of the projection
        # bound; valid because A is positive definite.
        centers = palette.centers
        a_inv = np.linalg.inv(distance.matrix)
        gram = centers.T @ a_inv @ centers
        self._bound_form = np.linalg.inv(gram)

    def summarize(self, histogram: np.ndarray) -> np.ndarray:
        """The short (3-dim) average-color vector x^ = C^T x."""
        return np.asarray(histogram, dtype=float) @ self.palette.centers

    def lower_bound(self, short_x: np.ndarray, short_y: np.ndarray) -> float:
        """d^(x^, y^): a provable lower bound on d(x, y)."""
        s = np.asarray(short_x, dtype=float) - np.asarray(short_y, dtype=float)
        return float(np.sqrt(max(0.0, s @ self._bound_form @ s)))

    def search(
        self,
        corpus: Dict[object, np.ndarray],
        target: np.ndarray,
        k: int,
    ) -> FilterSearchResult:
        """The k nearest histograms to ``target`` by Eq. 1 distance.

        Strategy: compute the cheap d^ for every object, visit objects
        in increasing d^ order, maintain the k-th best true distance
        D_k, and stop as soon as the next d^ exceeds D_k — every
        remaining object is pruned with certainty (d >= d^ > D_k).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not corpus:
            return FilterSearchResult([], 0, 0)
        target = np.asarray(target, dtype=float)
        target_short = self.summarize(target)

        bounded = sorted(
            (
                (self.lower_bound(self.summarize(hist), target_short), obj)
                for obj, hist in corpus.items()
            ),
            key=lambda pair: (pair[0], str(pair[1])),
        )

        best: List[Tuple[float, str, object]] = []
        evaluations = 0
        cutoff = float("inf")
        pruned = 0
        for index, (bound, obj) in enumerate(bounded):
            if len(best) >= k and bound > cutoff:
                pruned = len(bounded) - index
                break
            true_distance = self.distance(corpus[obj], target)
            evaluations += 1
            best.append((true_distance, str(obj), obj))
            best.sort()
            if len(best) > k:
                best.pop()
            if len(best) >= k:
                cutoff = best[-1][0]

        neighbors = [(obj, dist) for dist, _, obj in best]
        return FilterSearchResult(neighbors, evaluations, pruned)


def linear_scan_knn(
    corpus: Dict[object, np.ndarray],
    target: np.ndarray,
    k: int,
    distance: QuadraticFormDistance,
) -> List[Tuple[object, float]]:
    """Reference k-NN by evaluating Eq. 1 on every object (no filter)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    target = np.asarray(target, dtype=float)
    scored = sorted(
        ((distance(hist, target), str(obj), obj) for obj, hist in corpus.items())
    )
    return [(obj, dist) for dist, _, obj in scored[:k]]
