"""Color histograms and the quadratic-form distance of Eq. 1 (section 2).

"Each object has a k-element color histogram (typical values of k are
64, 100, or 256).  Let x and y be two k-dimensional vectors that
represent the color histograms of two objects.  The color distance
between the two objects is taken to be ... sqrt((x - y)^T A (x - y))
where A is a (symmetric) matrix whose (i, j)th entry describes the
similarity between color i and color j."  (Ioka's method, implemented in
QBIC.)

A :class:`Palette` fixes the k bin colors; :func:`color_histogram`
assigns each pixel of a raster to its nearest bin and normalizes; and
:class:`QuadraticFormDistance` evaluates Eq. 1 against a similarity
matrix from :mod:`repro.multimedia.similarity`.  A Cholesky factor is
precomputed so each distance costs one matrix-vector product — still the
"computationally expensive" operation the paper discusses, which the
distance-bounding filter (Eq. 2) and the pairwise-precomputation cache
both exist to avoid.
"""

from __future__ import annotations


import numpy as np

from repro.errors import IndexError_


class Palette:
    """The k reference colors defining histogram bins.

    ``centers`` is a (k, 3) float array of RGB bin colors in [0, 1].
    """

    def __init__(self, centers: np.ndarray) -> None:
        centers = np.asarray(centers, dtype=float)
        if centers.ndim != 2 or centers.shape[1] != 3:
            raise IndexError_(f"palette centers must be (k, 3), got {centers.shape}")
        if centers.shape[0] < 2:
            raise IndexError_("a palette needs at least 2 colors")
        self.centers = centers

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    @classmethod
    def rgb_cube(cls, bins_per_channel: int = 4) -> "Palette":
        """A b^3-color palette on the RGB lattice (b=4 gives the paper's
        typical k=64)."""
        if bins_per_channel < 2:
            raise IndexError_("need at least 2 bins per channel")
        levels = (np.arange(bins_per_channel) + 0.5) / bins_per_channel
        grid = np.stack(np.meshgrid(levels, levels, levels, indexing="ij"), axis=-1)
        return cls(grid.reshape(-1, 3))

    @classmethod
    def hue_wheel(cls, k: int = 100, *, gray_levels: int = 4) -> "Palette":
        """A k-color palette: (k - gray_levels) saturated hues + grays.

        Supports the paper's non-cube sizes (k = 100, 256).
        """
        hues = k - gray_levels
        if hues < 2:
            raise IndexError_(f"k={k} too small for {gray_levels} gray levels")
        angles = np.linspace(0.0, 1.0, hues, endpoint=False)
        colors = np.array([_hsv_to_rgb(h, 1.0, 1.0) for h in angles])
        grays = np.linspace(0.1, 0.9, gray_levels)[:, None] * np.ones((1, 3))
        return cls(np.vstack([colors, grays]))

    def assign(self, pixels: np.ndarray) -> np.ndarray:
        """Nearest-bin index for each pixel of an (n, 3) array."""
        # (n, k) squared distances via the expansion trick.
        dots = pixels @ self.centers.T
        d2 = (
            np.sum(pixels**2, axis=1)[:, None]
            - 2 * dots
            + np.sum(self.centers**2, axis=1)[None, :]
        )
        return np.argmin(d2, axis=1)


def _hsv_to_rgb(h: float, s: float, v: float) -> tuple:
    """Minimal HSV -> RGB (h in [0,1))."""
    i = int(h * 6.0) % 6
    f = h * 6.0 - int(h * 6.0)
    p, q, t = v * (1 - s), v * (1 - s * f), v * (1 - s * (1 - f))
    return [(v, t, p), (q, v, p), (p, v, t), (p, q, v), (t, p, v), (v, p, q)][i]


def color_histogram(raster: np.ndarray, palette: Palette) -> np.ndarray:
    """The normalized k-bin color histogram of an RGB raster.

    ``raster`` has shape (h, w, 3); the result sums to 1 (a distribution
    over palette bins), the form Eq. 1 expects.
    """
    raster = np.asarray(raster, dtype=float)
    if raster.ndim != 3 or raster.shape[2] != 3:
        raise IndexError_(f"raster must be (h, w, 3), got {raster.shape}")
    pixels = raster.reshape(-1, 3)
    bins = palette.assign(pixels)
    histogram = np.bincount(bins, minlength=palette.k).astype(float)
    return histogram / histogram.sum()


def solid_color_histogram(color, palette: Palette) -> np.ndarray:
    """The histogram of a solid-color image (a delta at one bin).

    Used to turn a named query color ('red') into a target histogram.
    """
    pixel = np.asarray(color, dtype=float).reshape(1, 3)
    histogram = np.zeros(palette.k)
    histogram[palette.assign(pixel)[0]] = 1.0
    return histogram


class QuadraticFormDistance:
    """Eq. 1: ``d(x, y) = sqrt((x - y)^T A (x - y))``.

    ``A`` must be symmetric positive semidefinite (guaranteed by the
    constructions in :mod:`repro.multimedia.similarity`); a square root
    factor ``R`` with ``A = R^T R`` is precomputed so each evaluation is
    one (k,) @ (k, k) product plus a norm.
    """

    def __init__(self, similarity: np.ndarray) -> None:
        similarity = np.asarray(similarity, dtype=float)
        if similarity.ndim != 2 or similarity.shape[0] != similarity.shape[1]:
            raise IndexError_(f"similarity matrix must be square, got {similarity.shape}")
        if not np.allclose(similarity, similarity.T, atol=1e-10):
            raise IndexError_("similarity matrix must be symmetric")
        self.matrix = similarity
        eigenvalues, eigenvectors = np.linalg.eigh(similarity)
        if eigenvalues.min() < -1e-8:
            raise IndexError_(
                "similarity matrix must be positive semidefinite "
                f"(min eigenvalue {eigenvalues.min():.3g})"
            )
        clipped = np.clip(eigenvalues, 0.0, None)
        self._factor = (eigenvectors * np.sqrt(clipped)) @ eigenvectors.T
        #: Smallest eigenvalue of A; the distance-bounding filter's
        #: lower-bound constant depends on it.
        self.min_eigenvalue = float(clipped.min())

    @property
    def k(self) -> int:
        return self.matrix.shape[0]

    def __call__(self, x: np.ndarray, y: np.ndarray) -> float:
        z = np.asarray(x, dtype=float) - np.asarray(y, dtype=float)
        if z.shape != (self.k,):
            raise IndexError_(
                f"histograms must be length-{self.k} vectors, got {z.shape}"
            )
        return float(np.linalg.norm(self._factor @ z))

    def pairwise(self, histograms: np.ndarray) -> np.ndarray:
        """All-pairs distance matrix for an (n, k) histogram stack.

        Used by the precomputation strategy of section 2.1: computed
        once, then queried at zero per-query cost.
        """
        transformed = np.asarray(histograms, dtype=float) @ self._factor.T
        sq = np.sum(transformed**2, axis=1)
        d2 = sq[:, None] - 2 * transformed @ transformed.T + sq[None, :]
        return np.sqrt(np.clip(d2, 0.0, None))


def distance_to_grade(distance: float, scale: float = 1.0) -> float:
    """Map a distance to a grade in [0, 1] via ``exp(-d / scale)``.

    Monotone decreasing with d, grade 1 iff d = 0 — the natural bridge
    from "closeness of color" to the graded sets of section 3.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return float(np.exp(-max(0.0, distance) / scale))
