"""A QBIC-style multimedia subsystem (sections 2 and 4).

"An example of a nontraditional subsystem that Garlic accesses is QBIC,
which can search for images by various visual characteristics such as
color, shape, and texture."

:class:`QbicSubsystem` holds a corpus of synthetic images and evaluates
three attribute families of atomic queries:

* ``Color = target`` — target is a named color ("red"), an RGB triple, a
  k-bin histogram, or another :class:`SyntheticImage` ("images whose
  colors are close to that of image I").  Grades come from the Eq. 1
  quadratic-form histogram distance via ``exp(-d / scale)``.
* ``Shape = target`` — target is a kind name ("round", "square",
  "triangle", "rectangle") or a boundary polygon; an image's distance is
  its best shape's distance under the configured method (turning
  function by default).
* ``Texture = target`` — target is a named texture ("coarse", "smooth",
  "contrasty", "directional") or a 3-feature vector.

All features are extracted once at construction; binding an atomic query
ranks the corpus and exposes it as a standard
:class:`~repro.core.sources.GradedSource`, so the middleware's top-k
algorithms drive QBIC exactly like any other subsystem.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from repro.core.graded import GradedSet
from repro.core.query import Atomic
from repro.core.sources import GradedSource, ListSource
from repro.errors import PlanError
from repro.middleware.interface import Subsystem
from repro.multimedia.histogram import (
    Palette,
    QuadraticFormDistance,
    color_histogram,
    distance_to_grade,
    solid_color_histogram,
)
from repro.multimedia.images import NAMED_COLORS, ShapeSpec, SyntheticImage
from repro.multimedia.shape import SHAPE_DISTANCES
from repro.multimedia.similarity import laplacian_similarity
from repro.multimedia.texture import NAMED_TEXTURES, texture_distance, texture_features

#: Query-name aliases for reference shapes ('round' is the paper's term).
SHAPE_ALIASES: Dict[str, str] = {
    "round": "circle",
    "circle": "circle",
    "square": "square",
    "rectangle": "rectangle",
    "triangle": "triangle",
    "ellipse": "ellipse",
}


def reference_boundary(kind: str, samples: int = 64) -> np.ndarray:
    """The canonical boundary polygon for a named shape query."""
    try:
        resolved = SHAPE_ALIASES[kind]
    except KeyError:
        raise PlanError(
            f"unknown shape name {kind!r}; use one of {sorted(SHAPE_ALIASES)}"
        ) from None
    spec = ShapeSpec(
        kind=resolved, center=(0.5, 0.5), size=0.5, color=(0.5, 0.5, 0.5), aspect=0.6
    )
    return spec.boundary(samples)


class QbicSubsystem(Subsystem):
    """Content-based image search over a synthetic corpus."""

    def __init__(
        self,
        name: str,
        images: Sequence[SyntheticImage],
        *,
        palette: Optional[Palette] = None,
        similarity: Optional[np.ndarray] = None,
        resolution: int = 32,
        color_scale: float = 0.25,
        shape_method: str = "turning",
        shape_scale: float = 0.5,
        texture_scale: float = 0.4,
        boundary_samples: int = 64,
    ) -> None:
        super().__init__(name)
        if shape_method not in SHAPE_DISTANCES:
            raise PlanError(
                f"unknown shape method {shape_method!r}; "
                f"use one of {sorted(SHAPE_DISTANCES)}"
            )
        self.palette = palette if palette is not None else Palette.rgb_cube(4)
        matrix = (
            similarity
            if similarity is not None
            else laplacian_similarity(self.palette)
        )
        self.distance = QuadraticFormDistance(matrix)
        self.resolution = resolution
        self.color_scale = color_scale
        self.shape_method = shape_method
        self.shape_scale = shape_scale
        self.texture_scale = texture_scale
        self.boundary_samples = boundary_samples

        self._images: Dict[str, SyntheticImage] = {}
        self._histograms: Dict[str, np.ndarray] = {}
        self._boundaries: Dict[str, List[np.ndarray]] = {}
        self._textures: Dict[str, np.ndarray] = {}
        for image in images:
            if image.image_id in self._images:
                raise PlanError(f"duplicate image id {image.image_id!r}")
            raster = image.rasterize(resolution)
            self._images[image.image_id] = image
            self._histograms[image.image_id] = color_histogram(raster, self.palette)
            self._boundaries[image.image_id] = [
                shape.boundary(boundary_samples) for shape in image.shapes
            ]
            self._textures[image.image_id] = texture_features(raster)

    # ------------------------------------------------------------------
    def attributes(self) -> FrozenSet[str]:
        return frozenset({"Color", "Shape", "Texture"})

    def image_ids(self) -> FrozenSet[str]:
        return frozenset(self._images)

    def histogram_of(self, image_id: str) -> np.ndarray:
        return self._histograms[image_id].copy()

    def __len__(self) -> int:
        return len(self._images)

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------
    def _color_target_histogram(self, target) -> np.ndarray:
        if isinstance(target, SyntheticImage):
            if target.image_id in self._histograms:
                return self._histograms[target.image_id]
            return color_histogram(target.rasterize(self.resolution), self.palette)
        if isinstance(target, str):
            if target in self._histograms:  # "similar to image I" by id
                return self._histograms[target]
            if target in NAMED_COLORS:
                return solid_color_histogram(NAMED_COLORS[target], self.palette)
            raise PlanError(
                f"unknown color target {target!r}: not a named color or image id"
            )
        array = np.asarray(target, dtype=float)
        if array.shape == (3,):
            return solid_color_histogram(array, self.palette)
        if array.shape == (self.palette.k,):
            return array
        raise PlanError(
            f"color target must be a name, image, RGB triple, or "
            f"{self.palette.k}-bin histogram; got shape {array.shape}"
        )

    def _shape_target_boundary(self, target) -> np.ndarray:
        if isinstance(target, str):
            return reference_boundary(target, self.boundary_samples)
        array = np.asarray(target, dtype=float)
        if array.ndim == 2 and array.shape[1] == 2:
            return array
        raise PlanError(
            f"shape target must be a name or (n, 2) polygon; got {array.shape}"
        )

    def _texture_target_features(self, target) -> np.ndarray:
        if isinstance(target, str):
            try:
                return NAMED_TEXTURES[target]
            except KeyError:
                raise PlanError(
                    f"unknown texture name {target!r}; "
                    f"use one of {sorted(NAMED_TEXTURES)}"
                ) from None
        array = np.asarray(target, dtype=float)
        if array.shape == (3,):
            return array
        raise PlanError(
            f"texture target must be a name or 3-feature vector; got {array.shape}"
        )

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def _bind(self, atom: Atomic) -> GradedSource:
        if atom.attribute == "Color":
            target = self._color_target_histogram(atom.target)
            grades = {
                image_id: distance_to_grade(
                    self.distance(histogram, target), self.color_scale
                )
                for image_id, histogram in self._histograms.items()
            }
        elif atom.attribute == "Shape":
            reference = self._shape_target_boundary(atom.target)
            shape_distance = SHAPE_DISTANCES[self.shape_method]
            grades = {}
            for image_id, boundaries in self._boundaries.items():
                if not boundaries:
                    grades[image_id] = 0.0
                    continue
                best = min(
                    shape_distance(boundary, reference) for boundary in boundaries
                )
                grades[image_id] = distance_to_grade(best, self.shape_scale)
        elif atom.attribute == "Texture":
            target = self._texture_target_features(atom.target)
            grades = {
                image_id: distance_to_grade(
                    texture_distance(features, target), self.texture_scale
                )
                for image_id, features in self._textures.items()
            }
        else:  # pragma: no cover - Subsystem.bind checks support first
            raise PlanError(f"QBIC does not handle attribute {atom.attribute!r}")
        return ListSource(GradedSet(grades), name=f"{self.name}:{atom}")
