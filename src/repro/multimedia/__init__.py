"""QBIC-style multimedia substrate: synthetic images, color histograms
with the Eq. 1 quadratic-form distance, the Eq. 2 distance-bounding
filter, shape and texture similarity, and the precomputed pairwise
distance cache (paper section 2)."""

from repro.multimedia.filter import (
    DistanceBoundingFilter,
    FilterSearchResult,
    linear_scan_knn,
)
from repro.multimedia.histogram import (
    Palette,
    QuadraticFormDistance,
    color_histogram,
    distance_to_grade,
    solid_color_histogram,
)
from repro.multimedia.images import (
    NAMED_COLORS,
    SHAPE_KINDS,
    ImageGenerator,
    ShapeSpec,
    SyntheticImage,
)
from repro.multimedia.precompute import PairwiseDistanceCache
from repro.multimedia.qbic import QbicSubsystem, reference_boundary
from repro.multimedia.shape import (
    SHAPE_DISTANCES,
    fourier_descriptor_distance,
    fourier_descriptors,
    hausdorff_distance,
    moment_distance,
    normalize_polygon,
    turning_function,
    turning_function_distance,
)
from repro.multimedia.similarity import (
    identity_similarity,
    laplacian_similarity,
    qbic_similarity,
)
from repro.multimedia.video import (
    NAMED_MOTION,
    VideoClip,
    VideoGenerator,
    VideoSubsystem,
    color_signature,
    motion_energy,
)
from repro.multimedia.texture import (
    NAMED_TEXTURES,
    coarseness,
    contrast,
    directionality,
    texture_distance,
    texture_features,
    to_grayscale,
)

__all__ = [
    "ImageGenerator",
    "SyntheticImage",
    "ShapeSpec",
    "NAMED_COLORS",
    "SHAPE_KINDS",
    "Palette",
    "QuadraticFormDistance",
    "color_histogram",
    "solid_color_histogram",
    "distance_to_grade",
    "laplacian_similarity",
    "qbic_similarity",
    "identity_similarity",
    "DistanceBoundingFilter",
    "FilterSearchResult",
    "linear_scan_knn",
    "turning_function",
    "turning_function_distance",
    "hausdorff_distance",
    "moment_distance",
    "fourier_descriptors",
    "fourier_descriptor_distance",
    "normalize_polygon",
    "SHAPE_DISTANCES",
    "texture_features",
    "texture_distance",
    "to_grayscale",
    "coarseness",
    "contrast",
    "directionality",
    "NAMED_TEXTURES",
    "QbicSubsystem",
    "reference_boundary",
    "PairwiseDistanceCache",
    "VideoClip",
    "VideoGenerator",
    "VideoSubsystem",
    "color_signature",
    "motion_energy",
    "NAMED_MOTION",
]
