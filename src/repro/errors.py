"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at an integration boundary.  The
subclasses mirror the layers of the system: grades and graded sets,
scoring functions, the middleware access model, query parsing, and
indexing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GradeError(ReproError, ValueError):
    """A grade fell outside the closed interval [0, 1]."""


class WeightingError(ReproError, ValueError):
    """A weighting vector was malformed (negative entries, wrong sum, ...)."""


class ScoringError(ReproError):
    """A scoring function was misused (wrong arity, empty input, ...)."""


class MonotonicityError(ReproError):
    """A user-supplied scoring function failed the monotonicity guard.

    The Garlic implementers allowed arbitrary user-defined scoring
    functions and therefore had to "somehow guarantee monotonicity"
    (paper section 4.2).  The middleware engine raises this error when its
    randomized certifier finds a witness of non-monotonicity.
    """


class AccessError(ReproError):
    """A subsystem access failed or was used out of protocol."""


class UnknownObjectError(AccessError, KeyError):
    """Random access asked for an object the subsystem does not hold."""


class UnsupportedAccessError(AccessError):
    """The subsystem does not support the requested access mode."""


class TransientAccessError(AccessError):
    """A subsystem access failed in a way that may succeed on retry.

    The middleware setting of section 4 integrates autonomous, often
    remote subsystems; a timeout or dropped connection aborts one access
    without implying the repository is gone.  The resilience layer
    (:mod:`repro.middleware.resilience`) retries these with backoff; a
    permanently failing subsystem keeps raising them until its circuit
    breaker opens.
    """


class CircuitOpenError(AccessError):
    """An access was refused because the subsystem's circuit is open.

    Raised without contacting the subsystem: repeated failures tripped
    the :class:`~repro.middleware.resilience.CircuitBreaker`, and until
    its recovery window elapses the middleware fails fast instead of
    hammering a dead repository.  The top-k algorithms treat an open
    *random-access* circuit as a cue to degrade to sorted-only (NRA)
    processing.
    """


class DeadlineExceededError(AccessError):
    """An access (including its retries) exceeded its deadline budget.

    Raised by :class:`~repro.middleware.resilience.ResilientSource` when
    the per-operation time budget of its retry policy is spent — e.g.
    after latency spikes or backoff sleeps consumed the allowance.
    """


class AdmissionError(ReproError):
    """The query service refused to take on a request.

    Raised at submission time by
    :class:`~repro.service.QueryService` when admitting the request
    would violate an operating limit: the admission queue is full (and
    the request's priority does not beat any queued work), the tenant's
    token-bucket quota is exhausted, or the tenant is already at its
    max-inflight cap.  ``reason`` carries the machine-readable cause
    (``"queue-full"``, ``"quota"``, ``"inflight"``, ``"closed"``).
    """

    def __init__(self, message: str, *, reason: str = "rejected") -> None:
        super().__init__(message)
        self.reason = reason


class ShedError(AdmissionError):
    """A queued request was shed to make room for higher-priority work.

    Only *queued* work is ever shed — a request that has started
    executing always runs to completion (possibly degraded).  The shed
    request's ticket raises this from ``result()``.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, reason="shed")


class IdMappingError(ReproError):
    """Object-ID correspondence between subsystems is missing or not 1-to-1."""


class PlanError(ReproError):
    """The planner could not produce an execution strategy for a query."""


class QuerySyntaxError(ReproError, ValueError):
    """The SQL-like front end could not parse the query text."""


class IndexError_(ReproError):
    """A multidimensional index was misused (dimension mismatch, ...)."""


class TraceError(ReproError):
    """A recorded access timeline violates the trace schema."""


class StorageError(ReproError):
    """An on-disk storage backend is missing, malformed, or corrupt."""
