"""E10 — Theorem 3.1: min/max are the unique equivalence-preserving pair.

Paper claim (Yager; Dubois–Prade): "the unique scoring functions for
evaluating AND and OR that preserve logical equivalence of queries
involving only conjunction and disjunction and that are monotone in
their arguments are min and max."

Regenerates: the empirical half — every other monotone pair in the
catalog violates some positive-query identity, min/max violates none.
"""

from repro.harness.experiments import e10_uniqueness
from repro.harness.reporting import format_table
from repro.scoring.properties import check_equivalence_preservation
from repro.scoring.tnorms import MIN
from repro.scoring.conorms import MAX


def test_e10_min_max_uniqueness(benchmark):
    result = e10_uniqueness()
    print()
    print(format_table(result.headers, result.rows))

    passing = [row for row in result.rows if row[1]]
    assert len(passing) == 1
    assert passing[0][0] == "min/max"
    for name, preserved, witness in result.rows:
        if not preserved:
            assert witness  # a concrete violated identity is reported

    def run():
        return check_equivalence_preservation(MIN, MAX)

    benchmark(run)
