"""E16 — the random-access pruning improvement to A0.

Paper claim (§4.1): "there are various improvements that can be made to
algorithm A0 (in particular, in the case when t is min, the standard
scoring function in fuzzy logic for the conjunction)."

Regenerates: A0 vs A0-with-pruning costs and random-access counts per
workload.  Expected shape: identical answers, pruning never costs more,
and for min most (on easy instances all) random accesses disappear.
"""

from repro.core.fagin import fagin_top_k
from repro.harness.experiments import e16_pruning
from repro.harness.reporting import format_table
from repro.scoring import tnorms
from repro.workloads.graded_lists import workload


def test_e16_pruning_improvement(benchmark):
    result = e16_pruning(
        ns=(1000, 4000, 16000), kinds=("independent", "anti-correlated"), k=10
    )
    print()
    print(format_table(result.headers, result.rows))

    for kind, n, plain, pruned, plain_random, pruned_random, agree in result.rows:
        assert agree, (kind, n)
        assert pruned <= plain, (kind, n)
        assert pruned_random <= plain_random, (kind, n)
    # pruning saves at least a third of total cost somewhere in the sweep
    savings = [1 - row[3] / row[2] for row in result.rows]
    assert max(savings) > 1 / 3

    def run():
        return fagin_top_k(
            workload("independent", 8000, 2, 31), tnorms.MIN, 10,
            prune_random_access=True,
        )

    benchmark(run)
