"""E19 — bulk access: columnar ArraySource vs per-item ListSource.

Paper context (§4): the cost measure counts *accesses*, not Python
calls — so a backend is free to serve a batch of sorted accesses or a
set of random probes in one request as long as it charges the same.
This benchmark measures the wall-clock value of doing so at scale:
TA top-10 over N=100k objects, m=4 independent lists, comparing

* the seed path — :class:`ListSource` built item-by-item, TA issuing
  one ``cursor.next()`` / ``random_access()`` per access (replicated
  here verbatim from the pre-bulk implementation); against
* the bulk path — :class:`ArraySource` built with one vectorized
  validate + argsort, TA draining windows via ``next_batch`` and
  probing via ``random_access_many``.

Both paths must return the same answers at the same uniform cost; the
acceptance bar is a >= 3x end-to-end (build + query) speedup.  Results
are written to BENCH_bulk.json next to this file.
"""

import heapq
import json
import time
from pathlib import Path

from repro.core.cost import CostMeter
from repro.core.graded import GradedSet
from repro.core.result import TopKResult
from repro.core.sources import check_same_objects, sources_from_columns
from repro.core.threshold import threshold_top_k
from repro.harness.experiments import e19_bulk_access
from repro.harness.reporting import format_table
from repro.scoring import tnorms
from repro.scoring.base import as_scoring_function
from repro.workloads.graded_lists import independent

N, M, K, SEED = 100_000, 4, 10, 19
OUTPUT = Path(__file__).parent / "BENCH_bulk.json"


def per_item_threshold_top_k(sources, scoring, k):
    """The seed's item-at-a-time TA: one access per Python call.

    Kept as the benchmark baseline so the speedup measures the bulk
    protocol itself, not unrelated drift in the library implementation.
    """
    rule = as_scoring_function(scoring)
    database_size = check_same_objects(sources)
    k = min(k, database_size)
    m = len(sources)
    meter = CostMeter(sources)

    cursors = [s.cursor() for s in sources]
    bottoms = [1.0] * m
    overall = {}
    best_k = []
    depth = 0
    stop = False
    while not stop:
        progressed = False
        for i, cursor in enumerate(cursors):
            item = cursor.next()
            if item is None:
                continue
            progressed = True
            depth = max(depth, cursor.position)
            bottoms[i] = item.grade
            if item.object_id in overall:
                continue
            grades = [
                sources[j].random_access(item.object_id) if j != i else item.grade
                for j in range(m)
            ]
            grade = rule(grades)
            overall[item.object_id] = grade
            if len(best_k) < k:
                heapq.heappush(best_k, grade)
            elif grade > best_k[0]:
                heapq.heapreplace(best_k, grade)
        if not progressed:
            break
        if len(best_k) >= k and best_k[0] >= rule(bottoms):
            stop = True

    return TopKResult(
        answers=GradedSet(overall).top(k),
        cost=meter.report(),
        algorithm="threshold-ta-per-item",
        sorted_depth=depth,
    )


def _timed_run(table, *, bulk):
    start = time.perf_counter()
    backend = "array" if bulk else "list"
    sources = sources_from_columns(table, backend=backend)
    built = time.perf_counter()
    if bulk:
        result = threshold_top_k(sources, tnorms.MIN, K)
    else:
        result = per_item_threshold_top_k(sources, tnorms.MIN, K)
    done = time.perf_counter()
    return {
        "backend": backend,
        "build_seconds": built - start,
        "query_seconds": done - built,
        "total_seconds": done - start,
        "uniform_cost": result.database_access_cost,
        "sorted_cost": result.cost.sorted_access_cost,
        "random_cost": result.cost.random_access_cost,
    }, result


def test_e19_bulk_access_speedup(benchmark):
    table = independent(N, M, seed=SEED)
    seed_run, seed_result = _timed_run(table, bulk=False)
    bulk_run, bulk_result = _timed_run(table, bulk=True)

    assert bulk_result.answers.same_grade_multiset(seed_result.answers)
    assert bulk_run["uniform_cost"] == seed_run["uniform_cost"]

    speedup = seed_run["total_seconds"] / bulk_run["total_seconds"]
    payload = {
        "experiment": "E19",
        "n": N,
        "m": M,
        "k": K,
        "seed": SEED,
        "baseline": seed_run,
        "bulk": bulk_run,
        "speedup": speedup,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    headers = ("path", "build s", "query s", "total s", "uniform cost")
    rows = [
        (
            run["backend"],
            round(run["build_seconds"], 3),
            round(run["query_seconds"], 3),
            round(run["total_seconds"], 3),
            run["uniform_cost"],
        )
        for run in (seed_run, bulk_run)
    ]
    print()
    print(format_table(headers, rows))
    print(f"end-to-end speedup: {speedup:.2f}x (wrote {OUTPUT.name})")

    # The acceptance bar for the bulk-access refactor.
    assert speedup >= 3.0, f"expected >= 3x speedup, measured {speedup:.2f}x"

    # The smaller harness experiment doubles as the timed benchmark body.
    benchmark(lambda: e19_bulk_access(n=20_000, m=M, k=K, repeats=1))
