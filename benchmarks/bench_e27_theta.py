"""E27 — TA-θ / NRA-θ: certified approximation factor vs access cost.

Paper context: Fagin's algorithms price the *exact* top k.  Fagin,
Lotem, and Naor's θ-approximation trades certified answer quality for
access cost — stop as soon as every reported answer is provably within
a factor θ of optimal — and the middleware threads that knob end to
end.  This experiment measures the trade at scale:

* a **θ sweep** over {1.0, 1.01, 1.05, 1.1, 1.5, 2.0} for TA-θ and
  NRA-θ at N = 10^6 under the paper's independence model, for the min
  and mean combining rules, across kernel/backend configurations
  (scalar over list sources, vector over columnar arrays, vector over
  out-of-core memmaps): per point, the charged accesses, sorted depth,
  achieved ratio, and wall time;
* the **exactness gate**: θ = 1.0 must be byte-identical (answers and
  costs) to not passing θ at all — the knob costs nothing when off;
* the **certificate oracle**: every θ > 1 run is audited against the
  exact true grades — the FLN inequality ``θ * grade(y) >= grade(z)``
  for every returned y and excluded z, the certified achieved ratio
  itself, and (NRA) the per-answer intervals; the violation count must
  be zero everywhere;
* the **monotonicity gate**: access cost is non-increasing in θ for
  every (algorithm, rule, configuration), and the full sweep must show
  a strict reduction from θ = 1.0 to θ = 2.0 — except NRA under min,
  which is structurally θ-insensitive: an object's lower bound stays 0
  until it has been seen in *every* list, and once k objects clear
  that bar the exact stop fires almost immediately anyway, so there is
  nothing for θ to relax.  The sweep records that negative result
  instead of asserting reduction there.

Results land in BENCH_theta.json next to this file.  ``--smoke`` runs
a CI-sized sweep with the same gates and exits nonzero on any
violation (without touching the committed full-sweep JSON).
"""

import argparse
import heapq
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core.sources import sources_from_columns
from repro.core.threshold import nra_top_k, threshold_top_k
from repro.scoring import means, tnorms
from repro.workloads.graded_lists import independent

THETAS = (1.0, 1.01, 1.05, 1.1, 1.5, 2.0)
N, M, K, SEED = 1_000_000, 2, 10, 27
SMOKE_N = 400
OUTPUT = Path(__file__).parent / "BENCH_theta.json"

ALGORITHMS = (
    ("ta", threshold_top_k, {"batch_size": 128}),
    ("nra", nra_top_k, {"batch_size": 4096}),
)

RULES = (("min", tnorms.MIN), ("mean", means.MEAN))

#: (algorithm, rule) pairs where θ provably cannot buy anything — see
#: the module docstring for why NRA under min never stops early.
STRICT_REDUCTION_EXEMPT = {("nra", "min")}

FULL_CONFIGS = (("scalar", "list"), ("vector", "array"), ("vector", "memmap"))
SMOKE_CONFIGS = (("scalar", "list"), ("vector", "array"))


def answer_key(result):
    return [(item.object_id, item.grade) for item in result.answers]


def oracle(table, rule):
    """True grades plus the top-(K+1) ranking the audits need."""
    truth = {obj: rule(list(row)) for obj, row in table.items()}
    ranked = heapq.nlargest(
        K + 1, truth.items(), key=lambda pair: (pair[1], pair[0])
    )
    kth_exact = ranked[min(K, len(ranked)) - 1][1]
    return truth, ranked, kth_exact


def excluded_best(ranked, returned, truth):
    """Best true grade outside ``returned`` (pigeonhole: the global
    top-(K+1) must contain one such object when |returned| <= K)."""
    for obj, grade in ranked:
        if obj not in returned:
            return grade
    return max(
        (grade for obj, grade in truth.items() if obj not in returned),
        default=0.0,
    )


def audit(result, theta, truth, ranked, kth_exact):
    """Count certificate violations against the exact oracle."""
    violations = 0
    returned = {item.object_id for item in result.answers}
    rival = excluded_best(ranked, returned, truth)
    for item in result.answers:
        if theta * truth[item.object_id] < kth_exact - 1e-9:
            violations += 1
    certificate = result.approximation
    if certificate is not None:
        if certificate.achieved != float("inf"):
            for item in result.answers:
                if certificate.achieved * truth[item.object_id] < rival - 1e-9:
                    violations += 1
        if certificate.intervals is not None:
            for obj, (lower, upper) in certificate.intervals.items():
                if not (lower - 1e-12 <= truth[obj] <= upper + 1e-12):
                    violations += 1
    return violations


def run_config(kernel, backend, table, oracles, directory):
    kwargs = {"backend": backend}
    if backend == "memmap":
        kwargs["directory"] = directory
    sources = sources_from_columns(table, **kwargs)
    rows = []
    for rule_name, rule in RULES:
        truth, ranked, kth_exact = oracles[rule_name]
        for name, algo, algo_kwargs in ALGORITHMS:
            baseline = algo(
                sources, rule, K, kernel=kernel, **algo_kwargs
            )
            costs = []
            for theta in THETAS:
                started = time.perf_counter()
                result = algo(
                    sources, rule, K, theta=theta, kernel=kernel,
                    **algo_kwargs,
                )
                elapsed = time.perf_counter() - started
                label = f"{name}/{rule_name}/{kernel}/{backend}"
                if theta == 1.0:
                    assert answer_key(result) == answer_key(baseline), (
                        f"{label}: theta=1.0 answers differ from the "
                        "exact run"
                    )
                    assert result.cost == baseline.cost, (
                        f"{label}: theta=1.0 cost differs"
                    )
                    assert result.approximation is None
                violations = audit(result, theta, truth, ranked, kth_exact)
                certificate = result.approximation
                costs.append(result.database_access_cost)
                rows.append(
                    {
                        "algorithm": name,
                        "rule": rule_name,
                        "kernel": kernel,
                        "backend": backend,
                        "theta": theta,
                        "cost": result.database_access_cost,
                        "sorted": result.cost.sorted_access_cost,
                        "random": result.cost.random_access_cost,
                        "depth": result.sorted_depth,
                        "achieved": (
                            round(certificate.achieved, 6)
                            if certificate is not None
                            else None
                        ),
                        "violations": violations,
                        "seconds": round(elapsed, 4),
                    }
                )
            for tighter, looser in zip(costs, costs[1:]):
                assert tighter >= looser, (
                    f"{label}: cost not monotone in theta: {costs} over "
                    f"{THETAS}"
                )
    return rows


def run(configs, n, *, smoke=False):
    table = independent(n, M, seed=SEED)
    oracles = {name: oracle(table, rule) for name, rule in RULES}
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-e27-") as scratch:
        for index, (kernel, backend) in enumerate(configs):
            directory = str(Path(scratch) / f"cfg{index}")
            rows.extend(
                run_config(kernel, backend, table, oracles, directory)
            )
    for row in rows:
        achieved = row["achieved"] if row["achieved"] is not None else "-"
        print(
            f"{row['algorithm']:>4}/{row['rule']:<4} "
            f"{row['kernel']:>6}/{row['backend']:<6} "
            f"theta {row['theta']:>5}: cost {row['cost']:>8} "
            f"(depth {row['depth']:>6})  achieved {achieved:>9}  "
            f"violations {row['violations']}  {row['seconds']:.3f}s"
        )
    total_violations = sum(row["violations"] for row in rows)
    assert total_violations == 0, (
        f"{total_violations} certificate violations against the oracle"
    )
    if not smoke:
        for name, _, _ in ALGORITHMS:
            for rule_name, _ in RULES:
                if (name, rule_name) in STRICT_REDUCTION_EXEMPT:
                    continue
                for kernel, backend in configs:
                    mine = [
                        row
                        for row in rows
                        if row["algorithm"] == name
                        and row["rule"] == rule_name
                        and row["kernel"] == kernel
                        and row["backend"] == backend
                    ]
                    exact_cost = mine[0]["cost"]
                    loosest_cost = mine[-1]["cost"]
                    assert loosest_cost < exact_cost, (
                        f"{name}/{rule_name}/{kernel}/{backend}: theta=2.0 "
                        f"cost {loosest_cost} shows no reduction from "
                        f"exact {exact_cost}"
                    )
    report = {
        "benchmark": "e27-theta",
        "config": {
            "n": n,
            "m": M,
            "k": K,
            "seed": SEED,
            "thetas": list(THETAS),
            "rules": [name for name, _ in RULES],
            "configs": [list(config) for config in configs],
            "strict_reduction_exempt": sorted(
                list(pair) for pair in STRICT_REDUCTION_EXEMPT
            ),
            "smoke": smoke,
        },
        "rows": rows,
    }
    if smoke:
        print("theta smoke OK")
    else:
        OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"written: {OUTPUT}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized sweep: all gates asserted, no JSON written",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run(SMOKE_CONFIGS, SMOKE_N, smoke=True)
    return run(FULL_CONFIGS, N)


if __name__ == "__main__":
    sys.exit(main())
