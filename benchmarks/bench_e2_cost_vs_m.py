"""E2 — cost scaling exponent vs the number of conjuncts m.

Paper claim (Theorem 4.1): cost is O(N^{(m-1)/m} k^{1/m}), so the N-
exponent rises with m: 1/2 at m=2, 2/3 at m=3, 3/4 at m=4.

Regenerates: measured exponent per m vs the theoretical (m-1)/m.
"""

from repro.core.fagin import fagin_top_k
from repro.core.sources import sources_from_columns
from repro.harness.experiments import e2_cost_vs_m
from repro.harness.fitting import theorem_exponent
from repro.harness.reporting import format_table
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent


def test_e2_exponent_vs_m(benchmark):
    result = e2_cost_vs_m(
        ms=(2, 3, 4), ns=(1000, 2000, 4000, 8000), k=10, seeds=(0, 1, 2)
    )
    print()
    print(format_table(result.headers, result.rows))

    for m, measured, theory in result.rows:
        assert abs(measured - theorem_exponent(m)) < 0.17, (m, measured)
    # the exponent must be increasing in m
    exponents = [row[1] for row in result.rows]
    assert exponents == sorted(exponents)

    table = independent(4000, 3, seed=0)

    def run():
        return fagin_top_k(sources_from_columns(table), tnorms.MIN, 10)

    benchmark(run)
