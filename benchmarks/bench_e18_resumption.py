"""E18 — resumption amortization ("continue where we left off", §4.1).

Paper claim: "The algorithm has the nice feature that after finding the
top k answers, in order to find the next k best answers we can continue
where we left off."

Regenerates: per-page and cumulative costs of paging through 5 batches
of k answers via one resumable A0 instance, against from-scratch runs
at each depth.  Expected shape: the cumulative resumed cost matches the
one-shot cost of the same total depth (within the small overhead of
intermediate stops) — resuming never re-pays for sorted access.
"""

from repro.core.fagin import FaginAlgorithm
from repro.core.sources import sources_from_columns
from repro.harness.experiments import e18_resumption
from repro.harness.reporting import format_table
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent


def test_e18_resumption_amortizes(benchmark):
    result = e18_resumption(n=8000, k=10, batches=5)
    print()
    print(format_table(result.headers, result.rows))
    for note in result.notes:
        print(note)

    final = result.rows[-1]
    cumulative, scratch = final[2], final[3]
    # resuming costs no more than ~15% over the one-shot equivalent
    assert cumulative <= scratch * 1.15, (cumulative, scratch)
    # and each later page is far cheaper than starting over
    for page, batch_cost, _, from_scratch in result.rows[1:]:
        assert batch_cost < from_scratch

    table = independent(8000, 2, seed=37)

    def run():
        algorithm = FaginAlgorithm(sources_from_columns(table), tnorms.MIN)
        algorithm.next_k(10)
        return algorithm.next_k(10)

    benchmark(run)
