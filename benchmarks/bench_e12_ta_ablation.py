"""E12 — ablation: the TA/NRA improvements over A0, and cost-measure
robustness.

Paper claims: "there are various improvements that can be made to
algorithm A0" (section 4.1), and the results are "fairly robust with
respect to a choice of cost measure" (section 4).

Regenerates: (a) per-workload access costs of A0 / TA / NRA with answer
agreement — TA never loses to A0; (b) the A0-vs-naive ranking under
uniform and skewed charge models.
"""

from repro.core.threshold import threshold_top_k
from repro.harness.experiments import e12_cost_model_ablation, e12_ta_ablation
from repro.harness.reporting import format_table
from repro.scoring import tnorms
from repro.workloads.graded_lists import workload


def test_e12_improvements(benchmark):
    result = e12_ta_ablation(
        ns=(1000, 4000, 16000),
        kinds=("independent", "correlated", "anti-correlated"),
        k=10,
    )
    print()
    print(format_table(result.headers, result.rows))

    for kind, n, a0, ta, nra, a0_depth, ta_depth, agree in result.rows:
        assert agree, (kind, n)
        # TA stops at or before A0's sorted depth on every instance (the
        # theoretical dominance); total cost stays in the same regime —
        # our A0 already skips redundant random probes, so TA's eager
        # probing can cost a few extra accesses, never a different shape.
        assert ta_depth <= a0_depth, (kind, n, ta_depth, a0_depth)
        assert ta <= a0 * 1.5 + 2 * 10, (kind, n, ta, a0)

    def run():
        return threshold_top_k(
            workload("independent", 8000, 2, 13), tnorms.MIN, 10
        )

    benchmark(run)


def test_e12_cost_measure_robustness(benchmark):
    result = benchmark.pedantic(
        lambda: e12_cost_model_ablation(n=8000, k=10, seed=17),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result.headers, result.rows))
    charges = {row[0]: row for row in result.rows}
    for model, a0_charge, ca_charge, naive_charge, a0_wins in result.rows:
        assert a0_wins, model
    # CA's whole point: it beats A0 when random probes are expensive
    assert charges["random-expensive"][2] < charges["random-expensive"][1]
