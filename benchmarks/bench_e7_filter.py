"""E7 — the distance-bounding filter (Eq. 2).

Paper claim (section 2.1): the short (3-dim) summary vector gives a
simple-to-compute distance d^ with d^ <= d, so it can "eliminate from
consideration objects where d^ is too large" — saving the expensive
Eq. 1 evaluations with zero false dismissals.

Regenerates: Eq. 1 evaluation counts, pruning rates, and exactness over
corpus sizes.  Expected shape: high pruning rate, exact results always.
"""

from repro.harness.experiments import e7_filter
from repro.harness.reporting import format_table


def test_e7_filter_prunes_without_false_dismissals(benchmark):
    result = e7_filter(ns=(250, 500, 1000, 2000), k=10, seed=5)
    print()
    print(format_table(result.headers, result.rows))

    for n, evals, pruned, rate, exact in result.rows:
        assert exact, n
        assert evals + pruned == n
        assert rate > 0.3, (n, rate)

    # wall-clock: one filtered search on the largest corpus
    from repro.multimedia.filter import DistanceBoundingFilter
    from repro.multimedia.histogram import (
        Palette,
        QuadraticFormDistance,
        solid_color_histogram,
    )
    from repro.multimedia.similarity import laplacian_similarity
    from repro.workloads.image_corpus import corpus_histograms, mixed_corpus

    palette = Palette.rgb_cube(4)
    distance = QuadraticFormDistance(laplacian_similarity(palette))
    filt = DistanceBoundingFilter(palette, distance)
    histograms = corpus_histograms(mixed_corpus(1000, seed=5), palette)
    target = solid_color_histogram((0.9, 0.1, 0.1), palette)

    def run():
        return filt.search(histograms, target, 10)

    benchmark(run)
