"""E15 — batched sorted access under item-count vs latency measures.

Paper context (§4): Garlic may "ask the subsystem for, say, the top 10
objects in sorted order, then request the next 10", and the uniform
access-cost measure "is somewhat controversial" because real accesses
have very different prices.

Regenerates: A0's items-fetched / round-trips / uniform-cost /
latency-cost over the batch-size sweep.  Expected shape: uniform cost
is minimized by tiny batches (no overshoot); with a 50:1 round-trip
charge the optimum moves to a large interior batch size.
"""

from repro.core.batching import batched
from repro.core.fagin import fagin_top_k
from repro.harness.experiments import e15_batching
from repro.harness.reporting import format_table
from repro.scoring import tnorms
from repro.workloads.graded_lists import workload


def test_e15_batch_size_trade_off(benchmark):
    result = e15_batching(batch_sizes=(1, 10, 100, 1000), n=8000, k=10)
    print()
    print(format_table(result.headers, result.rows))
    for note in result.notes:
        print(note)

    uniform = {row[0]: row[3] for row in result.rows}
    latency = {row[0]: row[4] for row in result.rows}
    # uniform measure: overshoot only grows with batch size
    assert uniform[1] <= uniform[10] <= uniform[1000]
    # latency measure: a big batch beats per-item requests...
    assert latency[100] < latency[1]
    # ... but batching everything overshoots past the optimum too
    assert latency[100] < latency[1000] or latency[1000] < latency[1]

    def run():
        sources = batched(workload("independent", 8000, 2, 29), 100)
        return fagin_top_k(sources, tnorms.MIN, 10)

    benchmark(run)
