"""E17 — the "with arbitrarily high probability" claim of Theorem 4.1.

Paper claim: "for every epsilon > 0, there is a constant c such that for
every N, the probability that the database access cost is more than
c * N^((m-1)/m) * k^(1/m) is less than epsilon."

Regenerates: the distribution of A0's normalized cost over many random
independent instances.  Expected shape: the cost concentrates — the
maximum over 100 instances sits at a small constant multiple of the
median, so modest c already captures nearly all the mass.
"""

from repro.core.fagin import fagin_top_k
from repro.core.sources import sources_from_columns
from repro.harness.experiments import e17_concentration
from repro.harness.reporting import format_table
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent


def test_e17_cost_concentration(benchmark):
    result = e17_concentration(n=4000, k=10, m=2, trials=100)
    print()
    print(format_table(result.headers, result.rows))
    for note in result.notes:
        print(note)

    quantiles = dict(result.rows)
    # concentration: the worst of 100 instances is within 2x the median
    assert quantiles["max"] < 2.0 * quantiles["median"]
    # and the normalizing law is the right one: the constant is O(1)
    assert quantiles["median"] < 10.0

    table = independent(4000, 2, seed=0)

    def run():
        return fagin_top_k(sources_from_columns(table), tnorms.MIN, 10)

    benchmark(run)
