"""E6 — the Boolean-conjunct-first strategy on the CD store.

Paper claim (section 4.1): for (Artist='Beatles') AND (AlbumColor='red')
"a good way to evaluate this query would be to first determine all
objects that satisfy the first conjunct" — under the assumption the
predicate is selective, the cost tracks |S|, not N.

Regenerates: cost over (N, selectivity); strategy choice; naive 2N
baseline.  Expected shape: cost ~ 2|S| + 1, flat in N at fixed |S|
fraction, crossover to other strategies as selectivity grows.
"""

from repro.core.query import Atomic
from repro.harness.experiments import e6_beatles
from repro.harness.reporting import format_table
from repro.workloads.cd_store import build_store, generate_catalog


def test_e6_boolean_first(benchmark):
    result = e6_beatles(
        ns=(1000, 4000, 16000), selectivities=(0.001, 0.01, 0.1), k=10
    )
    print()
    print(format_table(result.headers, result.rows))

    for n, selectivity, selected, strategy, cost, naive in result.rows:
        assert cost < naive, (n, selectivity)
        if selectivity <= 0.01:
            assert strategy == "boolean-first"
            # cost ~ |S| * m + 1, plus possible zero-padding
            assert cost <= selected * 2 + 1 + 10

    engine = build_store(generate_catalog(4000, seed=4000, beatles_fraction=0.01))
    query = Atomic("Artist", "Beatles") & Atomic("AlbumColor", "red")

    def run():
        return engine.top_k(query, 10)

    benchmark(run)
