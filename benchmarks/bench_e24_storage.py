"""E24 — storage backends: out-of-core memmap columns vs in-RAM arrays.

Paper context (§4): the access model charges only sorted and random
accesses, so an instance-optimal algorithm touches a vanishing fraction
of each ranked list as N grows.  The storage refactor makes that
asymptotic real: a top-k query over N=10^7 on-disk memmap columns must
answer with peak RSS far below materializing the lists in RAM, at the
same uniform cost (the answers, tie-breaks, and charges are
byte-identical across backends by construction — the conformance suite
enforces it, this benchmark spot-checks it end to end).

Measured, each scenario in its own subprocess.  ``ru_maxrss`` is a
sticky high-water mark — and on Linux a forked child *inherits* the
parent's watermark, because for the instant between fork and exec the
child's address space is the parent's.  So not just the measurements
but also the dataset *builds* run in child processes: the coordinating
parent stays a few tens of MB and never poisons a child's baseline.

* cost and wall-clock of TA top-10 (m=2, min) at N in {10^5, 10^6,
  10^7}, ArraySource vs MemmapSource over identical columns;
* sharded scatter-gather (K=4 memmap shards per column) vs the
  monolithic layout at N=10^6 — identical charges, per-shard roll-up;
* a 10^8-row synthetic build + chunked verify + query spot check
  (~1.6 GB on disk, query RSS stays flat).

Acceptance: at N=10^7 the memmap query's peak RSS is below 25% of the
ArraySource footprint serving the same query.  Results are written to
BENCH_storage.json next to this file.  ``--smoke`` runs a tiny-N
cross-backend parity check only (CI-sized, no subprocesses).
"""

import argparse
import json
import os
import resource
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.sources import ArraySource, sources_from_columns
from repro.core.threshold import threshold_top_k
from repro.harness.reporting import format_table
from repro.scoring import tnorms
from repro.storage import (
    ShardedSource,
    build_memmap,
    build_synthetic_memmap,
    hash_router,
    open_memmap,
    verify_memmap,
)

K = 10
BATCH = 512
SWEEP_NS = (100_000, 1_000_000, 10_000_000)
SHARD_N = 1_000_000
SHARDS = 4
SPOT_N = 100_000_000
RSS_CEILING = 0.25
SMOKE_N = 500
OUTPUT = Path(__file__).parent / "BENCH_storage.json"

# Odd multiplier => bijective mod 2^32: the second column is a distinct
# pseudo-random permutation of [0, 1) grades, so TA's random-access
# phase does real cross-column work.
MIXER = 2654435761


def second_column_grades(ids):
    return ((ids.astype(np.uint64) * MIXER) % (1 << 32)) / float(1 << 32)


def column_dirs(root, n):
    return os.path.join(root, f"n{n}", "col0"), os.path.join(root, f"n{n}", "col1")


def build_datasets(root, n):
    """Two memmap columns over ids 0..n-1: one synthetic (descending
    grades = ascending ids), one mixed.  The on-disk build is the shared
    ground truth every backend loads from."""
    dir0, dir1 = column_dirs(root, n)
    build_synthetic_memmap(dir0, n)
    ids = np.arange(n, dtype=np.int64)
    build_memmap(dir1, ids.tolist(), second_column_grades(ids), name="col1")


def build_shard_dirs(root, n, shards):
    """Hash-partition both columns into per-shard memmap directories
    using the same router ShardedSource will route probes with."""
    dir0, dir1 = column_dirs(root, n)
    route = hash_router(shards)
    ids = np.arange(n, dtype=np.int64)
    assignment = np.fromiter(
        (route(int(i)) for i in ids), dtype=np.int64, count=n
    )
    grades0 = (n - ids) / (n + 1)  # build_synthetic_memmap's formula
    grades1 = second_column_grades(ids)
    for column, grades in (("col0", grades0), ("col1", grades1)):
        for shard in range(shards):
            members = ids[assignment == shard]
            build_memmap(
                os.path.join(root, f"n{n}-shards", column, f"shard{shard}"),
                members.tolist(),
                grades[assignment == shard],
                name=f"{column}.s{shard}",
            )


# ------------------------------------------------------------- children


def child_build(params):
    build_datasets(params["root"], params["n"])
    return {"built": params["n"]}


def child_build_shards(params):
    build_shard_dirs(params["root"], params["n"], params["shards"])
    return {"built": params["n"], "shards": params["shards"]}


def load_array_source(directory, name):
    """The in-RAM representation: ids and grades pulled fully off disk
    into an ArraySource (python id list + grade dict + numpy column)."""
    source = open_memmap(directory)
    ids = np.asarray(source._sorted_ids).tolist()
    grades = np.asarray(source._sorted_grades).copy()
    return ArraySource.from_arrays(ids, grades, name=name, presorted=True)


def open_sources(root, n, backend):
    dir0, dir1 = column_dirs(root, n)
    if backend == "array":
        return [load_array_source(dir0, "col0"), load_array_source(dir1, "col1")]
    if backend == "memmap":
        return [open_memmap(dir0), open_memmap(dir1)]
    if backend == "sharded":
        route = hash_router(SHARDS)
        return [
            ShardedSource(
                [
                    open_memmap(
                        os.path.join(root, f"n{n}-shards", column, f"shard{i}")
                    )
                    for i in range(SHARDS)
                ],
                name=column,
                router=route,
            )
            for column in ("col0", "col1")
        ]
    raise ValueError(backend)


def child_query(params):
    """One measured scenario: open (or load) the sources, run TA top-K,
    report timings, charges, answers, and this process's peak RSS."""
    root, n, backend = params["root"], params["n"], params["backend"]
    started = time.perf_counter()
    sources = open_sources(root, n, backend)
    open_seconds = time.perf_counter() - started
    started = time.perf_counter()
    result = threshold_top_k(sources, tnorms.MIN, K, batch_size=BATCH)
    query_seconds = time.perf_counter() - started
    report = {
        "backend": backend,
        "n": n,
        "open_seconds": round(open_seconds, 4),
        "query_seconds": round(query_seconds, 4),
        "cost": result.cost.database_access_cost,
        "sorted": result.cost.sorted_access_cost,
        "random": result.cost.random_access_cost,
        "sorted_depth": result.sorted_depth,
        "answers": [[str(i.object_id), i.grade] for i in result.answers],
        "peak_rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        * 1024,
    }
    if backend == "sharded":
        report["shard_rollup"] = [s.shard_stats() for s in sources]
        for source in sources:
            rolled = [
                sum(entry["sorted"] for entry in source.shard_stats()),
                sum(entry["random"] for entry in source.shard_stats()),
            ]
            assert tuple(rolled) == source.counter.snapshot(), source.name
    return report


def child_spot_build(params):
    """10^8 build + chunked verify (out-of-core throughout)."""
    directory = params["directory"]
    started = time.perf_counter()
    build_synthetic_memmap(directory, SPOT_N)
    build_seconds = time.perf_counter() - started
    started = time.perf_counter()
    report = verify_memmap(directory)
    verify_seconds = time.perf_counter() - started
    size = sum(
        os.path.getsize(os.path.join(directory, f))
        for f in os.listdir(directory)
    )
    return {
        "n": SPOT_N,
        "build_seconds": round(build_seconds, 2),
        "verify_seconds": round(verify_seconds, 2),
        "verify_checks": report["checks"],
        "disk_bytes": size,
    }


def child_spot_query(params):
    """Top-k against the 10^8 column in a fresh process: the working
    set is the top pages only, so RSS stays flat."""
    source = open_memmap(params["directory"])
    started = time.perf_counter()
    result = threshold_top_k([source], tnorms.MIN, K, batch_size=BATCH)
    query_seconds = time.perf_counter() - started
    top = next(iter(result.answers))
    return {
        "n": SPOT_N,
        "query_seconds": round(query_seconds, 4),
        "cost": result.cost.database_access_cost,
        "top_grade": top.grade,
        "peak_rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        * 1024,
    }


CHILDREN = {
    "build": child_build,
    "build-shards": child_build_shards,
    "query": child_query,
    "spot-build": child_spot_build,
    "spot-query": child_spot_query,
}


def run_child(kind, params):
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, __file__, "--child", kind, "--params", json.dumps(params)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child {kind} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


# ----------------------------------------------------------- full sweep


def full_run():
    root = tempfile.mkdtemp(prefix="repro-e24-")
    sweep = []
    try:
        for n in SWEEP_NS:
            print(f"building N={n:,} columns...", flush=True)
            run_child("build", {"root": root, "n": n})
            for backend in ("array", "memmap"):
                sweep.append(run_child("query", {
                    "root": root, "n": n, "backend": backend,
                }))
                print(f"  {backend}: {sweep[-1]['query_seconds']}s, "
                      f"rss {sweep[-1]['peak_rss_bytes'] / 1e6:.0f} MB",
                      flush=True)
            parity = {json.dumps(r["answers"]) for r in sweep[-2:]}
            assert len(parity) == 1, f"backends disagree at N={n}"
            assert sweep[-1]["cost"] == sweep[-2]["cost"], n

        print(f"building N={SHARD_N:,} shard directories...", flush=True)
        run_child("build-shards", {"root": root, "n": SHARD_N, "shards": SHARDS})
        sharded = run_child("query", {
            "root": root, "n": SHARD_N, "backend": "sharded",
        })
        monolithic = next(
            r for r in sweep if r["n"] == SHARD_N and r["backend"] == "memmap"
        )
        assert sharded["answers"] == monolithic["answers"]
        assert sharded["cost"] == monolithic["cost"], (
            "sharded scatter-gather changed the charged cost"
        )

        spot_dir = os.path.join(root, "spot")
        print(f"N={SPOT_N:,} synthetic spot check...", flush=True)
        spot_build = run_child("spot-build", {"directory": spot_dir})
        spot_query = run_child("spot-query", {"directory": spot_dir})
    finally:
        shutil.rmtree(root, ignore_errors=True)

    by_key = {(r["n"], r["backend"]): r for r in sweep}
    big_array = by_key[(SWEEP_NS[-1], "array")]
    big_memmap = by_key[(SWEEP_NS[-1], "memmap")]
    rss_ratio = big_memmap["peak_rss_bytes"] / big_array["peak_rss_bytes"]
    assert rss_ratio < RSS_CEILING, (
        f"memmap RSS {big_memmap['peak_rss_bytes']} is "
        f"{rss_ratio:.2f} of the in-RAM footprint "
        f"{big_array['peak_rss_bytes']} (ceiling {RSS_CEILING})"
    )

    payload = {
        "experiment": "E24",
        "workload": {
            "m": 2, "k": K, "rule": "min", "batch_size": BATCH,
            "columns": "col0 synthetic descending, col1 multiplicative mix",
        },
        "sweep": sweep,
        "sharded": {
            "n": SHARD_N,
            "shards": SHARDS,
            "result": sharded,
            "monolithic_query_seconds": monolithic["query_seconds"],
        },
        "spot_check": {"build": spot_build, "query": spot_query},
        "acceptance": {
            "rss_ratio_at_n_max": round(rss_ratio, 4),
            "rss_ceiling": RSS_CEILING,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        (r["n"], r["backend"], r["open_seconds"], r["query_seconds"],
         r["cost"], round(r["peak_rss_bytes"] / 1e6, 1))
        for r in sweep
    ]
    rows.append(
        (SHARD_N, f"sharded-k{SHARDS}", sharded["open_seconds"],
         sharded["query_seconds"], sharded["cost"],
         round(sharded["peak_rss_bytes"] / 1e6, 1))
    )
    print()
    print(format_table(
        ("N", "backend", "open_s", "query_s", "cost", "peak_rss_MB"), rows
    ))
    print(
        f"N=10^7 memmap RSS is {rss_ratio:.1%} of the in-RAM footprint "
        f"(ceiling {RSS_CEILING:.0%}); N=10^8 spot check: "
        f"{spot_build['disk_bytes'] / 1e9:.2f} GB on disk, query rss "
        f"{spot_query['peak_rss_bytes'] / 1e6:.0f} MB; wrote {OUTPUT.name}"
    )


def smoke(n=SMOKE_N):
    """Cross-backend parity at tiny N, in-process (CI-sized)."""
    import random

    rng = random.Random(24)
    table = {
        f"o{i:04d}": [rng.random(), rng.random()] for i in range(n)
    }
    reference = threshold_top_k(
        sources_from_columns(table), tnorms.MIN, K, batch_size=16
    )
    want = [(i.object_id, i.grade) for i in reference.answers]
    for kwargs in (
        {"backend": "list"},
        {"backend": "memmap"},
        {"shards": 3},
        {"backend": "memmap", "shards": 2},
    ):
        result = threshold_top_k(
            sources_from_columns(table, **kwargs), tnorms.MIN, K,
            batch_size=16,
        )
        got = [(i.object_id, i.grade) for i in result.answers]
        assert got == want, kwargs
        assert result.cost == reference.cost, kwargs
    print(f"storage smoke OK: backends agree at N={n}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-N cross-backend parity only")
    parser.add_argument("--child", choices=sorted(CHILDREN),
                        help=argparse.SUPPRESS)
    parser.add_argument("--params", help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.child:
        print(json.dumps(CHILDREN[args.child](json.loads(args.params))))
    elif args.smoke:
        smoke()
    else:
        full_run()
