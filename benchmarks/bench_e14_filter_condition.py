"""E14 — the Chaudhuri–Gravano filter-condition simulation (section 4.1).

Paper claim: A0 can be simulated with filter conditions ("the color
score is at least .2"); the practical hazard is guessing the threshold —
too optimistic and the system restarts with a lower one.

Regenerates: restarts and total cost over the initial-threshold sweep,
against TA as the interleaved-access reference.  Expected shape: correct
answers at every threshold; cost grows with each restart; a well-chosen
threshold is competitive.
"""

from repro.core.filter_condition import filter_condition_top_k
from repro.harness.experiments import e14_filter_condition
from repro.harness.reporting import format_table
from repro.workloads.graded_lists import workload


def test_e14_filter_condition(benchmark):
    result = e14_filter_condition(
        n=4000, k=10, taus=(0.99, 0.9, 0.7, 0.5, 0.3), seed=23
    )
    print()
    print(format_table(result.headers, result.rows))

    for tau, restarts, cost, ta_cost, correct in result.rows:
        assert correct, tau
    # the most optimistic threshold restarts; some threshold does not
    assert result.rows[0][1] > 0
    assert any(row[1] == 0 for row in result.rows)
    # restarting costs more than not restarting
    zero_restart_costs = [row[2] for row in result.rows if row[1] == 0]
    assert result.rows[0][2] > min(zero_restart_costs) * 0.5

    def run():
        return filter_condition_top_k(
            workload("independent", 4000, 2, 23), 10, initial_tau=0.7
        )

    benchmark(run)
