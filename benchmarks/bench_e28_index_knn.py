"""E28 — index-backed kNN streams: VA-file / R-tree vs full scan at 10^6.

Paper context: section 2.1 observes that atomic multimedia queries
("find the 10 images closest to this color") should be served by a
multidimensional index, and section 2.2's Eq. 2 bounds the full
distance from below by a cheap filter distance so most candidates are
never fully evaluated.  This experiment measures both ideas as *graded
sources* feeding the paper's own top-k machinery:

* the **kNN sweep**: at N = 10^6 objects and d in {8, 16}, answer
  k = 10 nearest-neighbour queries through four physical methods — the
  vectorized linear scan (the oracle), a bulk-loaded VA-file stream, a
  bulk-loaded STR R-tree stream, and an Eq.-2-style orthonormal
  projection filter (project to 3 dims, refine in lower-bound order) —
  recording node accesses, distance evaluations, and wall clock;
* the **conformance gate**: every method must return *exactly* the
  scan's answer — same ids, bit-identical distances (all methods share
  one Euclidean kernel, so this is equality, not tolerance);
* the **pruning gate**: both indexes must evaluate strictly fewer full
  distances than the scan; the VA-file must prune >= 10x at every
  dimension, the R-tree >= 10x at d = 8.  At d = 16 the R-tree ratio is
  recorded but not asserted — the dimensionality curse (section 2.1's
  own caveat) is the expected negative result;
* the **theta section**: TA over two KnnSource ranked lists under the
  min rule, swept over theta in {1.0, 1.2, 2.0} for scan and VA-file
  backends — theta = 1.0 must be byte-identical to omitting theta, the
  FLN certificate audit against exact true grades must count zero
  violations, cost must be non-increasing in theta, and both index
  kinds must return byte-identical answers at every theta;
* the **engine gate**: ``build_image_database(knn_index=...)`` answers
  for a mixed Near-plus-relational query are byte-identical across
  index kinds x kernels (scalar, vector) x worker counts (1, 4).

Results land in BENCH_knn.json next to this file.  ``--smoke`` runs a
CI-sized corpus with the same gates minus the 10x ratio floors (which
need real scale) and exits nonzero on any violation.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.query import Atomic
from repro.core.threshold import threshold_top_k
from repro.index import (
    KnnSource,
    build_knn_index,
    canonical_tie_array,
    euclidean_distances,
)
from repro.scoring import tnorms
from repro.workloads.image_corpus import build_image_database, feature_corpus

N, K, SEED = 1_000_000, 10, 28
DIMS = (8, 16)
QUERIES_PER_DIM = 5
VA_BITS, RTREE_FAN = 6, 64
PROJ_DIM, FILTER_BLOCK, EPS = 3, 256, 1e-12
THETAS = (1.0, 1.2, 2.0)
THETA_N, THETA_K = 50_000, 10
ENGINE_N, ENGINE_K = 500, 5
SMOKE_N, SMOKE_DIMS, SMOKE_QUERIES = 2_000, (6,), 2
SMOKE_THETA_N, SMOKE_ENGINE_N = 400, 120
OUTPUT = Path(__file__).parent / "BENCH_knn.json"

INDEXES = (
    ("vafile", {"bits": VA_BITS}),
    ("rtree", {"max_entries": RTREE_FAN}),
)


def answer_key(result):
    return [(item.object_id, item.grade) for item in result.answers]


def cost_key(result):
    return (
        result.cost.sorted_access_cost,
        result.cost.random_access_cost,
        result.sorted_depth,
    )


def projection_filter_knn(matrix, ties, projected, projector, query, k):
    """Eq.-2-style filter-and-refine kNN over the raw matrix.

    ``projected = matrix @ projector`` with orthonormal projector
    columns, so the projected distance lower-bounds the true distance
    (Eq. 2's shape: cheap filter distance <= full distance).  Candidates
    are refined in lower-bound order until the next bound exceeds the
    running k-th distance; refinement uses the shared Euclidean kernel,
    so survivors carry bit-identical distances to the scan's.

    Returns ``(neighbors, node_accesses, distance_evals)``.
    """
    lower = np.sqrt(((projected - query @ projector) ** 2).sum(axis=1))
    order = np.lexsort((ties, lower))
    lowers = lower[order]
    rows, distances = [], []
    cutoff, position, evals = np.inf, 0, 0
    while position < len(order):
        if len(rows) >= k and lowers[position] > cutoff + EPS:
            break
        block = order[position:position + FILTER_BLOCK]
        refined = euclidean_distances(matrix[block], query)
        refined = np.atleast_1d(np.asarray(refined, dtype=np.float64))
        evals += len(block)
        rows.extend(block.tolist())
        distances.extend(refined.tolist())
        position += len(block)
        if len(rows) >= k:
            cutoff = np.partition(np.asarray(distances), k - 1)[k - 1]
    rows = np.asarray(rows, dtype=np.intp)
    dists = np.asarray(distances, dtype=np.float64)
    best = np.lexsort((ties[rows], dists))[:k]
    return (
        [(None, float(dists[i]), int(rows[i])) for i in best],
        len(ties),
        evals,
    )


def knn_section(n, dims, queries_per_dim, scratch, *, assert_ratios):
    """The main sweep: build each index once per dim, race the methods."""
    rows, summaries = [], []
    for dim in dims:
        ids, matrix = feature_corpus(
            n, dimension=dim, seed=SEED + dim,
            directory=str(Path(scratch) / f"d{dim}"),
        )
        dense = np.asarray(matrix, dtype=np.float64)
        ties = canonical_tie_array(ids)
        rng = np.random.default_rng(SEED + 100 + dim)
        projector, _ = np.linalg.qr(rng.standard_normal((dim, PROJ_DIM)))
        projected = dense @ projector
        indexes, build_seconds = {}, {}
        started = time.perf_counter()
        indexes["scan"] = build_knn_index("scan", ids, matrix)
        build_seconds["scan"] = time.perf_counter() - started
        for kind, kwargs in INDEXES:
            started = time.perf_counter()
            indexes[kind] = build_knn_index(kind, ids, matrix, **kwargs)
            build_seconds[kind] = time.perf_counter() - started
        totals = {name: 0 for name in (*indexes, "filter")}
        queries = rng.random((queries_per_dim, dim))
        for query_index, query in enumerate(queries):
            oracle = None
            for name in ("scan", "vafile", "rtree", "filter"):
                if name == "filter":
                    started = time.perf_counter()
                    raw, nodes, evals = projection_filter_knn(
                        dense, ties, projected, projector, query, K
                    )
                    elapsed = time.perf_counter() - started
                    answer = [(ids[row], dist) for _, dist, row in raw]
                else:
                    index = indexes[name]
                    nodes0, evals0 = index.stats.snapshot()
                    started = time.perf_counter()
                    answer = index.knn_stream(query).next_batch(K)
                    elapsed = time.perf_counter() - started
                    nodes1, evals1 = index.stats.snapshot()
                    nodes, evals = nodes1 - nodes0, evals1 - evals0
                if name == "scan":
                    oracle = answer
                assert answer == oracle, (
                    f"d={dim} q{query_index} {name}: answer differs from "
                    f"the scan oracle"
                )
                totals[name] += evals
                rows.append(
                    {
                        "section": "knn",
                        "dim": dim,
                        "query": query_index,
                        "method": name,
                        "k": K,
                        "node_accesses": nodes,
                        "distance_evals": evals,
                        "seconds": round(elapsed, 4),
                    }
                )
        ratios = {
            name: (totals["scan"] / totals[name]) if totals[name] else None
            for name in ("vafile", "rtree", "filter")
        }
        for kind, _ in INDEXES:
            assert totals[kind] < totals["scan"], (
                f"d={dim} {kind}: {totals[kind]} distance evals is not "
                f"strictly fewer than the scan's {totals['scan']}"
            )
        if assert_ratios:
            assert ratios["vafile"] >= 10, (
                f"d={dim} vafile pruned only {ratios['vafile']:.1f}x "
                "(floor 10x)"
            )
            if dim <= 8:
                assert ratios["rtree"] >= 10, (
                    f"d={dim} rtree pruned only {ratios['rtree']:.1f}x "
                    "(floor 10x)"
                )
        summaries.append(
            {
                "section": "knn-summary",
                "dim": dim,
                "n": n,
                "total_evals": totals,
                "prune_ratio": {
                    name: round(value, 2) if value else None
                    for name, value in ratios.items()
                },
                "build_seconds": {
                    name: round(value, 4)
                    for name, value in build_seconds.items()
                },
            }
        )
        for summary in summaries[-1:]:
            shaped = "  ".join(
                f"{name} {summary['total_evals'][name]}"
                for name in ("scan", "vafile", "rtree", "filter")
            )
            print(f"d={dim} evals over {queries_per_dim} queries: {shaped}")
    return rows, summaries


def theta_section(n, dim, *, smoke):
    """TA-theta over two index-backed ranked lists, audited exactly."""
    ids, matrix = feature_corpus(n, dimension=dim, seed=SEED + 55)
    rng = np.random.default_rng(SEED + 200)
    targets = rng.random((2, dim))
    # Vectorized distance_to_grade(d, scale=1): exp is elementwise, so
    # each entry is bit-identical to the scalar path KnnSource uses.
    grades = np.minimum(
        np.exp(-np.maximum(euclidean_distances(matrix, targets[0]), 0.0)),
        np.exp(-np.maximum(euclidean_distances(matrix, targets[1]), 0.0)),
    )
    order = np.lexsort((canonical_tie_array(ids), -grades))
    truth = {ids[row]: float(grades[row]) for row in order[:THETA_K + 1]}
    kth_exact = float(grades[order[THETA_K - 1]])
    rival_pool = [ids[row] for row in order[:THETA_K + 1]]
    rows, keys_by_theta = [], {}
    for kind, kwargs in (("scan", {}), *INDEXES):
        index = build_knn_index(kind, ids, matrix, **kwargs)
        sources = [
            KnnSource(index, target, name=f"Near=t{i}", kind=kind)
            for i, target in enumerate(targets)
        ]
        baseline = threshold_top_k(sources, tnorms.MIN, THETA_K)
        costs = []
        for theta in THETAS:
            started = time.perf_counter()
            result = threshold_top_k(
                sources, tnorms.MIN, THETA_K, theta=theta
            )
            elapsed = time.perf_counter() - started
            if theta == 1.0:
                assert answer_key(result) == answer_key(baseline), (
                    f"theta=1.0 over {kind} differs from the exact run"
                )
                assert result.cost == baseline.cost
                assert result.approximation is None
            violations = 0
            returned = {item.object_id for item in result.answers}
            rival = max(
                (truth[obj] for obj in rival_pool if obj not in returned),
                default=0.0,
            )
            certificate = result.approximation
            for item in result.answers:
                true_grade = truth.get(item.object_id)
                if true_grade is None or abs(true_grade - item.grade) > 1e-9:
                    # Returned grades must *be* the true grades (TA
                    # random-accesses every answer) — and anything
                    # outside the exact top-(K+1) cannot satisfy theta
                    # here unless certified, so audit via the reported
                    # grade when the oracle table misses it.
                    true_grade = item.grade if true_grade is None else true_grade
                if theta * true_grade < kth_exact - 1e-9:
                    violations += 1
                if certificate is not None and certificate.achieved != float(
                    "inf"
                ):
                    if certificate.achieved * true_grade < rival - 1e-9:
                        violations += 1
            costs.append(result.database_access_cost)
            keys_by_theta.setdefault(theta, []).append(answer_key(result))
            rows.append(
                {
                    "section": "theta",
                    "index": kind,
                    "n": n,
                    "theta": theta,
                    "cost": result.database_access_cost,
                    "sorted": result.cost.sorted_access_cost,
                    "random": result.cost.random_access_cost,
                    "achieved": (
                        round(certificate.achieved, 6)
                        if certificate is not None
                        else None
                    ),
                    "violations": violations,
                    "seconds": round(elapsed, 4),
                }
            )
        for tighter, looser in zip(costs, costs[1:]):
            assert tighter >= looser, (
                f"{kind}: cost not monotone in theta: {costs}"
            )
    for theta, keys in keys_by_theta.items():
        assert all(key == keys[0] for key in keys), (
            f"theta={theta}: answers differ across index kinds"
        )
    total = sum(row["violations"] for row in rows)
    assert total == 0, f"{total} theta certificate violations"
    print(
        f"theta over {len(keys_by_theta)} thetas x "
        f"{1 + len(INDEXES)} index kinds: identical answers, 0 violations"
    )
    return rows


def engine_section(n):
    """Byte-identity of engine answers across index x kernel x workers."""
    query = Atomic("Near", "sunset") & Atomic("Category", "product")
    baseline = None
    rows = []
    for kind in ("scan", "vafile", "rtree"):
        engine = build_image_database(n, seed=0, knn_index=kind)
        try:
            for kernel in ("scalar", "vector"):
                for workers in (1, 4):
                    engine.configure_kernel(kernel)
                    engine.configure_parallelism(workers)
                    result = engine.top_k(query, ENGINE_K)
                    key = (answer_key(result), cost_key(result))
                    if baseline is None:
                        baseline = key
                    assert key == baseline, (
                        f"{kind}/{kernel}/w{workers}: engine answers or "
                        "costs differ from the scan baseline"
                    )
                    rows.append(
                        {
                            "section": "engine",
                            "index": kind,
                            "kernel": kernel,
                            "workers": workers,
                            "cost": result.database_access_cost,
                        }
                    )
        finally:
            engine.close()
    print(
        f"engine: {len(rows)} index x kernel x worker configs "
        "byte-identical"
    )
    return rows


def run(*, smoke=False):
    if smoke:
        n, dims, queries = SMOKE_N, SMOKE_DIMS, SMOKE_QUERIES
        theta_n, engine_n = SMOKE_THETA_N, SMOKE_ENGINE_N
    else:
        n, dims, queries = N, DIMS, QUERIES_PER_DIM
        theta_n, engine_n = THETA_N, ENGINE_N
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-e28-") as scratch:
        knn_rows, summaries = knn_section(
            n, dims, queries, scratch, assert_ratios=not smoke
        )
    rows.extend(knn_rows)
    rows.extend(summaries)
    rows.extend(theta_section(theta_n, dims[0], smoke=smoke))
    rows.extend(engine_section(engine_n))
    report = {
        "benchmark": "e28-index-knn",
        "config": {
            "n": n,
            "dims": list(dims),
            "k": K,
            "queries_per_dim": queries,
            "seed": SEED,
            "va_bits": VA_BITS,
            "rtree_fan": RTREE_FAN,
            "projection_dim": PROJ_DIM,
            "thetas": list(THETAS),
            "theta_n": theta_n,
            "engine_n": engine_n,
            "smoke": smoke,
        },
        "rows": rows,
    }
    if smoke:
        print("index knn smoke OK")
    else:
        OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"written: {OUTPUT}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized sweep: all gates minus the 10x ratio floors, "
        "no JSON written",
    )
    args = parser.parse_args(argv)
    return run(smoke=args.smoke)


if __name__ == "__main__":
    sys.exit(main())
