"""E20 — resilience: cost/quality of top-k under injected subsystem faults.

Paper context (§4): the middleware's subsystems are autonomous remote
repositories, so access can fail — transiently, or permanently (random
access dying is exactly the regime NRA was designed for).  This
benchmark drives TA and A0 through the fault injector at transient
rates 0–50% with the resilience wrapper (retry + backoff + breakers)
enabled, and then permanently breaks one subsystem's random access
mid-query with the NRA fallback ablated on and off.

Acceptance: at every fault rate the retried run returns *exactly* the
fault-free answers at the fault-free access cost (failed attempts
charge nothing); with random access dead the degraded run still
returns the exact top k from sorted access alone, while the ablated
run aborts.  Results are written to BENCH_resilience.json.
"""

import json
from pathlib import Path

from repro.core.fagin import fagin_top_k
from repro.core.sources import sources_from_columns
from repro.core.threshold import threshold_top_k
from repro.errors import AccessError
from repro.harness.experiments import e20_resilience
from repro.harness.reporting import format_table
from repro.middleware.faults import FaultInjectingSource, FaultProfile
from repro.middleware.resilience import ResiliencePolicy, ResilientSource, VirtualClock
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent

N, M, K, SEED, FAULT_SEED = 20_000, 3, 10, 20, 11
RATES = (0.0, 0.1, 0.3, 0.5)
OUTPUT = Path(__file__).parent / "BENCH_resilience.json"


def wrapped_sources(table, profile, only=None):
    clock = VirtualClock()
    sources = []
    for j, source in enumerate(sources_from_columns(table)):
        if only is None or j in only:
            source = FaultInjectingSource(source, profile, clock=clock)
            source = ResilientSource(source, ResiliencePolicy(), clock=clock)
        sources.append(source)
    return sources


def key(result):
    return [(item.object_id, item.grade) for item in result.answers]


def test_e20_resilience(benchmark):
    table = independent(N, M, seed=SEED)
    runs = {
        "ta": threshold_top_k(sources_from_columns(table), tnorms.MIN, K),
        "a0": fagin_top_k(sources_from_columns(table), tnorms.MIN, K),
    }

    sweep = []
    for rate in RATES:
        profile = FaultProfile(transient_rate=rate, seed=FAULT_SEED)
        for algo, run in (
            ("ta", threshold_top_k),
            ("a0", fagin_top_k),
        ):
            sources = wrapped_sources(table, profile)
            result = run(sources, tnorms.MIN, K)
            retries = sum(s.stats.retries for s in sources)
            entry = {
                "algorithm": algo,
                "transient_rate": rate,
                "uniform_cost": result.database_access_cost,
                "baseline_cost": runs[algo].database_access_cost,
                "retries": retries,
                "exact": key(result) == key(runs[algo]),
                "degraded": result.degraded is not None,
            }
            sweep.append(entry)
            # The acceptance bar: retries reproduce the fault-free run.
            assert entry["exact"], entry
            assert entry["uniform_cost"] == entry["baseline_cost"], entry
            assert not entry["degraded"]

    broken = FaultProfile(break_random_after=5, seed=FAULT_SEED)
    fallback = threshold_top_k(
        wrapped_sources(table, broken, only={M - 1}), tnorms.MIN, K
    )
    assert fallback.algorithm == "threshold-ta+nra"
    assert key(fallback) == key(runs["ta"])
    assert fallback.degraded is not None and fallback.degraded.complete
    try:
        threshold_top_k(
            wrapped_sources(table, broken, only={M - 1}),
            tnorms.MIN,
            K,
            degrade=False,
        )
        aborted = False
    except AccessError:
        aborted = True
    assert aborted, "ablated run should abort on the dead random access"

    degradation = {
        "fallback_on": {
            "algorithm": fallback.algorithm,
            "uniform_cost": fallback.database_access_cost,
            "exact": True,
            "complete": fallback.degraded.complete,
            "failed_sources": sorted(fallback.degraded.failed_sources),
        },
        "fallback_off": {"aborted": aborted},
    }
    payload = {
        "experiment": "E20",
        "n": N,
        "m": M,
        "k": K,
        "seed": SEED,
        "fault_seed": FAULT_SEED,
        "retry_sweep": sweep,
        "degradation": degradation,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    headers = ("algorithm", "rate", "cost", "baseline", "retries", "exact")
    rows = [
        (
            entry["algorithm"],
            entry["transient_rate"],
            entry["uniform_cost"],
            entry["baseline_cost"],
            entry["retries"],
            entry["exact"],
        )
        for entry in sweep
    ]
    print()
    print(format_table(headers, rows))
    print(
        f"NRA fallback: {fallback.algorithm} exact at cost "
        f"{fallback.database_access_cost}; ablated run aborted: {aborted} "
        f"(wrote {OUTPUT.name})"
    )

    # The smaller harness experiment doubles as the timed benchmark body.
    benchmark(lambda: e20_resilience(n=2000, m=M, k=K))
