"""E4 — the m*k disjunction algorithm is independent of N.

Paper claim (section 4.1): for the max scoring function "there is a
simple algorithm whose database access cost is only m*k, independent of
the size N of the database".

Regenerates: cost table over (m, N) — a flat line at exactly m*k — with
answers verified against the exhaustive oracle.
"""

from repro.core.disjunction import disjunction_top_k
from repro.core.sources import sources_from_columns
from repro.harness.experiments import e4_disjunction
from repro.harness.reporting import format_table
from repro.workloads.graded_lists import independent


def test_e4_flat_mk_cost(benchmark):
    result = e4_disjunction(ns=(1000, 4000, 16000, 64000), ms=(2, 3), k=10)
    print()
    print(format_table(result.headers, result.rows))

    for m, n, measured, mk, correct in result.rows:
        assert measured == mk, (m, n, measured)
        assert correct

    table = independent(16000, 2, seed=0)

    def run():
        return disjunction_top_k(sources_from_columns(table), 10)

    benchmark(run)
