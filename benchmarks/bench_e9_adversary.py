"""E9 — the linear lower bound (section 6 / [Fa96]).

Paper claim: "the author gives a (somewhat artificial) case where the
database access cost is necessarily linear in the database size".

Regenerates: A0 cost over N on the reversed-lists instance.  Expected
shape: log-log slope ~ 1.0, in sharp contrast to E1's ~ 0.5.
"""

from repro.core.adversary import hard_instance
from repro.core.fagin import fagin_top_k
from repro.harness.experiments import e9_adversary
from repro.harness.reporting import format_table
from repro.scoring import tnorms


def test_e9_linear_lower_bound(benchmark):
    result = e9_adversary(ns=(1000, 2000, 4000, 8000, 16000), k=1)
    print()
    print(format_table(result.headers, result.rows))
    for note in result.notes:
        print(note)

    fit = result.fits["adversary"]
    assert fit.slope > 0.9, fit
    for n, cost, depth in result.rows:
        assert cost >= n  # genuinely linear, not just slowly sublinear

    def run():
        return fagin_top_k(hard_instance(4000), tnorms.MIN, 1)

    benchmark(run)
