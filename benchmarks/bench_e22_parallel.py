"""E22 — parallelism: wall-clock speedup from overlapping subsystem I/O.

Paper context (§4): database access cost counts *accesses*, not
seconds, across m independent subsystems; Fagin–Lotem–Naor note the m
sorted accesses of one round "can be done in parallel".  Serially
issued, a round of m accesses against remote repositories costs the
*sum* of their latencies; fanned out it costs the *max* — the access
counts (the paper's measure) are identical either way.

Two measurements:

* **speedup sweep** — TA over m=4 subsystems behind a fault injector
  charging 1ms of real latency per access call (``MonotonicClock``),
  at ``max_workers`` in {1, 2, 4, 8}.  Acceptance: >= 2x at 4 workers
  vs the serial path, identical answers and access costs throughout.
  (The latency is sleep-based, so the overlap needs no extra cores.)
* **serial overhead** — the classic ``executor=None`` path vs an
  installed ``max_workers=1`` executor on a pure-compute workload (no
  injected latency).  Acceptance: < 5% overhead (min over repeats), so
  leaving parallelism configured but off costs nothing measurable.

Results are written to BENCH_parallel.json.
"""

import json
import time
from pathlib import Path

from repro.core.sources import sources_from_columns
from repro.core.threshold import threshold_top_k
from repro.harness.reporting import format_table
from repro.middleware.faults import FaultInjectingSource, FaultProfile
from repro.middleware.resilience import MonotonicClock
from repro.parallel import ParallelAccessExecutor
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent

M, K, SEED = 4, 10, 22
LATENCY_N = 400
LATENCY = 0.001  # 1ms per charged access call
BATCH = 4
WORKER_SWEEP = (1, 2, 4, 8)
OVERHEAD_N = 20_000
OVERHEAD_REPEATS = 7
OUTPUT = Path(__file__).parent / "BENCH_parallel.json"

#: every charged access call stalls 1ms of real time; nothing else fails
SLOW_PROFILE = FaultProfile(latency_rate=1.0, latency=LATENCY, seed=SEED)


def slow_sources(table):
    clock = MonotonicClock()
    return [
        FaultInjectingSource(source, SLOW_PROFILE, clock=clock)
        for source in sources_from_columns(table)
    ]


def key(result):
    return [(item.object_id, item.grade) for item in result.answers]


def timed_run(table, executor):
    started = time.perf_counter()
    result = threshold_top_k(
        slow_sources(table), tnorms.MIN, K, batch_size=BATCH, executor=executor
    )
    return time.perf_counter() - started, result


def test_e22_parallel(benchmark):
    table = independent(LATENCY_N, M, seed=SEED)

    # -- speedup sweep under 1ms per-access latency -------------------------
    serial_seconds, serial_result = timed_run(table, None)
    sweep = []
    for workers in WORKER_SWEEP:
        with ParallelAccessExecutor(workers) as executor:
            seconds, result = timed_run(table, executor)
        assert key(result) == key(serial_result), workers
        assert result.cost == serial_result.cost, workers
        sweep.append(
            {
                "max_workers": workers,
                "seconds": round(seconds, 4),
                "speedup": round(serial_seconds / seconds, 2),
                "uniform_cost": result.database_access_cost,
            }
        )
    at_four = next(e for e in sweep if e["max_workers"] == 4)
    assert at_four["speedup"] >= 2.0, (
        f"expected >= 2x at 4 workers over {M} subsystems, got "
        f"{at_four['speedup']}x ({serial_seconds:.3f}s serial vs "
        f"{at_four['seconds']}s)"
    )

    # -- serial overhead: executor=None vs max_workers=1 --------------------
    # Interleaved best-of: alternating the two variants within each
    # repeat makes background load drift hit both measurements equally,
    # instead of penalizing whichever variant happens to run second.
    pure = independent(OVERHEAD_N, 3, seed=SEED)

    def once(executor):
        started = time.perf_counter()
        threshold_top_k(
            sources_from_columns(pure), tnorms.MIN, K, executor=executor
        )
        return time.perf_counter() - started

    baseline = with_executor = float("inf")
    with ParallelAccessExecutor(1) as serial_executor:
        for _ in range(OVERHEAD_REPEATS):
            baseline = min(baseline, once(None))
            with_executor = min(with_executor, once(serial_executor))
    overhead = with_executor / baseline - 1.0
    assert overhead < 0.05, (
        f"max_workers=1 costs {overhead:+.1%} vs the classic serial path "
        f"({with_executor:.4f}s vs {baseline:.4f}s)"
    )

    payload = {
        "experiment": "E22",
        "latency_workload": {
            "n": LATENCY_N,
            "m": M,
            "k": K,
            "batch_size": BATCH,
            "latency_seconds": LATENCY,
            "serial_seconds": round(serial_seconds, 4),
            "sweep": sweep,
        },
        "serial_overhead": {
            "n": OVERHEAD_N,
            "m": 3,
            "k": K,
            "repeats": OVERHEAD_REPEATS,
            "baseline_seconds": round(baseline, 4),
            "max_workers_1_seconds": round(with_executor, 4),
            "overhead": round(overhead, 4),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    headers = ("max_workers", "seconds", "speedup", "cost")
    rows = [
        (e["max_workers"], e["seconds"], e["speedup"], e["uniform_cost"])
        for e in sweep
    ]
    print()
    print(format_table(headers, rows))
    print(
        f"serial {serial_seconds:.3f}s; max_workers=1 overhead "
        f"{overhead:+.1%} (wrote {OUTPUT.name})"
    )

    # The timed body: one parallel TA round-trip at 4 workers.
    with ParallelAccessExecutor(4) as executor:
        benchmark(
            lambda: threshold_top_k(
                slow_sources(table),
                tnorms.MIN,
                K,
                batch_size=BATCH,
                executor=executor,
            )
        )
