"""E5 — A0 under the scoring-function catalog.

Paper claim: Theorem 4.1 "applies to the conjunction ... when the
scoring function is monotone.  This includes any scoring function
obtained by iterating triangular norms (such as min), and in fact almost
any reasonable choice" — explicitly including the arithmetic and
geometric means of Thole–Zimmermann–Zysno, which are not t-norms.

Regenerates: per-rule cost and correctness table.
"""

from repro.core.fagin import fagin_top_k
from repro.core.sources import sources_from_columns
from repro.harness.experiments import e5_scoring_functions
from repro.harness.reporting import format_table
from repro.scoring import means
from repro.workloads.graded_lists import independent


def test_e5_catalog_correctness(benchmark):
    result = e5_scoring_functions(n=8000, k=10, seed=7)
    print()
    print(format_table(result.headers, result.rows))

    for name, cost, correct in result.rows:
        assert correct, name
        assert cost < 2 * 8000, (name, cost)  # beats the naive scan

    table = independent(8000, 2, seed=7)

    def run():
        return fagin_top_k(sources_from_columns(table), means.MEAN, 10)

    benchmark(run)
