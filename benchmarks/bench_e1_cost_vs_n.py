"""E1 — A0 cost vs database size N (Theorems 4.1/4.2, m = 2).

Paper claim: for two independent conjuncts the database access cost of
Fagin's algorithm is Theta(sqrt(N k)) — "of the order of the square root
of the size of the database" — while the naive algorithm costs 2N.

Regenerates: cost table over N, log-log slope fits for both algorithms.
Expected shape: A0 slope ~ 0.5, naive slope = 1.0, widening speedup.
"""

from repro.core.fagin import fagin_top_k
from repro.core.sources import sources_from_columns
from repro.harness.experiments import e1_cost_vs_n
from repro.harness.reporting import format_table
from repro.scoring import tnorms
from repro.workloads.graded_lists import independent

NS = (1000, 2000, 4000, 8000, 16000)


def test_e1_cost_scaling(benchmark):
    result = e1_cost_vs_n(ns=NS, k=10, seeds=(0, 1, 2))
    print()
    print(format_table(result.headers, result.rows))
    for note in result.notes:
        print(note)

    fagin_fit = result.fits["fagin"]
    naive_fit = result.fits["naive"]
    assert 0.35 <= fagin_fit.slope <= 0.68, fagin_fit
    assert abs(naive_fit.slope - 1.0) < 0.02, naive_fit
    # the speedup widens with N (last row beats first row)
    assert result.rows[-1][3] > result.rows[0][3]

    # wall-clock benchmark of one representative A0 run (N = 8000)
    table = independent(8000, 2, seed=0)

    def run():
        return fagin_top_k(sources_from_columns(table), tnorms.MIN, 10)

    outcome = benchmark(run)
    assert len(outcome.answers) == 10
