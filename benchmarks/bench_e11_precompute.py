"""E11 — precomputed pairwise distances (section 2.1).

Paper claim: when updates are rare, precomputing all pairwise distances
means "no painful computations such as that given by the formula (1)
need to be done in real time".

Regenerates: build-time vs query-time Eq. 1 evaluation counts, plus a
wall-clock comparison of a cached neighbor query against a live one.
Expected shape: query-time evaluations drop from N to 0; cached lookups
are orders of magnitude faster per query.
"""

import numpy as np

from repro.harness.experiments import e11_precompute
from repro.harness.reporting import format_table
from repro.multimedia.histogram import Palette, QuadraticFormDistance
from repro.multimedia.precompute import PairwiseDistanceCache
from repro.multimedia.similarity import laplacian_similarity
from repro.workloads.image_corpus import corpus_histograms, mixed_corpus

PALETTE = Palette.rgb_cube(4)
DISTANCE = QuadraticFormDistance(laplacian_similarity(PALETTE))
HISTOGRAMS = corpus_histograms(mixed_corpus(500, seed=3), PALETTE)
CACHE = PairwiseDistanceCache(HISTOGRAMS, DISTANCE)
ANCHOR = next(iter(HISTOGRAMS))


def live_neighbors(k=10):
    """The no-cache path: evaluate Eq. 1 against every object."""
    target = HISTOGRAMS[ANCHOR]
    scored = sorted(
        (DISTANCE(histogram, target), str(obj))
        for obj, histogram in HISTOGRAMS.items()
        if obj != ANCHOR
    )
    return scored[:k]


def test_e11_counts(benchmark):
    benchmark(lambda: CACHE.distance_between(ANCHOR, ANCHOR))
    result = e11_precompute(ns=(250, 500, 1000))
    print()
    print(format_table(result.headers, result.rows))
    for n, bins, build, cached_evals, live_evals in result.rows:
        assert cached_evals == 0
        assert live_evals == n
        assert build == n * (n - 1) // 2


def test_e11_cached_query(benchmark):
    neighbors = benchmark(lambda: CACHE.neighbors(ANCHOR, 10))
    assert len(neighbors) == 10


def test_e11_live_query(benchmark):
    """The comparison target: per-query Eq. 1 over the whole corpus."""
    scored = benchmark(live_neighbors)
    cached = CACHE.neighbors(ANCHOR, 10)
    assert np.allclose([d for d, _ in scored], [d for _, d in cached])
